"""Runtime value model of the simulated interpreter.

Scalars (ints, floats, strings, bools, None) are host Python values; their
allocator churn is modelled statistically by the VM. Containers and
library objects that can hold *significant* memory are **heap-backed**:
they carry a reference count and one or more allocations in the simulated
heap, so that creating, growing, and dropping them produces the exact
malloc/free streams Scalene's memory profiler and leak detector observe.

Reference counting is deliberately simple (see DESIGN.md): references are
counted at *storage points* — name bindings, container slots — not on the
evaluation stack. Temporaries that are never stored are released by the VM
at well-defined discard points.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.errors import SimRuntimeError, VMError


class HeapBacked:
    """Base class for simulated values with real (simulated) heap storage."""

    __slots__ = ("rc", "_mem", "_thread", "_methods")

    #: True for values whose storage lives in native-library memory
    #: (arrays, series, tensors). Method calls on such values cross the
    #: Python↔native boundary and are counted by the CrossingRecorder;
    #: pure Python containers (lists, dicts, buffers) stay False.
    native_domain = False

    def __init__(self, mem, thread=None) -> None:
        #: Reference count from storage points (0 = floating temporary).
        self.rc = 0
        self._mem = mem
        self._thread = thread
        #: Memoized BoundMethods, lazily created (None = none yet). Method
        #: tables are per-instance and immutable, so memoization is safe.
        self._methods: Optional[Dict[str, "BoundMethod"]] = None
        mem.register_object(self)

    # -- refcount protocol (driven by the VM) ---------------------------------

    def incref(self) -> None:
        self.rc += 1

    def decref(self) -> None:
        self.rc -= 1
        if self.rc <= 0:
            self.destroy()

    def release_if_floating(self) -> None:
        """Free this object if nothing ever stored a reference to it."""
        if self.rc == 0:
            self.destroy()

    def destroy(self) -> None:
        """Free all owned allocations and drop references to children."""
        if self.rc < 0:
            return  # already destroyed
        self.rc = -1
        self._destroy_storage()
        self._mem.unregister_object(self)

    def _destroy_storage(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    # -- attribute protocol ---------------------------------

    def sim_getattr(self, name: str):
        """Look up an attribute/method for the simulated program."""
        cache = self._methods
        if cache is not None:
            bound = cache.get(name)
            if bound is not None:
                return bound
        method = self._method_table().get(name)
        if method is None:
            raise SimRuntimeError(f"{type(self).__name__} has no attribute {name!r}")
        bound = BoundMethod(self, name, method)
        if cache is None:
            cache = self._methods = {}
        cache[name] = bound
        return bound

    def _method_table(self) -> Dict[str, Callable]:
        return {}


def incref(value: Any) -> None:
    """Increment the reference count if ``value`` is heap-backed."""
    if isinstance(value, HeapBacked):
        value.incref()


def decref(value: Any) -> None:
    """Decrement the reference count if ``value`` is heap-backed."""
    if isinstance(value, HeapBacked):
        value.decref()


def release_temp(value: Any) -> None:
    """Free ``value`` if it is a heap-backed floating temporary."""
    if isinstance(value, HeapBacked):
        value.release_if_floating()


class SimList(HeapBacked):
    """A list with CPython-like geometric capacity growth.

    Growth reallocations produce malloc+free pairs through the Python
    allocator, the churn signature that distinguishes rate-based from
    threshold-based sampling (§3.2).
    """

    __slots__ = ("items", "_capacity", "_handle")

    HEADER_BYTES = 56

    def __init__(self, mem, items: Optional[List[Any]] = None, thread=None) -> None:
        super().__init__(mem, thread)
        self.items: List[Any] = items if items is not None else []
        self._capacity = max(len(self.items), 0)
        self._handle = mem.py_alloc(self._size_for(self._capacity), thread)
        for item in self.items:
            incref(item)

    @classmethod
    def _size_for(cls, capacity: int) -> int:
        return cls.HEADER_BYTES + 8 * capacity

    def _grow_to(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        # CPython's list growth pattern (over-allocation ~1/8).
        new_capacity = needed + (needed >> 3) + 6
        old_handle = self._handle
        self._handle = self._mem.py_alloc(self._size_for(new_capacity), self._thread)
        self._mem.py_free(old_handle, self._thread)
        self._capacity = new_capacity

    # -- operations used by the VM and native methods --------------------------

    def append(self, value: Any) -> None:
        self._grow_to(len(self.items) + 1)
        self.items.append(value)
        incref(value)

    def pop(self, index: int = -1) -> Any:
        try:
            value = self.items.pop(index)
        except IndexError:
            raise SimRuntimeError("pop from empty list or index out of range") from None
        decref(value)
        return value

    def clear(self) -> None:
        for item in self.items:
            decref(item)
        self.items.clear()

    def getitem(self, index: Any) -> Any:
        try:
            if isinstance(index, slice):
                return SimList(self._mem, list(self.items[index]), self._thread)
            return self.items[index]
        except (IndexError, TypeError) as exc:
            raise SimRuntimeError(f"list index error: {exc}") from None

    def setitem(self, index: int, value: Any) -> None:
        try:
            old = self.items[index]
        except IndexError:
            raise SimRuntimeError("list assignment index out of range") from None
        incref(value)
        decref(old)
        self.items[index] = value

    def _destroy_storage(self) -> None:
        for item in self.items:
            decref(item)
        self.items.clear()
        self._mem.py_free(self._handle, self._thread)

    def _method_table(self) -> Dict[str, Callable]:
        return {
            "append": lambda ctx, args, kwargs: self.append(args[0]),
            "pop": lambda ctx, args, kwargs: self.pop(args[0] if args else -1),
            "clear": lambda ctx, args, kwargs: self.clear(),
            "sort": lambda ctx, args, kwargs: self.items.sort(),
            "reverse": lambda ctx, args, kwargs: self.items.reverse(),
        }

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimList({self.items!r})"


class SimDict(HeapBacked):
    """A dict with slot-table growth through the Python allocator."""

    __slots__ = ("data", "_capacity", "_handle")

    HEADER_BYTES = 64
    SLOT_BYTES = 104

    def __init__(self, mem, data: Optional[Dict[Any, Any]] = None, thread=None) -> None:
        super().__init__(mem, thread)
        self.data: Dict[Any, Any] = data if data is not None else {}
        self._capacity = max(8, len(self.data))
        self._handle = mem.py_alloc(self._size_for(self._capacity), thread)
        for value in self.data.values():
            incref(value)

    @classmethod
    def _size_for(cls, capacity: int) -> int:
        return cls.HEADER_BYTES + cls.SLOT_BYTES * capacity

    def _maybe_grow(self) -> None:
        if len(self.data) * 3 < self._capacity * 2:
            return
        new_capacity = self._capacity * 2
        old_handle = self._handle
        self._handle = self._mem.py_alloc(self._size_for(new_capacity), self._thread)
        self._mem.py_free(old_handle, self._thread)
        self._capacity = new_capacity

    def getitem(self, key: Any) -> Any:
        try:
            return self.data[key]
        except KeyError:
            raise SimRuntimeError(f"KeyError: {key!r}") from None
        except TypeError as exc:
            raise SimRuntimeError(f"unhashable key: {exc}") from None

    def setitem(self, key: Any, value: Any) -> None:
        old = self.data.get(key)
        incref(value)
        if old is not None or key in self.data:
            decref(old)
        self.data[key] = value
        self._maybe_grow()

    def delitem(self, key: Any) -> None:
        try:
            old = self.data.pop(key)
        except KeyError:
            raise SimRuntimeError(f"KeyError: {key!r}") from None
        decref(old)

    def contains(self, key: Any) -> bool:
        return key in self.data

    def _destroy_storage(self) -> None:
        for value in self.data.values():
            decref(value)
        self.data.clear()
        self._mem.py_free(self._handle, self._thread)

    def _method_table(self) -> Dict[str, Callable]:
        return {
            "get": lambda ctx, args, kwargs: self.data.get(args[0], args[1] if len(args) > 1 else None),
            "keys": lambda ctx, args, kwargs: list(self.data.keys()),
            "values": lambda ctx, args, kwargs: list(self.data.values()),
            "items": lambda ctx, args, kwargs: [list(kv) for kv in self.data.items()],
            "pop": lambda ctx, args, kwargs: self.delitem_and_return(args[0]),
            "clear": lambda ctx, args, kwargs: self._clear_all(),
        }

    def delitem_and_return(self, key: Any) -> Any:
        value = self.getitem(key)
        self.delitem(key)
        return value

    def _clear_all(self) -> None:
        for value in self.data.values():
            decref(value)
        self.data.clear()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimDict({self.data!r})"


class BoundMethod:
    """A method bound to a heap-backed or native-library object."""

    __slots__ = ("receiver", "name", "fn")

    def __init__(self, receiver: Any, name: str, fn: Callable) -> None:
        self.receiver = receiver
        self.name = name
        self.fn = fn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BoundMethod {type(self.receiver).__name__}.{self.name}>"


class NativeFunction:
    """A function implemented in "native code" (outside the interpreter).

    Invoking a native function does not check for signals until it returns
    — the deferral Scalene's CPU profiler turns to its advantage (§2.1).

    ``fn(ctx, args, kwargs)`` receives a :class:`NativeContext` (defined in
    the VM module) through which it consumes native CPU time, allocates
    native memory, performs memcpys, launches GPU kernels, or blocks.

    ``module`` names the owning :class:`NativeModule` for functions that
    belong to a simulated C-extension library; interpreter builtins leave
    it ``None``. Only module-owned functions count as boundary crossings.
    """

    __slots__ = ("name", "fn", "doc", "module")

    def __init__(
        self, name: str, fn: Callable, doc: str = "", module: Optional[str] = None
    ) -> None:
        self.name = name
        self.fn = fn
        self.doc = doc
        self.module = module

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NativeFunction {self.name}>"


class BlockRequest:
    """Returned by a native function to suspend the calling thread.

    The scheduler wakes the thread when ``deadline`` (absolute virtual wall
    time) passes or ``wake_check()`` returns true, whichever comes first.
    On wake, ``on_wake()`` is consulted: it may return a value (pushed as
    the call's result) or another :class:`BlockRequest` to re-block — the
    mechanism behind Scalene's monkey-patched joins with timeouts (§2.2).

    ``interruptible`` marks blocks that a pending signal may cut short on
    the main thread (sleeps and IO are; lock/join waits are not, which is
    precisely why Scalene must monkey-patch them).
    """

    __slots__ = ("deadline", "wake_check", "on_wake", "interruptible", "is_io", "started_at")

    def __init__(
        self,
        deadline: Optional[float] = None,
        wake_check: Optional[Callable[[], bool]] = None,
        on_wake: Optional[Callable[[], Any]] = None,
        interruptible: bool = False,
        is_io: bool = False,
    ) -> None:
        if deadline is None and wake_check is None:
            raise VMError("BlockRequest needs a deadline or a wake condition")
        self.deadline = deadline
        self.wake_check = wake_check
        self.on_wake = on_wake
        self.interruptible = interruptible
        self.is_io = is_io
        self.started_at: float = 0.0


class PyBuffer(HeapBacked):
    """An opaque Python-domain byte buffer of a chosen size.

    Workloads use ``py_buffer(n)`` to create *pure Python* memory of
    arbitrary size (a ``bytearray`` analog) — the lever for Python-side
    footprint growth, leak workloads, and the Python-vs-native memory
    attribution experiments.
    """

    __slots__ = ("nbytes", "_handle")

    def __init__(self, mem, nbytes: int, thread=None) -> None:
        super().__init__(mem, thread)
        self.nbytes = nbytes
        self._handle = mem.py_alloc(nbytes, thread)

    def _destroy_storage(self) -> None:
        self._mem.py_free(self._handle, self._thread)

    def __len__(self) -> int:
        return self.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PyBuffer({self.nbytes})"


def sim_len(value: Any) -> int:
    """``len()`` over host and simulated containers."""
    if isinstance(value, (SimList, SimDict)):
        return len(value)
    try:
        return len(value)
    except TypeError:
        raise SimRuntimeError(f"object of type {type(value).__name__} has no len()") from None


def sim_iter(value: Any) -> Iterable:
    """``iter()`` over host and simulated containers."""
    if isinstance(value, SimList):
        return iter(list(value.items))
    if isinstance(value, SimDict):
        return iter(list(value.data.keys()))
    try:
        return iter(value)
    except TypeError:
        raise SimRuntimeError(f"{type(value).__name__} object is not iterable") from None
