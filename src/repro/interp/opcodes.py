"""Opcode definitions for the simulated interpreter.

Opcodes are plain strings for debuggability. The set mirrors a simplified
CPython 3.x instruction set. The distinguished **call opcodes** — ``CALL``
and ``CALL_METHOD`` — matter to Scalene's thread-attribution algorithm
(paper §2.2): a thread whose current instruction is a call opcode for an
extended period is, with high likelihood, executing native code.
"""

from __future__ import annotations

from typing import FrozenSet

LOAD_CONST = "LOAD_CONST"
LOAD_NAME = "LOAD_NAME"
STORE_NAME = "STORE_NAME"
DELETE_NAME = "DELETE_NAME"
LOAD_ATTR = "LOAD_ATTR"
LOAD_METHOD = "LOAD_METHOD"
BINARY_SUBSCR = "BINARY_SUBSCR"
STORE_SUBSCR = "STORE_SUBSCR"
BINARY_OP = "BINARY_OP"
COMPARE_OP = "COMPARE_OP"
UNARY_OP = "UNARY_OP"
CALL = "CALL"
CALL_METHOD = "CALL_METHOD"
RETURN_VALUE = "RETURN_VALUE"
JUMP = "JUMP"
POP_JUMP_IF_FALSE = "POP_JUMP_IF_FALSE"
POP_JUMP_IF_TRUE = "POP_JUMP_IF_TRUE"
JUMP_IF_FALSE_OR_POP = "JUMP_IF_FALSE_OR_POP"
JUMP_IF_TRUE_OR_POP = "JUMP_IF_TRUE_OR_POP"
GET_ITER = "GET_ITER"
FOR_ITER = "FOR_ITER"
BUILD_LIST = "BUILD_LIST"
BUILD_TUPLE = "BUILD_TUPLE"
BUILD_MAP = "BUILD_MAP"
BUILD_SLICE = "BUILD_SLICE"
UNPACK_SEQUENCE = "UNPACK_SEQUENCE"
LIST_APPEND = "LIST_APPEND"
POP_TOP = "POP_TOP"
MAKE_FUNCTION = "MAKE_FUNCTION"
NOP = "NOP"
#: Push an exception-handler block: arg is the handler's instruction
#: index; the VM records the operand-stack depth so unwinding can
#: truncate back to it. Control falls through to the protected body.
SETUP_EXCEPT = "SETUP_EXCEPT"
#: Pop the innermost handler block (leaving a ``try`` body normally).
POP_BLOCK = "POP_BLOCK"

#: Opcodes that perform a call; see module docstring.
CALL_OPCODES: FrozenSet[str] = frozenset({CALL, CALL_METHOD})

#: Opcodes after which CPython checks the "eval breaker" (pending signals,
#: GIL switch requests). Real CPython checks on backward jumps and calls;
#: the simulated VM additionally checks on every instruction boundary of
#: the main thread, which is a conservative superset with identical
#: observable semantics for Scalene's algorithms.
EVAL_BREAKER_OPCODES: FrozenSet[str] = frozenset(
    {JUMP, POP_JUMP_IF_FALSE, POP_JUMP_IF_TRUE, FOR_ITER, CALL, CALL_METHOD, RETURN_VALUE}
)

#: Opcodes that create a fresh small Python object (used by the VM's
#: small-object churn model: each allocates through the PyMem hooks).
ALLOCATING_OPCODES: FrozenSet[str] = frozenset(
    {BINARY_OP, UNARY_OP, BUILD_TUPLE, BUILD_SLICE}
)

ALL_OPCODES: FrozenSet[str] = frozenset(
    {
        LOAD_CONST, LOAD_NAME, STORE_NAME, DELETE_NAME, LOAD_ATTR, LOAD_METHOD,
        BINARY_SUBSCR, STORE_SUBSCR, BINARY_OP, COMPARE_OP, UNARY_OP, CALL,
        CALL_METHOD, RETURN_VALUE, JUMP, POP_JUMP_IF_FALSE, POP_JUMP_IF_TRUE,
        JUMP_IF_FALSE_OR_POP, JUMP_IF_TRUE_OR_POP, GET_ITER, FOR_ITER,
        BUILD_LIST, BUILD_TUPLE, BUILD_MAP, BUILD_SLICE, UNPACK_SEQUENCE,
        LIST_APPEND, POP_TOP, MAKE_FUNCTION, NOP, SETUP_EXCEPT, POP_BLOCK,
    }
)


def is_call_opcode(opcode: str) -> bool:
    """Whether ``opcode`` is one of the call instructions (§2.2)."""
    return opcode in CALL_OPCODES
