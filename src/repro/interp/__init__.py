"""The simulated CPython-like interpreter.

A restricted Python subset is compiled (via the host ``ast`` module) to a
small bytecode (:mod:`repro.interp.astcompile`), which the virtual machine
(:mod:`repro.interp.vm`) executes on virtual time with CPython's signal,
GIL, tracing and allocation semantics — the properties Scalene's
algorithms rely on.
"""

from repro.interp.astcompile import compile_source
from repro.interp.code import CodeObject, Instruction
from repro.interp.disassembler import disassemble, build_call_opcode_map
from repro.interp import opcodes

__all__ = [
    "compile_source",
    "CodeObject",
    "Instruction",
    "disassemble",
    "build_call_opcode_map",
    "opcodes",
]
