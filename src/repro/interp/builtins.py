"""Built-in functions available to every simulated workload.

Builtins are *native* functions: they run outside the interpreter loop
(signals deferred, §2.1) and consume native CPU time proportional to their
work. Costs are expressed in multiples of the interpreter's per-opcode
cost so the Python-to-native speed ratio is stable across configurations.
"""

from __future__ import annotations

from repro.errors import VMError
from repro.interp.objects import (
    NativeFunction,
    PyBuffer,
    SimDict,
    SimList,
    sim_len,
)
from repro.runtime.threads import SimLock, SimSemaphore


def _ops(ctx, n: float) -> None:
    """Consume native CPU time equivalent to ``n`` interpreter opcodes."""
    ctx.consume(n * ctx.process.vm.config.op_cost)


def install_builtins(process) -> None:
    """Populate ``process.builtins`` with the standard native functions."""

    def builtin(name: str, doc: str = ""):
        def register(fn):
            process.builtins[name] = NativeFunction(name, fn, doc)
            return fn

        return register

    # -- core data/introspection builtins ------------------------------------

    @builtin("range", "range(stop) / range(start, stop[, step])")
    def _range(ctx, args, kwargs):
        _ops(ctx, 0.5)
        try:
            return range(*args)
        except (TypeError, ValueError) as exc:
            raise VMError(f"range() failed: {exc}") from None

    @builtin("len")
    def _len(ctx, args, kwargs):
        _ops(ctx, 0.3)
        return sim_len(args[0])

    @builtin("print")
    def _print(ctx, args, kwargs):
        _ops(ctx, 2)
        ctx.process.stdout.append(" ".join(str(a) for a in args))
        return None

    @builtin("abs")
    def _abs(ctx, args, kwargs):
        _ops(ctx, 0.3)
        return abs(args[0])

    @builtin("min")
    def _min(ctx, args, kwargs):
        values = args[0].items if isinstance(args[0], SimList) else args
        _ops(ctx, 0.1 * max(len(values), 1))
        return min(values)

    @builtin("max")
    def _max(ctx, args, kwargs):
        values = args[0].items if isinstance(args[0], SimList) else args
        _ops(ctx, 0.1 * max(len(values), 1))
        return max(values)

    @builtin("sum")
    def _sum(ctx, args, kwargs):
        values = args[0].items if isinstance(args[0], SimList) else args[0]
        _ops(ctx, 0.1 * max(sim_len(values), 1))
        try:
            return sum(values)
        except TypeError as exc:
            raise VMError(f"sum() failed: {exc}") from None

    @builtin("int")
    def _int(ctx, args, kwargs):
        _ops(ctx, 0.3)
        return int(args[0])

    @builtin("float")
    def _float(ctx, args, kwargs):
        _ops(ctx, 0.3)
        return float(args[0])

    @builtin("str")
    def _str(ctx, args, kwargs):
        _ops(ctx, 0.5)
        return str(args[0]) if args else ""

    @builtin("bool")
    def _bool(ctx, args, kwargs):
        _ops(ctx, 0.2)
        return bool(args[0])

    @builtin("list")
    def _list(ctx, args, kwargs):
        _ops(ctx, 0.5)
        if not args:
            return SimList(ctx.process.mem, [], ctx.thread)
        source = args[0]
        if isinstance(source, SimList):
            return SimList(ctx.process.mem, list(source.items), ctx.thread)
        return SimList(ctx.process.mem, list(source), ctx.thread)

    @builtin("dict")
    def _dict(ctx, args, kwargs):
        _ops(ctx, 0.5)
        return SimDict(ctx.process.mem, {}, ctx.thread)

    # -- memory levers ------------------------------------

    @builtin("py_buffer", "Allocate a pure-Python buffer of n bytes")
    def _py_buffer(ctx, args, kwargs):
        _ops(ctx, 1)
        return PyBuffer(ctx.process.mem, int(args[0]), ctx.thread)

    @builtin("scratch", "Allocate-and-free a transient Python object of n bytes")
    def _scratch(ctx, args, kwargs):
        _ops(ctx, 1)
        ctx.scratch(int(args[0]))
        return None

    # -- time levers ------------------------------------

    @builtin("native_work", "Spin in native code for the given virtual seconds")
    def _native_work(ctx, args, kwargs):
        ctx.consume(float(args[0]))
        return None

    @builtin("native_ops", "Spin in native code for n opcode-equivalents")
    def _native_ops(ctx, args, kwargs):
        _ops(ctx, float(args[0]))
        return None

    # Case-study helpers (§7, Rich): a runtime-checkable isinstance is
    # ~20x the cost of hasattr on the same object.
    @builtin("isinstance_protocol", "isinstance against a runtime_checkable Protocol")
    def _isinstance_protocol(ctx, args, kwargs):
        _ops(ctx, 20)
        return True

    @builtin("hasattr_check", "hasattr() — the cheap replacement")
    def _hasattr_check(ctx, args, kwargs):
        _ops(ctx, 1)
        return True

    @builtin("is_main", 'The ``__name__ == "__main__"`` analog for mp workloads')
    def _is_main(ctx, args, kwargs):
        _ops(ctx, 0.2)
        return ctx.process.is_main_process

    # Region profiling: the scalene_profiler.start()/stop() analog. Both
    # are no-ops when no profiler is attached, so instrumented programs
    # run unmodified without one.
    @builtin("profile_start", "Resume an attached profiler (region profiling)")
    def _profile_start(ctx, args, kwargs):
        _ops(ctx, 1)
        control = ctx.process.profiler_control
        if control is not None:
            control.resume()
        return None

    @builtin("profile_stop", "Pause an attached profiler (region profiling)")
    def _profile_stop(ctx, args, kwargs):
        _ops(ctx, 1)
        control = ctx.process.profiler_control
        if control is not None:
            control.pause()
        return None

    # -- threading ------------------------------------

    @builtin("spawn", "Start a thread running fn(*args); returns the thread")
    def _spawn(ctx, args, kwargs):
        _ops(ctx, 10)
        if not args:
            raise VMError("spawn() needs a function argument")
        return ctx.process.threading.spawn(args[0], tuple(args[1:]))

    @builtin("join", "Join a thread (optionally with a timeout)")
    def _join(ctx, args, kwargs):
        _ops(ctx, 2)
        timeout = kwargs.get("timeout", args[1] if len(args) > 1 else None)
        return ctx.process.threading.join_impl(ctx, args[0], timeout)

    @builtin("sleep", "time.sleep analog (interruptible)")
    def _sleep(ctx, args, kwargs):
        _ops(ctx, 1)
        return ctx.process.threading.sleep_impl(ctx, float(args[0]))

    @builtin("make_lock")
    def _make_lock(ctx, args, kwargs):
        _ops(ctx, 1)
        return SimLock(
            str(args[0]) if args else "lock",
            recorder=ctx.process.lock_contention,
        )

    @builtin("lock_acquire")
    def _lock_acquire(ctx, args, kwargs):
        _ops(ctx, 1)
        timeout = kwargs.get("timeout", args[1] if len(args) > 1 else None)
        return ctx.process.threading.acquire_impl(ctx, args[0], timeout)

    @builtin("lock_release")
    def _lock_release(ctx, args, kwargs):
        _ops(ctx, 1)
        args[0].release(ctx.thread)
        return None

    @builtin("make_semaphore", "A counting semaphore: make_semaphore(name, n)")
    def _make_semaphore(ctx, args, kwargs):
        _ops(ctx, 1)
        name = str(args[0]) if args else "semaphore"
        value = int(args[1]) if len(args) > 1 else 1
        return SimSemaphore(
            name, value, recorder=ctx.process.lock_contention
        )

    @builtin("sem_acquire", "Acquire a semaphore slot (blocking, like a lock)")
    def _sem_acquire(ctx, args, kwargs):
        _ops(ctx, 1)
        timeout = kwargs.get("timeout", args[1] if len(args) > 1 else None)
        return ctx.process.threading.acquire_impl(ctx, args[0], timeout)

    @builtin("sem_release", "Release a semaphore slot")
    def _sem_release(ctx, args, kwargs):
        _ops(ctx, 1)
        args[0].release(ctx.thread)
        return None
