"""Code objects and instructions for the simulated interpreter."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass(frozen=True)
class Instruction:
    """One bytecode instruction.

    ``arg`` meaning depends on the opcode: a const index for LOAD_CONST, a
    name for LOAD/STORE_NAME, a jump target index for jumps, an operand
    count for BUILD_*/CALL, an operator string for BINARY_OP/COMPARE_OP.
    ``lineno`` is the 1-based source line the instruction belongs to —
    the unit of attribution for every profiler in this reproduction.
    """

    opcode: str
    arg: Any
    lineno: int


@dataclass
class CodeObject:
    """A compiled function body or module body."""

    name: str
    filename: str
    instructions: List[Instruction] = field(default_factory=list)
    constants: List[Any] = field(default_factory=list)
    #: Parameter names, in order (empty for module code).
    params: Tuple[str, ...] = ()
    #: Names declared ``global`` inside this code object.
    global_names: Tuple[str, ...] = ()
    firstlineno: int = 1
    #: Threaded-dispatch entries precomputed by the VM (see
    #: ``repro.interp.vm``): one ``(kind, arg, lineno, churn, cache, hits)``
    #: tuple per instruction, with constants pre-resolved, inline-cache
    #: slots attached, and a ``[hit_count, trace]`` hotness cell on loop
    #: headers/backward jumps (``None`` elsewhere) feeding the trace-JIT
    #: tier. Built lazily on first execution and invalidated by any
    #: mutation of the instruction stream.
    _threaded: Optional[list] = field(default=None, repr=False, compare=False)
    #: Trace-JIT region memo (``repro.interp.jit``): region start pc →
    #: CompiledTrace or the failed sentinel. Reset together with
    #: ``_threaded`` — compiled traces capture the entry cache lists by
    #: identity, so they must never outlive an entry rebuild.
    _jit_regions: Optional[dict] = field(default=None, repr=False, compare=False)

    def const_index(self, value: Any) -> int:
        """Intern ``value`` in the constant pool and return its index.

        Values that are unhashable or compare equal across types (1 vs
        True) are matched by (type, value) identity semantics.
        """
        key_type = type(value)
        for i, existing in enumerate(self.constants):
            if type(existing) is key_type:
                try:
                    if existing == value:
                        return i
                except Exception:
                    pass
        self.constants.append(value)
        return len(self.constants) - 1

    def emit(self, opcode: str, arg: Any = None, lineno: int = 0) -> int:
        """Append an instruction; returns its index (for jump patching)."""
        self._threaded = None
        self._jit_regions = None
        self.instructions.append(Instruction(opcode, arg, lineno))
        return len(self.instructions) - 1

    def patch_jump(self, index: int, target: int) -> None:
        """Set the jump target of the instruction at ``index``."""
        old = self.instructions[index]
        self._threaded = None
        self._jit_regions = None
        self.instructions[index] = Instruction(old.opcode, target, old.lineno)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CodeObject {self.name!r} at {self.filename}:{self.firstlineno} ({len(self)} instrs)>"


@dataclass
class SimFunction:
    """A function defined in the simulated program."""

    code: CodeObject
    #: The module globals dict the function closes over.
    globals: dict
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.code.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimFunction {self.name!r}>"


class Frame:
    """An activation record of the simulated interpreter.

    Mirrors the CPython frame fields that profilers inspect: the code
    object, current line, current instruction index (``f_lasti``), and the
    caller frame (``f_back``).
    """

    __slots__ = (
        "code",
        "globals",
        "locals",
        "stack",
        "pc",
        "lineno",
        "back",
        "py_handle",
        "last_traced_line",
        "lasti",
        "block_stack",
    )

    def __init__(self, code: CodeObject, globals_dict: dict, back: Optional["Frame"] = None) -> None:
        self.code = code
        self.globals = globals_dict
        self.locals: dict = {}
        self.stack: list = []
        self.pc = 0
        self.lineno = code.firstlineno
        self.back = back
        #: PyMem allocation backing this frame object (set by the VM).
        self.py_handle = None
        #: Last line for which a trace 'line' event fired (-1 = none yet).
        self.last_traced_line = -1
        #: Index of the instruction currently (or last) executing. During a
        #: native call this stays parked on the CALL instruction — the
        #: signature Scalene's thread attribution keys on (§2.2).
        self.lasti = 0
        #: Active ``try`` blocks: ``(handler_pc, stack_depth)`` entries
        #: pushed by SETUP_EXCEPT (lazily created; None = no handlers).
        self.block_stack: Optional[list] = None

    @property
    def current_instruction(self) -> Optional["Instruction"]:
        """The instruction about to execute (or just executing)."""
        if 0 <= self.pc < len(self.code.instructions):
            return self.code.instructions[self.pc]
        return None

    def location(self) -> Tuple[str, int, str]:
        """(filename, lineno, function name) — profiler attribution key."""
        return (self.code.filename, self.lineno, self.code.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Frame {self.code.name} at {self.code.filename}:{self.lineno}>"
