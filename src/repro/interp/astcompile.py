"""Compiler from a restricted Python subset to the simulated bytecode.

Workloads (the paper's benchmarks, microbenchmarks and case studies) are
ordinary Python source strings. The host :mod:`ast` module parses them;
this compiler lowers the AST to :class:`~repro.interp.code.CodeObject`
instructions with accurate line numbers — the attribution unit for every
profiler in the reproduction.

Supported subset: module-level statements, ``def`` (positional parameters
only), ``global``, assignment (name / subscript / tuple-unpacking
targets), augmented assignment on names and subscripts,
``if``/``elif``/``else``, ``while``, ``for`` over iterables,
``break``/``continue``, ``return``, ``del``, ``pass``,
``try``/``except`` (single bare handler, no else/finally), expression
statements; literals (numbers, strings, booleans, None, lists, tuples,
dicts), single-generator list comprehensions and generator expressions
(materialized eagerly, loop target leaks Python-2-style), names,
attribute access, method and function calls with keyword arguments,
subscripts and slices, unary and binary operators, comparisons (single
comparator), boolean ``and``/``or``, and the ternary conditional.
Everything else raises :class:`~repro.errors.CompileError` with the
offending line.
"""

from __future__ import annotations

import ast
import hashlib
import os
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.interp import opcodes as op
from repro.interp.code import CodeObject

_BINOP_SYMBOLS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.Pow: "**",
    ast.LShift: "<<",
    ast.RShift: ">>",
    ast.BitAnd: "&",
    ast.BitOr: "|",
    ast.BitXor: "^",
}

_CMPOP_SYMBOLS = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.In: "in",
    ast.NotIn: "not in",
    ast.Is: "is",
    ast.IsNot: "is not",
}

_UNARYOP_SYMBOLS = {
    ast.USub: "-",
    ast.UAdd: "+",
    ast.Not: "not",
    ast.Invert: "~",
}


#: LRU cache of compiled module code objects, keyed by
#: ``(sha256(source), filename, verify, jit_config)``. The verify flag is
#: part of the key because a verified and an unverified compile of the
#: same source are different artifacts: a cached unverified code object
#: must never satisfy a ``REPRO_VERIFY=1`` compile (and vice versa). The
#: resolved JIT configuration is part of the key because code objects
#: carry tier state (hotness cells, compiled traces keyed to the entry
#: caches): a code object warmed under one ``REPRO_JIT_THRESHOLD`` must
#: not be served to a run under another — the tier-equivalence fuzzer
#: toggles tiers in-process and relies on this separation.
_CODE_CACHE: "OrderedDict[Tuple, CodeObject]" = OrderedDict()
_CODE_CACHE_MAX = 128
_CODE_CACHE_STATS: Dict[str, int] = {"hits": 0, "misses": 0}


def clear_code_cache() -> None:
    """Drop all cached code objects and reset hit/miss counters."""
    _CODE_CACHE.clear()
    _CODE_CACHE_STATS["hits"] = 0
    _CODE_CACHE_STATS["misses"] = 0


def code_cache_stats() -> Dict[str, int]:
    """A snapshot of the compile cache's hit/miss counters and size."""
    stats = dict(_CODE_CACHE_STATS)
    stats["size"] = len(_CODE_CACHE)
    return stats


def compile_source(
    source: str, filename: str = "<workload>", *, verify: Optional[bool] = None
) -> CodeObject:
    """Compile ``source`` (the restricted subset) to a module code object.

    ``verify`` runs the bytecode verifier
    (:func:`repro.staticcheck.verify_code`) over the emitted code object
    and every nested function body, raising
    :class:`~repro.staticcheck.VerificationError` on malformed output —
    a guard against compiler bugs reaching the VM. Default: off, unless
    the ``REPRO_VERIFY`` environment variable is truthy (the test suite
    turns it on, so every workload the tests compile is verified).

    Results are cached by (source hash, filename, verify flag) so repeated
    runs of the same workload skip parsing, lowering, and verification.
    Cached code objects are shared: callers must treat them as immutable.
    Set ``REPRO_CODE_CACHE=0`` to disable the cache.
    """
    if verify is None:
        verify = os.environ.get("REPRO_VERIFY", "").lower() in ("1", "true", "on")
    verify = bool(verify)

    key: Optional[Tuple] = None
    if os.environ.get("REPRO_CODE_CACHE", "1").lower() not in ("0", "false", "off"):
        from repro.interp.jit import config_key

        key = (
            hashlib.sha256(source.encode("utf-8")).hexdigest(),
            filename,
            verify,
            config_key(),
        )
        cached = _CODE_CACHE.get(key)
        if cached is not None:
            _CODE_CACHE_STATS["hits"] += 1
            _CODE_CACHE.move_to_end(key)
            return cached
        _CODE_CACHE_STATS["misses"] += 1

    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise CompileError(f"syntax error: {exc.msg}", exc.lineno) from None
    compiler = _Compiler(filename)
    code = compiler.compile_module(tree)
    if verify:
        # Local import: staticcheck depends on interp, not vice versa.
        from repro.staticcheck.verifier import verify_code

        verify_code(code)
    if key is not None:
        _CODE_CACHE[key] = code
        if len(_CODE_CACHE) > _CODE_CACHE_MAX:
            _CODE_CACHE.popitem(last=False)
    return code


class _LoopContext:
    """Jump-patching bookkeeping for one enclosing loop."""

    def __init__(self, continue_target: int, is_for: bool = False, try_depth: int = 0) -> None:
        self.continue_target = continue_target
        #: ``for`` loops keep their iterator on the operand stack for the
        #: loop's whole extent; ``break`` must pop it on the way out.
        self.is_for = is_for
        #: Number of enclosing ``try`` blocks at loop entry; ``break`` and
        #: ``continue`` must POP_BLOCK any blocks entered since, or a later
        #: exception would wrongly unwind into an already-exited handler.
        self.try_depth = try_depth
        self.break_fixups: List[int] = []


class _Compiler:
    def __init__(self, filename: str) -> None:
        self.filename = filename
        #: Current ``try`` nesting depth (per code object; saved/restored
        #: around nested function bodies).
        self._try_depth = 0

    # -- entry points ---------------------------------------------------------

    def compile_module(self, tree: ast.Module) -> CodeObject:
        code = CodeObject(name="<module>", filename=self.filename, firstlineno=1)
        self._compile_body(tree.body, code, loops=[], is_module=True)
        # Modules implicitly return None.
        code.emit(op.LOAD_CONST, code.const_index(None), self._last_line(code))
        code.emit(op.RETURN_VALUE, None, self._last_line(code))
        return code

    def compile_function(self, node: ast.FunctionDef) -> CodeObject:
        args = node.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs or args.defaults:
            raise CompileError(
                "only plain positional parameters are supported", node.lineno
            )
        code = CodeObject(
            name=node.name,
            filename=self.filename,
            params=tuple(a.arg for a in args.args),
            firstlineno=node.lineno,
        )
        global_names: List[str] = []
        for stmt in node.body:
            if isinstance(stmt, ast.Global):
                global_names.extend(stmt.names)
        code.global_names = tuple(global_names)
        saved_try_depth = self._try_depth
        self._try_depth = 0
        self._compile_body(node.body, code, loops=[], is_module=False)
        self._try_depth = saved_try_depth
        code.emit(op.LOAD_CONST, code.const_index(None), self._last_line(code))
        code.emit(op.RETURN_VALUE, None, self._last_line(code))
        return code

    @staticmethod
    def _last_line(code: CodeObject) -> int:
        return code.instructions[-1].lineno if code.instructions else code.firstlineno

    # -- statements ---------------------------------------------------------

    def _compile_body(
        self, body: List[ast.stmt], code: CodeObject, loops: List[_LoopContext], is_module: bool
    ) -> None:
        for index, stmt in enumerate(body):
            # Skip docstrings.
            if (
                index == 0
                and isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                continue
            self._stmt(stmt, code, loops, is_module)

    def _stmt(self, node: ast.stmt, code: CodeObject, loops, is_module: bool) -> None:
        line = node.lineno
        if isinstance(node, ast.FunctionDef):
            if node.decorator_list:
                # @profile-style decorators are accepted and ignored, as the
                # paper's methodology does for profilers that need them.
                pass
            fn_code = self.compile_function(node)
            code.emit(op.MAKE_FUNCTION, code.const_index(fn_code), line)
            code.emit(op.STORE_NAME, node.name, line)
        elif isinstance(node, ast.Assign):
            if len(node.targets) != 1:
                raise CompileError("chained assignment is not supported", line)
            self._expr(node.value, code)
            self._store_target(node.targets[0], code)
        elif isinstance(node, ast.AugAssign):
            symbol = _BINOP_SYMBOLS.get(type(node.op))
            if symbol is None:
                raise CompileError("unsupported augmented operator", line)
            if isinstance(node.target, ast.Name):
                code.emit(op.LOAD_NAME, node.target.id, line)
                self._expr(node.value, code)
                code.emit(op.BINARY_OP, symbol, line)
                code.emit(op.STORE_NAME, node.target.id, line)
            elif isinstance(node.target, ast.Subscript):
                # d[k] op= v desugars to d[k] = d[k] op v. The container
                # and index expressions are evaluated twice; the subset's
                # expressions are side-effect-free, so semantics agree.
                self._expr(node.target.value, code)
                self._expr(node.target.slice, code)
                code.emit(op.BINARY_SUBSCR, None, line)
                self._expr(node.value, code)
                code.emit(op.BINARY_OP, symbol, line)
                self._expr(node.target.value, code)
                self._expr(node.target.slice, code)
                code.emit(op.STORE_SUBSCR, None, line)
            else:
                raise CompileError(
                    "augmented assignment only on names and subscripts", line
                )
        elif isinstance(node, ast.Expr):
            self._expr(node.value, code)
            code.emit(op.POP_TOP, None, line)
        elif isinstance(node, ast.If):
            self._compile_if(node, code, loops, is_module)
        elif isinstance(node, ast.While):
            self._compile_while(node, code, loops, is_module)
        elif isinstance(node, ast.For):
            self._compile_for(node, code, loops, is_module)
        elif isinstance(node, ast.Try):
            self._compile_try(node, code, loops, is_module)
        elif isinstance(node, ast.Break):
            if not loops:
                raise CompileError("'break' outside loop", line)
            for _ in range(self._try_depth - loops[-1].try_depth):
                code.emit(op.POP_BLOCK, None, line)
            if loops[-1].is_for:
                # The loop iterator sits on the stack below the body's
                # temporaries; breaking without popping it would leak it
                # (FOR_ITER's exit edge pops it, but break bypasses that
                # edge) — the verifier rejects the resulting depth
                # mismatch at the loop-exit merge point.
                code.emit(op.POP_TOP, None, line)
            fixup = code.emit(op.JUMP, None, line)
            loops[-1].break_fixups.append(fixup)
        elif isinstance(node, ast.Continue):
            if not loops:
                raise CompileError("'continue' outside loop", line)
            for _ in range(self._try_depth - loops[-1].try_depth):
                code.emit(op.POP_BLOCK, None, line)
            code.emit(op.JUMP, loops[-1].continue_target, line)
        elif isinstance(node, ast.Return):
            if is_module:
                raise CompileError("'return' outside function", line)
            if node.value is not None:
                self._expr(node.value, code)
            else:
                code.emit(op.LOAD_CONST, code.const_index(None), line)
            code.emit(op.RETURN_VALUE, None, line)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    raise CompileError("'del' only on names", line)
                code.emit(op.DELETE_NAME, target.id, line)
        elif isinstance(node, ast.Pass):
            code.emit(op.NOP, None, line)
        elif isinstance(node, ast.Global):
            pass  # collected in compile_function
        else:
            raise CompileError(f"unsupported statement: {type(node).__name__}", line)

    def _store_target(self, target: ast.expr, code: CodeObject) -> None:
        line = target.lineno
        if isinstance(target, ast.Name):
            code.emit(op.STORE_NAME, target.id, line)
        elif isinstance(target, ast.Subscript):
            # stack: value. Compile container and index, then STORE_SUBSCR
            # pops (container, index, value) in VM-defined order.
            self._expr(target.value, code)
            self._expr(target.slice, code)
            code.emit(op.STORE_SUBSCR, None, line)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names = target.elts
            code.emit(op.UNPACK_SEQUENCE, len(names), line)
            for element in names:
                self._store_target(element, code)
        else:
            raise CompileError(
                f"unsupported assignment target: {type(target).__name__}", line
            )

    def _compile_if(self, node: ast.If, code: CodeObject, loops, is_module: bool) -> None:
        self._expr(node.test, code)
        else_fixup = code.emit(op.POP_JUMP_IF_FALSE, None, node.lineno)
        self._compile_body(node.body, code, loops, is_module)
        if node.orelse:
            end_fixup = code.emit(op.JUMP, None, self._last_line(code))
            code.patch_jump(else_fixup, len(code))
            self._compile_body(node.orelse, code, loops, is_module)
            code.patch_jump(end_fixup, len(code))
        else:
            code.patch_jump(else_fixup, len(code))

    def _compile_while(self, node: ast.While, code: CodeObject, loops, is_module: bool) -> None:
        if node.orelse:
            raise CompileError("while/else is not supported", node.lineno)
        start = len(code)
        self._expr(node.test, code)
        exit_fixup = code.emit(op.POP_JUMP_IF_FALSE, None, node.lineno)
        loop = _LoopContext(continue_target=start, try_depth=self._try_depth)
        loops.append(loop)
        self._compile_body(node.body, code, loops, is_module)
        loops.pop()
        code.emit(op.JUMP, start, self._last_line(code))
        end = len(code)
        code.patch_jump(exit_fixup, end)
        for fixup in loop.break_fixups:
            code.patch_jump(fixup, end)

    def _compile_for(self, node: ast.For, code: CodeObject, loops, is_module: bool) -> None:
        if node.orelse:
            raise CompileError("for/else is not supported", node.lineno)
        self._expr(node.iter, code)
        code.emit(op.GET_ITER, None, node.lineno)
        start = len(code)
        exit_fixup = code.emit(op.FOR_ITER, None, node.lineno)
        self._store_target(node.target, code)
        loop = _LoopContext(continue_target=start, is_for=True, try_depth=self._try_depth)
        loops.append(loop)
        self._compile_body(node.body, code, loops, is_module)
        loops.pop()
        code.emit(op.JUMP, start, self._last_line(code))
        end = len(code)
        code.patch_jump(exit_fixup, end)
        for fixup in loop.break_fixups:
            code.patch_jump(fixup, end)

    def _compile_try(self, node: ast.Try, code: CodeObject, loops, is_module: bool) -> None:
        """Lower ``try``/bare-``except`` to SETUP_EXCEPT / POP_BLOCK.

        The handler is entered (by the VM's unwinder) at exactly the
        operand-stack depth recorded at SETUP_EXCEPT, so the verifier can
        model the exception edge as a plain branch with stack delta 0.
        """
        line = node.lineno
        if node.orelse:
            raise CompileError("try/else is not supported", line)
        if node.finalbody:
            raise CompileError("try/finally is not supported", line)
        if len(node.handlers) != 1:
            raise CompileError("only a single except handler is supported", line)
        handler = node.handlers[0]
        if handler.type is not None or handler.name is not None:
            raise CompileError(
                "only bare 'except:' handlers are supported", handler.lineno
            )
        setup_ix = code.emit(op.SETUP_EXCEPT, None, line)
        self._try_depth += 1
        self._compile_body(node.body, code, loops, is_module)
        self._try_depth -= 1
        code.emit(op.POP_BLOCK, None, self._last_line(code))
        end_fixup = code.emit(op.JUMP, None, self._last_line(code))
        code.patch_jump(setup_ix, len(code))
        self._compile_body(handler.body, code, loops, is_module)
        code.patch_jump(end_fixup, len(code))

    # -- expressions ---------------------------------------------------------

    def _expr(self, node: ast.expr, code: CodeObject) -> None:
        line = node.lineno
        if isinstance(node, ast.Constant):
            code.emit(op.LOAD_CONST, code.const_index(node.value), line)
        elif isinstance(node, ast.Name):
            code.emit(op.LOAD_NAME, node.id, line)
        elif isinstance(node, ast.BinOp):
            symbol = _BINOP_SYMBOLS.get(type(node.op))
            if symbol is None:
                raise CompileError(
                    f"unsupported binary operator: {type(node.op).__name__}", line
                )
            self._expr(node.left, code)
            self._expr(node.right, code)
            code.emit(op.BINARY_OP, symbol, line)
        elif isinstance(node, ast.UnaryOp):
            symbol = _UNARYOP_SYMBOLS.get(type(node.op))
            if symbol is None:
                raise CompileError(
                    f"unsupported unary operator: {type(node.op).__name__}", line
                )
            self._expr(node.operand, code)
            code.emit(op.UNARY_OP, symbol, line)
        elif isinstance(node, ast.BoolOp):
            jump_op = (
                op.JUMP_IF_FALSE_OR_POP
                if isinstance(node.op, ast.And)
                else op.JUMP_IF_TRUE_OR_POP
            )
            fixups = []
            for i, value in enumerate(node.values):
                self._expr(value, code)
                if i < len(node.values) - 1:
                    fixups.append(code.emit(jump_op, None, line))
            end = len(code)
            for fixup in fixups:
                code.patch_jump(fixup, end)
        elif isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise CompileError("chained comparisons are not supported", line)
            symbol = _CMPOP_SYMBOLS.get(type(node.ops[0]))
            if symbol is None:
                raise CompileError(
                    f"unsupported comparison: {type(node.ops[0]).__name__}", line
                )
            self._expr(node.left, code)
            self._expr(node.comparators[0], code)
            code.emit(op.COMPARE_OP, symbol, line)
        elif isinstance(node, ast.IfExp):
            self._expr(node.test, code)
            else_fixup = code.emit(op.POP_JUMP_IF_FALSE, None, line)
            self._expr(node.body, code)
            end_fixup = code.emit(op.JUMP, None, line)
            code.patch_jump(else_fixup, len(code))
            self._expr(node.orelse, code)
            code.patch_jump(end_fixup, len(code))
        elif isinstance(node, ast.Call):
            self._compile_call(node, code)
        elif isinstance(node, ast.Attribute):
            self._expr(node.value, code)
            code.emit(op.LOAD_ATTR, node.attr, line)
        elif isinstance(node, ast.Subscript):
            self._expr(node.value, code)
            self._expr(node.slice, code)
            code.emit(op.BINARY_SUBSCR, None, line)
        elif isinstance(node, ast.Slice):
            count = 2
            self._expr_or_none(node.lower, code, line)
            self._expr_or_none(node.upper, code, line)
            if node.step is not None:
                self._expr(node.step, code)
                count = 3
            code.emit(op.BUILD_SLICE, count, line)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            # Both materialize to a list (generator expressions are eager
            # in the simulated subset). Single generator, optional guards.
            self._compile_comprehension(node, code)
        elif isinstance(node, ast.List):
            for element in node.elts:
                self._expr(element, code)
            code.emit(op.BUILD_LIST, len(node.elts), line)
        elif isinstance(node, ast.Tuple):
            for element in node.elts:
                self._expr(element, code)
            code.emit(op.BUILD_TUPLE, len(node.elts), line)
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if key is None:
                    raise CompileError("dict unpacking is not supported", line)
                self._expr(key, code)
                self._expr(value, code)
            code.emit(op.BUILD_MAP, len(node.keys), line)
        else:
            raise CompileError(f"unsupported expression: {type(node).__name__}", line)

    def _compile_comprehension(self, node, code: CodeObject) -> None:
        """Lower ``[elt for tgt in iter if cond...]`` to an append loop.

        Like Python 2 (and unlike CPython 3's hidden scope), the loop
        target leaks into the enclosing scope — documented subset
        behaviour, immaterial for profiling workloads.
        """
        line = node.lineno
        if len(node.generators) != 1:
            raise CompileError("only single-generator comprehensions", line)
        gen = node.generators[0]
        if gen.is_async:
            raise CompileError("async comprehensions are not supported", line)
        code.emit(op.BUILD_LIST, 0, line)
        self._expr(gen.iter, code)
        code.emit(op.GET_ITER, None, line)
        start = len(code)
        exit_fixup = code.emit(op.FOR_ITER, None, line)
        self._store_target(gen.target, code)
        for test in gen.ifs:
            self._expr(test, code)
            code.emit(op.POP_JUMP_IF_FALSE, start, line)
        self._expr(node.elt, code)
        # Append past the iterator to the accumulator list (depth 2).
        code.emit(op.LIST_APPEND, 2, line)
        code.emit(op.JUMP, start, line)
        code.patch_jump(exit_fixup, len(code))

    def _expr_or_none(self, node: Optional[ast.expr], code: CodeObject, line: int) -> None:
        if node is None:
            code.emit(op.LOAD_CONST, code.const_index(None), line)
        else:
            self._expr(node, code)

    def _compile_call(self, node: ast.Call, code: CodeObject) -> None:
        line = node.lineno
        kwnames: Tuple[str, ...] = ()
        for keyword in node.keywords:
            if keyword.arg is None:
                raise CompileError("**kwargs call syntax is not supported", line)
        is_method = isinstance(node.func, ast.Attribute)
        if is_method:
            self._expr(node.func.value, code)
            code.emit(op.LOAD_METHOD, node.func.attr, line)
        else:
            self._expr(node.func, code)
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                raise CompileError("*args call syntax is not supported", line)
            self._expr(arg, code)
        for keyword in node.keywords:
            self._expr(keyword.value, code)
        kwnames = tuple(k.arg for k in node.keywords)
        call_arg = (len(node.args), kwnames)
        code.emit(op.CALL_METHOD if is_method else op.CALL, call_arg, line)
