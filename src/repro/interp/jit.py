"""Trace-JIT tier: compile hot loop regions into specialized closures.

The threaded-dispatch interpreter (``repro.interp.vm``) is tier 0. This
module adds tier 1: once a loop header has executed ``REPRO_JIT_THRESHOLD``
times (counted in the per-entry hit cells attached by ``_build_entries``),
the natural-loop region behind it is compiled into one specialized Python
closure — a *trace* — and subsequent header executions run the whole region
inside that closure instead of the dispatch loop.

The contract that makes a JIT shippable in this codebase is **bit
identity**: stdout, the schedule, every profiler sample, every ground-truth
counter, and every allocator event must be exactly what the interpreter
tier produces (DESIGN.md §11). The compiled code therefore performs the
*same observable work in the same order* as the dispatch loop and merely
strips the interpretation overhead around it:

* the virtual clock is advanced with the identical per-op float-add
  sequence (``cpu += c; wall += c`` — float addition is non-associative,
  so advances are never batched);
* ground-truth Python time is flushed at the same line transitions with
  the same single multiply (``gt_ops * op_cost``);
* allocator churn performs the identical ``py_alloc``/FIFO/``py_free``
  calls with ``frame.lineno`` current, so PyMem hook streams are equal;
* the eval-breaker phase (quantum countdown) is recomputed on exit so the
  interpreter resumes with the exact counter it would have had.

Guards *deoptimize* back to the interpreter — returning the resume pc with
all state written back — on anything the specialized code did not bake in:
operand-type instability, inline-cache misses, container index misses, and
at every observation point. Observation points are enforced structurally:

* a trace is only entered when no tracer is active, no signal is pending
  for the main thread, the clock fast path is valid (no fault injector, no
  external clock observers — so under fault injection the VM simply stays
  on tier 0), and the *budget guard* holds: the worst-case acyclic op
  count of the region cannot reach the earliest cached timer/preemption
  deadline;
* the budget guard is re-checked at every backward edge inside the trace;
* after every operation that reaches the memory subsystem (churn, list
  growth, refcount drops that destroy) a *safepoint* reloads the clock —
  profiler hooks charge overhead through it — and deopts if a cached
  deadline was crossed, which is precisely the boundary where the
  interpreter's own eval breaker would have polled.

Kill switch: ``REPRO_JIT=0``. Threshold: ``REPRO_JIT_THRESHOLD`` (default
``16``; ``0`` compiles every loop at its first back edge, the
"forced" tier of the equivalence fuzzer).
"""

from __future__ import annotations

import math
import os
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.interp import opcodes as op
from repro.interp.objects import HeapBacked, SimDict, SimList

__all__ = [
    "CompiledTrace",
    "JIT_FAILED",
    "compile_trace",
    "config_key",
    "threshold_from_env",
    "iter_hit_cells",
    "trace_at",
    "jit_stats",
]

DEFAULT_THRESHOLD = 16
#: Guard failures tolerated before a region is abandoned to tier 0.
DEOPT_LIMIT = 32
#: Regions larger than this are never compiled (codegen size bound).
MAX_REGION_OPS = 256


class _JitFailed:
    """Sentinel stored in a hit cell when a region cannot (or should not)
    be compiled; the interpreter never retries."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<JIT_FAILED>"


JIT_FAILED = _JitFailed()

# Sentinels for the generated code (never leak into program values).
_EXHAUSTED = object()
_MISSING = object()

#: Operand classes with exact host numeric semantics (bool <: int at the
#: value level; complex excluded — it deopts, keeping guards cheap).
_NUM_CLASSES = frozenset({int, float, bool})

# Per-block type lattice. Tags are facts proven about the value in a stack
# slot (from constants, operator results, or passed guards):
#   'int'   — int or bool            (implies 'num')
#   'num'   — int, float, or bool    (implies 'nonhb')
#   'str'   — str                    (implies 'nonhb')
#   'nonhb' — any host object, provably not HeapBacked
# The lattice elides or narrows operand guards and skips HeapBacked
# isinstance checks; it is reset at every block boundary (conservative
# merge), so no fact ever crosses a control-flow join.
_TAG_RANK = {"nonhb": 1, "str": 2, "num": 2, "int": 3}


def _refine(old: Optional[str], new: Optional[str]) -> Optional[str]:
    if new is None or old == new:
        return old if old is not None else new
    if old is None:
        return new
    return new if _TAG_RANK[new] > _TAG_RANK[old] else old


def _is_num(tag: Optional[str]) -> bool:
    return tag == "int" or tag == "num"


def _is_int(tag: Optional[str]) -> bool:
    return tag == "int"


def _is_nonhb(tag: Optional[str]) -> bool:
    return tag is not None


def threshold_from_env() -> Optional[int]:
    """Resolved JIT configuration: ``None`` when disabled via ``REPRO_JIT=0``,
    otherwise the hotness threshold from ``REPRO_JIT_THRESHOLD``."""
    if os.environ.get("REPRO_JIT", "1").strip() == "0":
        return None
    raw = os.environ.get("REPRO_JIT_THRESHOLD", "")
    if not raw:
        return DEFAULT_THRESHOLD
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_THRESHOLD


def config_key() -> Tuple[str, Optional[int]]:
    """Fingerprint of the resolved JIT configuration, for compile caches.

    Code objects carry tier state (hit cells, compiled traces), so cached
    compilations must not be shared across JIT configurations — the
    ``astcompile`` LRU includes this key.
    """
    return ("jit", threshold_from_env())


class CompiledTrace:
    """A compiled loop region plus its entry metadata.

    ``fn`` is the generated closure (see :class:`_RegionCompiler` for the
    calling convention); ``margin_ops`` bounds the clock movement of one
    uninterrupted pass so the interpreter's entry guard can prove no
    observation point falls inside; ``enters``/``deopts`` are diagnostics
    (and feed the give-up heuristic in the dispatch loop).
    """

    __slots__ = (
        "fn",
        "start",
        "end",
        "entry_pc",
        "margin_ops",
        "enters",
        "deopts",
        "source",
        "name",
    )

    def __init__(self, fn, start: int, end: int, entry_pc: int, margin_ops: int, source: str, name: str) -> None:
        self.fn = fn
        self.start = start
        self.end = end
        self.entry_pc = entry_pc
        self.margin_ops = margin_ops
        self.enters = 0
        self.deopts = 0
        self.source = source
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompiledTrace {self.name} [{self.start}..{self.end}] "
            f"enters={self.enters} deopts={self.deopts}>"
        )


class _Unsupported(Exception):
    """Raised during codegen when the region uses an op (or an op form)
    the trace compiler does not specialize."""


# ---------------------------------------------------------------------------
# static stack depths
# ---------------------------------------------------------------------------

_SIMPLE_EFFECT = {
    op.LOAD_NAME: 1,
    op.LOAD_CONST: 1,
    op.MAKE_FUNCTION: 1,
    op.STORE_NAME: -1,
    op.POP_TOP: -1,
    op.LIST_APPEND: -1,
    op.BINARY_OP: -1,
    op.COMPARE_OP: -1,
    op.BINARY_SUBSCR: -1,
    op.STORE_SUBSCR: -3,
    op.LOAD_ATTR: 0,
    op.LOAD_METHOD: 0,
    op.GET_ITER: 0,
    op.UNARY_OP: 0,
    op.NOP: 0,
    op.POP_BLOCK: 0,
    op.DELETE_NAME: 0,
}


def _stack_depths(code) -> Optional[List[Optional[int]]]:
    """Absolute operand-stack depth before each instruction.

    The compiler emits statically balanced code (the PR 1 verifier checks
    this), so every pc has a single consistent depth; a conflict or an
    unknown opcode yields ``None`` and the region is never compiled.
    """
    instrs = code.instructions
    n = len(instrs)
    depths: List[Optional[int]] = [None] * n
    work: List[Tuple[int, int]] = [(0, 0)]
    while work:
        pc, d = work.pop()
        if pc >= n or d < 0:
            return None
        known = depths[pc]
        if known is not None:
            if known != d:
                return None
            continue
        depths[pc] = d
        instr = instrs[pc]
        opcode = instr.opcode
        if opcode == op.JUMP:
            work.append((instr.arg, d))
        elif opcode in (op.POP_JUMP_IF_FALSE, op.POP_JUMP_IF_TRUE):
            work.append((pc + 1, d - 1))
            work.append((instr.arg, d - 1))
        elif opcode in (op.JUMP_IF_FALSE_OR_POP, op.JUMP_IF_TRUE_OR_POP):
            work.append((pc + 1, d - 1))
            work.append((instr.arg, d))
        elif opcode == op.FOR_ITER:
            work.append((pc + 1, d + 1))
            work.append((instr.arg, d - 1))
        elif opcode == op.RETURN_VALUE:
            continue
        elif opcode == op.SETUP_EXCEPT:
            work.append((pc + 1, d))
            work.append((instr.arg, d))
        elif opcode in (op.CALL, op.CALL_METHOD):
            npos, kwnames = instr.arg
            work.append((pc + 1, d - npos - len(kwnames)))
        elif opcode in (op.BUILD_LIST, op.BUILD_TUPLE):
            work.append((pc + 1, d - instr.arg + 1))
        elif opcode == op.BUILD_MAP:
            work.append((pc + 1, d - 2 * instr.arg + 1))
        elif opcode == op.BUILD_SLICE:
            work.append((pc + 1, d - instr.arg + 1))
        elif opcode == op.UNPACK_SEQUENCE:
            work.append((pc + 1, d - 1 + instr.arg))
        else:
            effect = _SIMPLE_EFFECT.get(opcode)
            if effect is None:
                return None
            work.append((pc + 1, d + effect))
    return depths


_FLOOR_OFFSET = {
    op.STORE_NAME: 1,
    op.POP_TOP: 1,
    op.POP_JUMP_IF_FALSE: 1,
    op.POP_JUMP_IF_TRUE: 1,
    op.JUMP_IF_FALSE_OR_POP: 1,
    op.JUMP_IF_TRUE_OR_POP: 1,
    op.FOR_ITER: 1,
    op.GET_ITER: 1,
    op.UNARY_OP: 1,
    op.LOAD_ATTR: 1,
    op.LOAD_METHOD: 1,
    op.UNPACK_SEQUENCE: 1,
    op.BINARY_OP: 2,
    op.COMPARE_OP: 2,
    op.BINARY_SUBSCR: 2,
    op.STORE_SUBSCR: 3,
}


def _access_floor(instr, d: int) -> int:
    """Lowest operand-stack slot index the instruction reads or writes
    when executed at depth ``d``."""
    opcode = instr.opcode
    if opcode in (op.BUILD_LIST, op.BUILD_TUPLE):
        return d - instr.arg
    if opcode == op.LIST_APPEND:
        return d - 1 - instr.arg
    return d - _FLOOR_OFFSET.get(opcode, 0)


# ---------------------------------------------------------------------------
# region discovery
# ---------------------------------------------------------------------------


def _find_region(code, start: int) -> Optional[Tuple[int, int, int]]:
    """``(start, end, entry_pc)`` of the natural loop headed at ``start``.

    ``start`` is either a FOR_ITER header (entry one past it: the header
    iteration that triggers compilation has already pushed its value) or
    the target of a backward JUMP (a while-loop condition; entry at the
    target itself). ``end`` is the last backward jump to the header.
    """
    instrs = code.instructions
    if start >= len(instrs):
        return None
    back_edges = [
        i
        for i in range(start + 1, len(instrs))
        if instrs[i].opcode == op.JUMP and instrs[i].arg == start
    ]
    if not back_edges:
        return None
    end = max(back_edges)
    if end - start + 1 > MAX_REGION_OPS:
        return None
    entry_pc = start + 1 if instrs[start].opcode == op.FOR_ITER else start
    return (start, end, entry_pc)


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------


class _Emitter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def indent(self) -> None:
        self.depth += 1

    def dedent(self) -> None:
        self.depth -= 1


def _const_expr(value: Any, pc: int, namespace: Dict[str, Any]) -> str:
    """Inline literal for exactly representable constants; otherwise a
    reference interned into the trace namespace (constant folding)."""
    if value is None or value is True or value is False:
        return repr(value)
    cls = value.__class__
    if cls is int or cls is str:
        return repr(value)
    if cls is float and math.isfinite(value):
        return repr(value)
    name = f"K{pc}"
    namespace[name] = value
    return name


class _RegionCompiler:
    """Generates the trace closure for one loop region.

    Calling convention of the generated function::

        fn(vm, frame, stack, f_locals, f_globals, thread, clock, mem,
           fifo, gt, bget, c, churn, cb, cd, cdl, wdl, cpu, wall, g, line0,
           mq)
        -> (resume_pc, ops_executed, gt_ops, current_line)

    ``mq`` ("memory quiet") is computed by the dispatch loop at trace
    entry: the memory subsystem carries its default hooks and no fault
    injector, so no allocator call can read or advance the clock. Under
    ``mq`` the trace runs allocator work bare; otherwise every memory
    touch is bracketed by a clock writeback and a safepoint.

    All parameters are the dispatch loop's own hoisted locals; the return
    tuple is merged back into them, after which control falls into the
    loop's eval-breaker block — so a trace exit is indistinguishable from
    the interpreter having just finished the instruction before
    ``resume_pc``.
    """

    def __init__(self, code, entries, start: int, end: int, entry_pc: int, depths: List[int]) -> None:
        self.code = code
        self.entries = entries
        self.start = start
        self.end = end
        self.entry_pc = entry_pc
        self.depths = depths
        self.namespace: Dict[str, Any] = {
            "_SL": SimList,
            "_SD": SimDict,
            "_HB": HeapBacked,
            "_EXH": _EXHAUSTED,
            "_MISS": _MISSING,
            "_NUM": _NUM_CLASSES,
        }
        self.em = _Emitter()
        # compile-time accounting since the last sync point
        self.pending_k = 0
        self.pending_g = 0
        #: Deferred module-scope ``_globals_version`` bumps (STORE_NAME);
        #: folded into the version at every sync point. Mid-trace staleness
        #: is unobservable: module-level loads hit f_locals (is f_globals)
        #: before the cache, and ``global``-declared stores bump inline.
        self.pending_v = 0
        self.static_line: Optional[int] = None
        self.uses_alloc = False
        self.uses_mod = False
        self.uses_flget = False
        #: Names resolved once in the prologue into ``_n_*`` registers.
        self.hoisted: Set[str] = set()
        #: Subset of ``hoisted`` whose register mirrors the f_locals entry
        #: (names the region stores; prologue bails unless f_locals holds
        #: them, so stores can read the displaced value from the register).
        self.hoisted_local: Set[str] = set()
        # per-block dataflow state (reset at every block leader)
        self.types: Dict[int, Optional[str]] = {}
        self.consts: Dict[int, Any] = {}
        self.alias: Dict[int, str] = {}
        self.block_regs: Set[str] = set()
        self.reg_types: Dict[str, Optional[str]] = {}

    # -- structure ----------------------------------------------------------

    def _leaders(self) -> List[int]:
        leaders: Set[int] = {self.entry_pc, self.start}
        instrs = self.code.instructions
        for pc in range(self.start, self.end + 1):
            instr = instrs[pc]
            opcode = instr.opcode
            if opcode in (
                op.JUMP,
                op.POP_JUMP_IF_FALSE,
                op.POP_JUMP_IF_TRUE,
                op.JUMP_IF_FALSE_OR_POP,
                op.JUMP_IF_TRUE_OR_POP,
                op.FOR_ITER,
            ):
                target = instr.arg
                if self.start <= target <= self.end:
                    leaders.add(target)
        return sorted(leaders)

    def _reachable(self, leaders: List[int], block_of: Dict[int, int]) -> List[int]:
        """Blocks reachable from the entry along normal (non-exception)
        edges, as a sorted list of leader pcs."""
        instrs = self.code.instructions
        succ: Dict[int, List[int]] = {}
        bounds = leaders + [self.end + 1]
        for i, lead in enumerate(leaders):
            last = bounds[i + 1] - 1
            out: List[int] = []
            for pc in range(lead, last + 1):
                instr = instrs[pc]
                opcode = instr.opcode
                is_last = pc == last
                if opcode == op.JUMP:
                    if self.start <= instr.arg <= self.end:
                        out.append(instr.arg)
                    break
                if opcode in (
                    op.POP_JUMP_IF_FALSE,
                    op.POP_JUMP_IF_TRUE,
                    op.JUMP_IF_FALSE_OR_POP,
                    op.JUMP_IF_TRUE_OR_POP,
                    op.FOR_ITER,
                ):
                    if self.start <= instr.arg <= self.end:
                        out.append(instr.arg)
                if opcode == op.RETURN_VALUE:
                    break
                if is_last and pc + 1 <= self.end:
                    out.append(pc + 1)
            succ[lead] = out
        seen: Set[int] = set()
        work = [self.entry_pc]
        while work:
            lead = work.pop()
            if lead in seen:
                continue
            seen.add(lead)
            for nxt in succ.get(lead, []):
                if nxt not in seen:
                    work.append(nxt)
        return sorted(seen)

    def _max_ops(self, reachable: List[int], leaders: List[int]) -> int:
        """Longest acyclic op path through the region (backward edges cut:
        every backward transfer re-checks the budget)."""
        instrs = self.code.instructions
        bounds = leaders + [self.end + 1]
        size = {}
        fwd: Dict[int, List[int]] = {}
        for i, lead in enumerate(leaders):
            if lead not in reachable:
                continue
            last = bounds[i + 1] - 1
            count = 0
            out: List[int] = []
            for pc in range(lead, last + 1):
                count += 1
                instr = instrs[pc]
                opcode = instr.opcode
                if opcode == op.JUMP:
                    if self.start <= instr.arg <= self.end and instr.arg > pc:
                        out.append(instr.arg)
                    break
                if opcode in (
                    op.POP_JUMP_IF_FALSE,
                    op.POP_JUMP_IF_TRUE,
                    op.JUMP_IF_FALSE_OR_POP,
                    op.JUMP_IF_TRUE_OR_POP,
                    op.FOR_ITER,
                ):
                    if self.start <= instr.arg <= self.end and instr.arg > pc:
                        out.append(instr.arg)
                if pc == last and pc + 1 <= self.end:
                    out.append(pc + 1)
            size[lead] = count
            fwd[lead] = out
        longest: Dict[int, int] = {}
        for lead in sorted(size, reverse=True):
            best = 0
            for nxt in fwd.get(lead, []):
                best = max(best, longest.get(nxt, 0))
            longest[lead] = size[lead] + best
        return max(longest.values(), default=1)

    # -- emission helpers ---------------------------------------------------

    def _emit_sync_snapshot(self, extra: int) -> None:
        """Fold pending static op counts (plus ``extra`` for the op being
        emitted, when it has completed) into the runtime counters, without
        mutating compiler state — safe inside conditional branches; the
        fallthrough path keeps accumulating the same pending counts."""
        n = self.pending_k + extra
        if n:
            self.em.line(f"k += {n}")
        m = self.pending_g + extra
        if m:
            self.em.line("if gt is not None:")
            self.em.indent()
            self.em.line(f"g += {m}")
            self.em.dedent()
        if self.pending_v:
            self.em.line("if _mod:")
            self.em.indent()
            self.em.line(f"vm._globals_version += {self.pending_v}")
            self.em.dedent()

    def _stack_expr(self, depth: int) -> str:
        slots = ", ".join(f"s{j}" for j in range(self.base, depth))
        return f"[{slots}]" if slots else "[]"

    def _emit_exit(
        self,
        target_pc: int,
        depth: int,
        deopt: bool,
        extra: int,
        synced_clock: bool = False,
    ) -> None:
        """Write all state back and return control to the interpreter with
        ``resume_pc = target_pc`` (current depth ``depth``). ``extra`` is 1
        when the current op completed before this exit (safepoints), 0 when
        it did not (deopts — the interpreter re-executes it)."""
        em = self.em
        self._emit_sync_snapshot(extra)
        em.line(f"stack[_base:] = {self._stack_expr(depth)}")
        if not synced_clock:
            em.line("clock._cpu = cpu")
            em.line("clock._wall = wall")
        if deopt:
            em.line("_T.deopts += 1")
        em.line(f"return ({target_pc}, k, g, _line)")

    def _emit_deopt(self, pc: int, depth: int) -> None:
        self._emit_exit(pc, depth, deopt=True, extra=0)

    def _emit_flush_line(self, lineno: int) -> None:
        em = self.em
        if self.pending_g:
            em.line("if gt is not None:")
            em.indent()
            em.line(f"g += {self.pending_g}")
            em.dedent()
            self.pending_g = 0
        em.line("if g:")
        em.indent()
        em.line("gt.record_python_time(thread, g * c)")
        em.line("g = 0")
        em.dedent()
        em.line(f"frame.lineno = {lineno}")
        em.line(f"_line = {lineno}")

    def _emit_line_bookkeeping(self, lineno: int) -> None:
        if self.static_line is None:
            self.em.line(f"if _line != {lineno}:")
            self.em.indent()
            self._emit_flush_line(lineno)
            self.em.dedent()
        elif lineno != self.static_line:
            self._emit_flush_line(lineno)
        self.static_line = lineno

    def _emit_charge(self) -> None:
        self.em.line("cpu += c")
        self.em.line("wall += c")

    def _emit_mem_op(self, emit_body, next_pc: int, depth_after: int) -> None:
        """An operation that reaches the memory subsystem. In quiet mode
        (``mq``: default hooks, no fault injector — so the allocator
        provably never reads or advances the clock) the body runs bare.
        Otherwise it is bracketed by a clock writeback and a safepoint:
        hooks may have charged overhead, so the clock is reloaded and the
        trace exits at this boundary whenever the rest of the region could
        cross a deadline — the interpreter then re-executes the remaining
        ops under its per-op eval breaker, delivering at the exact op
        boundary the interpreter-only tier would."""
        em = self.em
        em.line("if mq:")
        em.indent()
        emit_body()
        em.dedent()
        em.line("else:")
        em.indent()
        self._emit_clock_writeback()
        emit_body()
        self._emit_mem_safepoint(next_pc, depth_after)
        em.dedent()

    def _emit_churn(self, next_pc: int, depth_after: int) -> None:
        """The inlined churn allocation (identical to the dispatch loop's),
        as a memory op (safepointed unless quiet)."""
        self.uses_alloc = True
        em = self.em
        em.line("if churn:")
        em.indent()

        def body() -> None:
            em.line("fifo.append(py_alloc(cb, thread))")
            em.line("if len(fifo) > cd:")
            em.indent()
            em.line("py_free(fifo.popleft(), thread)")
            em.dedent()

        self._emit_mem_op(body, next_pc, depth_after)
        em.dedent()

    def _emit_mem_safepoint(self, next_pc: int, depth_after: int) -> None:
        # The margin matters: hooks advance the clock by amounts the
        # backward-jump budget never sees, and the plain ops between here
        # and the next checkpoint carry no deadline checks of their own.
        # Exiting whenever the remaining region *could* cross keeps every
        # crossing op boundary on the interpreter, where the eval breaker
        # delivers at the exact same op as the interpreter-only tier.
        em = self.em
        em.line("cpu = clock._cpu")
        em.line("wall = clock._wall")
        em.line("if cpu + _m >= cdl or wall + _m >= wdl:")
        em.indent()
        self._emit_exit(next_pc, depth_after, deopt=False, extra=1, synced_clock=True)
        em.dedent()

    def _emit_clock_writeback(self) -> None:
        self.em.line("clock._cpu = cpu")
        self.em.line("clock._wall = wall")

    # -- per-block dataflow --------------------------------------------------

    def _reset_block_state(self) -> None:
        self.pending_k = 0
        self.pending_g = 0
        self.pending_v = 0
        self.static_line = None
        self.types.clear()
        self.consts.clear()
        self.alias.clear()
        # Hoisted registers stay warm across blocks: the prologue resolved
        # them, and every STORE_NAME refreshes its register. Type facts do
        # NOT survive the block boundary (conservative merge).
        self.block_regs = set(self.hoisted)
        self.reg_types.clear()

    def _hoistable(
        self, reachable: List[int], spans: Dict[int, int]
    ) -> Tuple[Set[str], Set[str]]:
        """``(loaded, stored)`` non-``global`` names of the region: names
        resolvable once at trace entry and forwarded from registers
        thereafter. Sound because only STORE_NAME can mutate a namespace
        inside a trace: non-``global`` stores write f_locals and refresh the
        register, ``global``-declared names are excluded entirely, and
        builtins are immutable here — so the register always equals what the
        interpreter's LOAD_NAME resolution would produce. A name missing at
        entry makes the trace bail before executing anything (the
        interpreter then runs the region and raises NameError at the right
        pc, or defines the name first — either way observably identical).

        Stored names carry a stronger prologue requirement: resolution must
        hit f_locals (else the trace bails), so their register also mirrors
        the f_locals entry — which is exactly the old value STORE_NAME
        displaces, letting stores skip the namespace read."""
        instrs = self.code.instructions
        gnames = self.code.global_names
        loaded: Set[str] = set()
        stored: Set[str] = set()
        for lead in reachable:
            for pc in range(lead, spans[lead] + 1):
                instr = instrs[pc]
                if instr.opcode == op.LOAD_NAME and instr.arg not in gnames:
                    loaded.add(instr.arg)
                elif instr.opcode == op.STORE_NAME and instr.arg not in gnames:
                    stored.add(instr.arg)
                elif instr.opcode == op.JUMP:
                    break
        return loaded, stored

    def _set_slot(self, idx: int, tag: Optional[str], const: Any = _MISSING) -> None:
        """Record the dataflow facts for a freshly written stack slot."""
        self.types[idx] = tag
        if const is _MISSING:
            self.consts.pop(idx, None)
        else:
            self.consts[idx] = const
        self.alias.pop(idx, None)

    def _propagate(self, slot: int, tag: str) -> None:
        """A passed guard proved the value in ``slot`` carries ``tag``;
        refine the slot and any register aliasing the same value."""
        self.types[slot] = _refine(self.types.get(slot), tag)
        name = self.alias.get(slot)
        if name is not None and name in self.block_regs:
            self.reg_types[name] = _refine(self.reg_types.get(name), tag)

    def _emit_transfer(
        self, from_pc: int, target: int, depth: int, block_ids: Dict[int, int], extra: int
    ) -> None:
        """Jump to ``target``: a block transfer when in-region (with a
        budget re-check on backward edges), otherwise a region exit.
        ``extra`` is 1 when emitted as part of a jump op (count it), 0 for
        block fall-through."""
        em = self.em
        if self.start <= target <= self.end and target in block_ids:
            if target <= from_pc:
                em.line("if cpu + _m >= cdl or wall + _m >= wdl:")
                em.indent()
                self._emit_exit(target, depth, deopt=False, extra=extra)
                em.dedent()
            self._emit_sync_snapshot(extra)
            em.line(f"_bb = {block_ids[target]}")
            em.line("continue")
        else:
            self._emit_exit(target, depth, deopt=False, extra=extra)

    # -- per-op emission ----------------------------------------------------

    def _emit_op(self, pc: int, block_ids: Dict[int, int]) -> bool:
        """Emit one instruction; returns True when the op terminated the
        block (unconditional transfer or region exit)."""
        instrs = self.code.instructions
        instr = instrs[pc]
        opcode = instr.opcode
        arg = instr.arg
        d = self.depths[pc]
        em = self.em

        self._emit_line_bookkeeping(instr.lineno)

        if opcode == op.LOAD_CONST:
            entry_arg = self.entries[pc][1]  # pre-resolved constant
            self._emit_charge()
            em.line(f"s{d} = {_const_expr(entry_arg, pc, self.namespace)}")
            cls = entry_arg.__class__
            if cls is bool or cls is int:
                tag: Optional[str] = "int"
            elif cls is float:
                tag = "num"
            elif cls is str:
                tag = "str"
            elif entry_arg is None or cls is tuple:
                tag = "nonhb"
            else:
                tag = None
            self._set_slot(d, tag, entry_arg)

        elif opcode == op.LOAD_NAME:
            name = arg
            if name in self.block_regs:
                # Store-load forwarding: the register holds exactly what
                # the namespace lookup would resolve (no NameError
                # possible, so no deopt; the charge is unchanged).
                self._emit_charge()
                em.line(f"s{d} = _n_{name}")
                self._set_slot(d, self.reg_types.get(name))
                self.alias[d] = name
                self.pending_k += 1
                self.pending_g += 1
                return False
            cache_name = f"C{pc}"
            self.namespace[cache_name] = self.entries[pc][4]
            self.uses_flget = True
            em.line(f"s{d} = flget({name!r}, _MISS)")
            em.line(f"if s{d} is _MISS:")
            em.indent()
            em.line(f"_c = {cache_name}")
            em.line("if _c[0] is f_globals and _c[1] == vm._globals_version:")
            em.indent()
            em.line(f"s{d} = _c[2]")
            em.dedent()
            em.line("else:")
            em.indent()
            em.line(f"s{d} = f_globals.get({name!r}, _MISS)")
            em.line(f"if s{d} is _MISS:")
            em.indent()
            em.line(f"s{d} = bget({name!r}, _MISS)")
            em.line(f"if s{d} is _MISS:")
            em.indent()
            self._emit_deopt(pc, d)  # NameError: re-raised by the interpreter
            em.dedent()
            em.dedent()
            em.line("_c[0] = f_globals")
            em.line("_c[1] = vm._globals_version")
            em.line(f"_c[2] = s{d}")
            em.dedent()
            em.dedent()
            self._emit_charge()
            self._set_slot(d, None)

        elif opcode == op.STORE_NAME:
            name = arg
            value = f"s{d - 1}"
            vtag = self.types.get(d - 1)
            if name in self.code.global_names:
                # ``global``-declared: unforwarded slow path with an
                # inline version bump (a later cached load of this name
                # must observe the invalidation immediately).
                self._emit_charge()
                em.line(f"_o = f_globals.get({name!r})")
                if _is_nonhb(vtag):
                    em.line(f"f_globals[{name!r}] = {value}")
                    em.line("vm._globals_version += 1")
                    em.line("if isinstance(_o, _HB):")
                    em.indent()
                    self._emit_mem_op(lambda: em.line("_o.decref()"), pc + 1, d - 1)
                    em.dedent()
                else:
                    em.line(f"if isinstance({value}, _HB):")
                    em.indent()
                    em.line(f"{value}.rc += 1")
                    em.dedent()
                    em.line(f"f_globals[{name!r}] = {value}")
                    em.line("vm._globals_version += 1")
                    em.line(f"if _o is not None and _o is not {value}:")
                    em.indent()
                    em.line("if isinstance(_o, _HB):")
                    em.indent()
                    self._emit_mem_op(lambda: em.line("_o.decref()"), pc + 1, d - 1)
                    em.dedent()
                    em.dedent()
            else:
                self.uses_mod = True
                # Deferred bump: folded into _globals_version (under _mod)
                # at the next sync point; incremented before emission so
                # any exit inside this op includes the completed store.
                self.pending_v += 1
                self._emit_charge()
                # The register mirrors the f_locals entry (prologue bails
                # otherwise), so the displaced value is read without a
                # namespace lookup; the per-block lattice often knows it
                # (and the stored value) cannot be heap-backed.
                otag = self.reg_types.get(name)
                em.line(f"_o = _n_{name}")
                if not _is_nonhb(vtag):
                    em.line(f"if isinstance({value}, _HB):")
                    em.indent()
                    em.line(f"{value}.rc += 1")
                    em.dedent()
                em.line(f"f_locals[{name!r}] = {value}")
                em.line(f"_n_{name} = {value}")
                self.block_regs.add(name)
                self.reg_types[name] = vtag
                if not _is_nonhb(otag):
                    em.line(f"if _o is not {value} and isinstance(_o, _HB):")
                    em.indent()
                    self._emit_mem_op(lambda: em.line("_o.decref()"), pc + 1, d - 1)
                    em.dedent()

        elif opcode == op.BINARY_OP:
            left, right = f"s{d - 2}", f"s{d - 1}"
            lt, rt = self.types.get(d - 2), self.types.get(d - 1)
            rconst = self.consts.get(d - 1, _MISSING)

            def guard(cond: str) -> None:
                em.line(f"if {cond}:")
                em.indent()
                self._emit_deopt(pc, d)
                em.dedent()

            res: Optional[str] = None
            if arg == "+":
                if _is_num(lt) and _is_num(rt):
                    res = "int" if _is_int(lt) and _is_int(rt) else "num"
                elif lt == "str" and rt == "str":
                    res = "str"
                else:
                    if _is_num(lt):
                        guard(f"{right}.__class__ not in _NUM")
                        res = "num"
                    elif _is_num(rt):
                        guard(f"{left}.__class__ not in _NUM")
                        res = "num"
                    elif lt == "str":
                        guard(f"{right}.__class__ is not str")
                        res = "str"
                    elif rt == "str":
                        guard(f"{left}.__class__ is not str")
                        res = "str"
                    else:
                        guard(
                            f"not (({left}.__class__ in _NUM and {right}.__class__ in _NUM)"
                            f" or ({left}.__class__ is str and {right}.__class__ is str))"
                        )
                        res = "nonhb"
                    self._propagate(d - 2, res if res != "nonhb" else "nonhb")
                    self._propagate(d - 1, res if res != "nonhb" else "nonhb")
            elif arg in ("-", "*"):
                if not (_is_num(lt) and _is_num(rt)):
                    if _is_num(lt):
                        guard(f"{right}.__class__ not in _NUM")
                    elif _is_num(rt):
                        guard(f"{left}.__class__ not in _NUM")
                    else:
                        guard(f"not ({left}.__class__ in _NUM and {right}.__class__ in _NUM)")
                    self._propagate(d - 2, "num")
                    self._propagate(d - 1, "num")
                res = "int" if _is_int(lt) and _is_int(rt) else "num"
            elif arg in ("/", "//", "%"):
                nz = (
                    rconst is not _MISSING
                    and rconst.__class__ in _NUM_CLASSES
                    and rconst != 0
                )
                if rconst is not _MISSING and rconst.__class__ in _NUM_CLASSES and rconst == 0:
                    self._emit_deopt(pc, d)  # unconditional ZeroDivisionError
                    return True
                conds = []
                if not (_is_num(lt) and _is_num(rt)):
                    if _is_num(lt):
                        conds.append(f"{right}.__class__ not in _NUM")
                    elif _is_num(rt):
                        conds.append(f"{left}.__class__ not in _NUM")
                    else:
                        conds.append(
                            f"not ({left}.__class__ in _NUM and {right}.__class__ in _NUM)"
                        )
                if not nz:
                    conds.append(f"{right} == 0")
                if conds:
                    guard(" or ".join(conds))
                    self._propagate(d - 2, "num")
                    self._propagate(d - 1, "num")
                if arg == "/":
                    res = "num"
                else:
                    res = "int" if _is_int(lt) and _is_int(rt) else "num"
            elif arg in ("&", "|", "^"):
                if not (_is_int(lt) and _is_int(rt)):
                    if _is_int(lt):
                        guard(f"not ({right}.__class__ is int or {right}.__class__ is bool)")
                    elif _is_int(rt):
                        guard(f"not ({left}.__class__ is int or {left}.__class__ is bool)")
                    else:
                        guard(
                            f"not (({left}.__class__ is int or {left}.__class__ is bool)"
                            f" and ({right}.__class__ is int or {right}.__class__ is bool))"
                        )
                    self._propagate(d - 2, "int")
                    self._propagate(d - 1, "int")
                res = "int"
            elif arg in ("<<", ">>"):
                nonneg = (
                    rconst is not _MISSING
                    and (rconst.__class__ is int or rconst.__class__ is bool)
                    and rconst >= 0
                )
                conds = []
                if not _is_int(lt):
                    conds.append(f"not ({left}.__class__ is int or {left}.__class__ is bool)")
                if not _is_int(rt):
                    conds.append(f"not ({right}.__class__ is int or {right}.__class__ is bool)")
                if not nonneg:
                    conds.append(f"{right} < 0")
                if conds:
                    guard(" or ".join(conds))
                    self._propagate(d - 2, "int")
                    self._propagate(d - 1, "int")
                res = "int"
            else:  # ** and anything exotic: always back to the interpreter
                self._emit_deopt(pc, d)
                return True
            self._emit_charge()
            em.line(f"{left} = {left} {arg} {right}")
            self._set_slot(d - 2, res)
            self._emit_churn(pc + 1, d - 1)

        elif opcode == op.COMPARE_OP:
            left, right = f"s{d - 2}", f"s{d - 1}"
            lt, rt = self.types.get(d - 2), self.types.get(d - 1)
            if arg in ("==", "!="):
                self._emit_charge()
                em.line(f"{left} = {left} {arg} {right}")
            elif arg == "is":
                self._emit_charge()
                em.line(f"{left} = {left} is {right}")
            elif arg == "is not":
                self._emit_charge()
                em.line(f"{left} = {left} is not {right}")
            elif arg in ("<", "<=", ">", ">="):
                if (_is_num(lt) and _is_num(rt)) or (lt == "str" and rt == "str"):
                    pass
                elif _is_num(lt):
                    em.line(f"if {right}.__class__ not in _NUM:")
                    em.indent()
                    self._emit_deopt(pc, d)
                    em.dedent()
                    self._propagate(d - 1, "num")
                elif _is_num(rt):
                    em.line(f"if {left}.__class__ not in _NUM:")
                    em.indent()
                    self._emit_deopt(pc, d)
                    em.dedent()
                    self._propagate(d - 2, "num")
                elif lt == "str":
                    em.line(f"if {right}.__class__ is not str:")
                    em.indent()
                    self._emit_deopt(pc, d)
                    em.dedent()
                    self._propagate(d - 1, "str")
                elif rt == "str":
                    em.line(f"if {left}.__class__ is not str:")
                    em.indent()
                    self._emit_deopt(pc, d)
                    em.dedent()
                    self._propagate(d - 2, "str")
                else:
                    em.line(
                        f"if not (({left}.__class__ in _NUM and {right}.__class__ in _NUM)"
                        f" or ({left}.__class__ is str and {right}.__class__ is str)):"
                    )
                    em.indent()
                    self._emit_deopt(pc, d)
                    em.dedent()
                    self._propagate(d - 2, "nonhb")
                    self._propagate(d - 1, "nonhb")
                self._emit_charge()
                em.line(f"{left} = {left} {arg} {right}")
            elif arg in ("in", "not in"):
                em.line(f"_cls = {right}.__class__")
                em.line("if _cls is not _SD and _cls is not _SL:")
                em.indent()
                self._emit_deopt(pc, d)
                em.dedent()
                self._emit_charge()
                em.line("if _cls is _SD:")
                em.indent()
                em.line(f"{left} = {left} in {right}.data")
                em.dedent()
                em.line("else:")
                em.indent()
                em.line(f"{left} = {left} in {right}.items")
                em.dedent()
                if arg == "not in":
                    em.line(f"{left} = not {left}")
            else:
                raise _Unsupported(f"COMPARE_OP {arg!r}")
            self._set_slot(d - 2, "int")

        elif opcode == op.UNARY_OP:
            v = f"s{d - 1}"
            vt = self.types.get(d - 1)
            if arg == "not":
                self._emit_charge()
                em.line(f"{v} = not {v}")
                res: Optional[str] = "int"
            elif arg in ("-", "+"):
                if not _is_num(vt):
                    em.line(f"if {v}.__class__ not in _NUM:")
                    em.indent()
                    self._emit_deopt(pc, d)
                    em.dedent()
                    self._propagate(d - 1, "num")
                self._emit_charge()
                em.line(f"{v} = {arg}{v}")
                res = "int" if _is_int(vt) else "num"
            elif arg == "~":
                if not _is_int(vt):
                    em.line(f"if not ({v}.__class__ is int or {v}.__class__ is bool):")
                    em.indent()
                    self._emit_deopt(pc, d)
                    em.dedent()
                    self._propagate(d - 1, "int")
                self._emit_charge()
                em.line(f"{v} = ~{v}")
                res = "int"
            else:
                raise _Unsupported(f"UNARY_OP {arg!r}")
            self._set_slot(d - 1, res)
            self._emit_churn(pc + 1, d)

        elif opcode == op.POP_JUMP_IF_FALSE or opcode == op.POP_JUMP_IF_TRUE:
            self._emit_charge()
            cond = "not " if opcode == op.POP_JUMP_IF_FALSE else ""
            em.line(f"if {cond}s{d - 1}:")
            em.indent()
            self._emit_transfer(pc, arg, d - 1, block_ids, extra=1)
            em.dedent()

        elif opcode == op.JUMP_IF_FALSE_OR_POP or opcode == op.JUMP_IF_TRUE_OR_POP:
            self._emit_charge()
            cond = "not " if opcode == op.JUMP_IF_FALSE_OR_POP else ""
            em.line(f"if {cond}s{d - 1}:")
            em.indent()
            self._emit_transfer(pc, arg, d, block_ids, extra=1)
            em.dedent()

        elif opcode == op.JUMP:
            self._emit_charge()
            self._emit_transfer(pc, arg, d, block_ids, extra=1)
            return True

        elif opcode == op.FOR_ITER:
            self._emit_charge()
            em.line(f"_t = next(s{d - 1}, _EXH)")
            em.line("if _t is _EXH:")
            em.indent()
            self._emit_transfer(pc, arg, d - 1, block_ids, extra=1)
            em.dedent()
            em.line(f"s{d} = _t")
            self._set_slot(d, None)

        elif opcode == op.GET_ITER:
            v = f"s{d - 1}"
            em.line(f"_cls = {v}.__class__")
            em.line(
                "if not (_cls is _SL or _cls is _SD or _cls is range"
                " or _cls is str or _cls is tuple or _cls is list):"
            )
            em.indent()
            self._emit_deopt(pc, d)
            em.dedent()
            self._emit_charge()
            em.line("if _cls is _SL:")
            em.indent()
            em.line(f"{v} = iter(list({v}.items))")
            em.dedent()
            em.line("elif _cls is _SD:")
            em.indent()
            em.line(f"{v} = iter(list({v}.data.keys()))")
            em.dedent()
            em.line("else:")
            em.indent()
            em.line(f"{v} = iter({v})")
            em.dedent()
            self._set_slot(d - 1, "nonhb")  # host iterator object

        elif opcode == op.POP_TOP:
            v = f"s{d - 1}"
            self._emit_charge()
            if not _is_nonhb(self.types.get(d - 1)):
                em.line(f"if isinstance({v}, _HB):")
                em.indent()
                self._emit_mem_op(
                    lambda: em.line(f"{v}.release_if_floating()"), pc + 1, d - 1
                )
                em.dedent()

        elif opcode == op.BINARY_SUBSCR:
            cont, idx = f"s{d - 2}", f"s{d - 1}"
            # A proven-int index skips the class check (bool indexes the
            # same element either way; only the deopt-vs-execute choice
            # differs, which is unobservable by construction).
            idx_cls = "" if _is_int(self.types.get(d - 1)) else f"{idx}.__class__ is not int or "
            em.line(f"_cls = {cont}.__class__")
            em.line("if _cls is _SL:")
            em.indent()
            em.line(f"_L = {cont}.items")
            em.line(f"if {idx_cls}not (-len(_L) <= {idx} < len(_L)):")
            em.indent()
            self._emit_deopt(pc, d)
            em.dedent()
            em.dedent()
            em.line("elif _cls is _SD:")
            em.indent()
            em.line(f"if {idx} not in {cont}.data:")
            em.indent()
            self._emit_deopt(pc, d)
            em.dedent()
            em.dedent()
            em.line("elif _cls is tuple or _cls is str:")
            em.indent()
            em.line(f"if {idx_cls}not (-len({cont}) <= {idx} < len({cont})):")
            em.indent()
            self._emit_deopt(pc, d)
            em.dedent()
            em.dedent()
            em.line("else:")
            em.indent()
            self._emit_deopt(pc, d)
            em.dedent()
            self._emit_charge()
            em.line("if _cls is _SL:")
            em.indent()
            em.line(f"{cont} = {cont}.items[{idx}]")
            em.dedent()
            em.line("elif _cls is _SD:")
            em.indent()
            em.line(f"{cont} = {cont}.data[{idx}]")
            em.dedent()
            em.line("else:")
            em.indent()
            em.line(f"{cont} = {cont}[{idx}]")
            em.dedent()
            self._set_slot(d - 2, None)

        elif opcode == op.STORE_SUBSCR:
            value, cont, idx = f"s{d - 3}", f"s{d - 2}", f"s{d - 1}"
            vtag = self.types.get(d - 3)
            idx_cls = "" if _is_int(self.types.get(d - 1)) else f"{idx}.__class__ is not int or "
            em.line(f"_cls = {cont}.__class__")
            em.line("if _cls is _SL:")
            em.indent()
            em.line(f"_L = {cont}.items")
            em.line(f"if {idx_cls}not (-len(_L) <= {idx} < len(_L)):")
            em.indent()
            self._emit_deopt(pc, d)
            em.dedent()
            em.dedent()
            em.line("elif _cls is not _SD:")
            em.indent()
            self._emit_deopt(pc, d)
            em.dedent()
            self._emit_charge()
            em.line("if _cls is _SL:")
            em.indent()
            em.line(f"_o = {cont}.items[{idx}]")
            if _is_nonhb(vtag):
                em.line("if isinstance(_o, _HB):")
            else:
                em.line(f"if isinstance({value}, _HB) or isinstance(_o, _HB):")
            em.indent()
            self._emit_mem_op(
                lambda: em.line(f"{cont}.setitem({idx}, {value})"), pc + 1, d - 3
            )
            em.dedent()
            em.line("else:")
            em.indent()
            em.line(f"{cont}.items[{idx}] = {value}")
            em.dedent()
            em.dedent()
            em.line("else:")
            em.indent()
            self._emit_mem_op(
                lambda: em.line(f"{cont}.setitem({idx}, {value})"), pc + 1, d - 3
            )
            em.dedent()

        elif opcode == op.LOAD_ATTR or opcode == op.LOAD_METHOD:
            # Monomorphized from the interpreter's inline cache: a cache
            # miss (new receiver, invalidated entry) deopts and lets the
            # interpreter re-resolve and re-fill.
            cache_name = f"C{pc}"
            self.namespace[cache_name] = self.entries[pc][4]
            obj = f"s{d - 1}"
            em.line(f"_c = {cache_name}")
            em.line(f"if _c[0] is not {obj}:")
            em.indent()
            self._emit_deopt(pc, d)
            em.dedent()
            self._emit_charge()
            em.line(f"{obj} = _c[1]")
            self._set_slot(d - 1, None)

        elif opcode == op.BUILD_LIST:
            items = ", ".join(f"s{j}" for j in range(d - arg, d))
            self._emit_charge()
            self._emit_mem_op(
                lambda: em.line(f"s{d - arg} = _SL(mem, [{items}], thread)"),
                pc + 1,
                d - arg + 1,
            )
            self._set_slot(d - arg, None)

        elif opcode == op.BUILD_TUPLE:
            if arg == 0:
                expr = "()"
            elif arg == 1:
                expr = f"(s{d - 1},)"
            else:
                expr = "(" + ", ".join(f"s{j}" for j in range(d - arg, d)) + ")"
            self._emit_charge()
            em.line(f"s{d - arg} = {expr}")
            self._set_slot(d - arg, "nonhb")
            self._emit_churn(pc + 1, d - arg + 1)

        elif opcode == op.LIST_APPEND:
            acc = f"s{d - 1 - arg}"
            v = f"s{d - 1}"
            em.line(f"if {acc}.__class__ is not _SL:")
            em.indent()
            self._emit_deopt(pc, d)
            em.dedent()
            self._emit_charge()
            self._emit_mem_op(lambda: em.line(f"{acc}.append({v})"), pc + 1, d - 1)

        elif opcode == op.UNPACK_SEQUENCE:
            v = f"s{d - 1}"
            em.line(f"_cls = {v}.__class__")
            em.line("if _cls is _SL:")
            em.indent()
            em.line(f"_t = {v}.items")
            em.dedent()
            em.line("elif _cls is tuple or _cls is list:")
            em.indent()
            em.line(f"_t = {v}")
            em.dedent()
            em.line("else:")
            em.indent()
            self._emit_deopt(pc, d)
            em.dedent()
            em.line(f"if len(_t) != {arg}:")
            em.indent()
            self._emit_deopt(pc, d)
            em.dedent()
            self._emit_charge()
            for j in range(arg):
                em.line(f"s{d - 1 + j} = _t[{arg - 1 - j}]")
                self._set_slot(d - 1 + j, None)

        elif opcode == op.SETUP_EXCEPT:
            self._emit_charge()
            em.line("_bs = frame.block_stack")
            em.line("if _bs is None:")
            em.indent()
            em.line("_bs = frame.block_stack = []")
            em.dedent()
            em.line(f"_bs.append(({arg}, {d}))")

        elif opcode == op.POP_BLOCK:
            em.line("if not frame.block_stack:")
            em.indent()
            self._emit_deopt(pc, d)
            em.dedent()
            self._emit_charge()
            em.line("frame.block_stack.pop()")

        elif opcode == op.NOP:
            self._emit_charge()

        else:
            raise _Unsupported(opcode)

        self.pending_k += 1
        self.pending_g += 1
        return False

    # -- driver -------------------------------------------------------------

    def compile(self) -> Optional[CompiledTrace]:
        depths = self.depths
        leaders = self._leaders()
        block_of = {lead: i for i, lead in enumerate(leaders)}
        reachable = self._reachable(leaders, block_of)
        if self.entry_pc not in reachable:
            return None
        instrs = self.code.instructions

        # Every reachable pc must have a known depth; the slot base is the
        # lowest slot index any reachable op *accesses* (LIST_APPEND and
        # multi-pop ops reach below their own pc depth — e.g. a
        # comprehension's accumulator lives under the loop iterator).
        bounds = leaders + [self.end + 1]
        spans = {lead: bounds[i + 1] - 1 for i, lead in enumerate(leaders)}
        min_slot = depths[self.entry_pc]
        for lead in reachable:
            for pc in range(lead, spans[lead] + 1):
                if depths[pc] is None:
                    return None
                min_slot = min(min_slot, _access_floor(instrs[pc], depths[pc]))
        self.base = max(0, min_slot)
        entry_depth = depths[self.entry_pc]

        block_ids = {lead: i for i, lead in enumerate(sorted(reachable))}
        max_ops = self._max_ops(sorted(reachable), leaders)
        loaded, stored = self._hoistable(sorted(reachable), spans)
        self.hoisted = loaded | stored
        self.hoisted_local = stored

        em = self.em
        em.line(
            "def _trace(vm, frame, stack, f_locals, f_globals, thread, clock, mem,"
            " fifo, gt, bget, c, churn, cb, cd, cdl, wdl, cpu, wall, g, line0, mq):"
        )
        em.indent()
        em.line(f"if len(stack) != {entry_depth}:")
        em.indent()
        em.line(f"return ({self.entry_pc}, 0, g, line0)")
        em.dedent()
        em.line(f"_base = len(stack) - {entry_depth - self.base}")
        for j in range(self.base, entry_depth):
            em.line(f"s{j} = stack[_base + {j - self.base}]")
        em.line("k = 0")
        em.line("_line = line0")
        em.line(f"_m = {max_ops + 1} * c")
        prologue_mark = len(em.lines)
        if self.hoisted:
            # Resolve each register once, with full LOAD_NAME semantics
            # minus the inline cache (a valid cache hit equals the direct
            # f_globals read, so skipping it is value-identical). An
            # unresolvable name bails before executing anything; repeated
            # bails retire the region through the deopt limit.
            self.uses_flget = True
            for name in sorted(self.hoisted):
                em.line(f"_n_{name} = flget({name!r}, _MISS)")
                em.line(f"if _n_{name} is _MISS:")
                em.indent()
                if name in self.hoisted_local:
                    # Stored names must live in f_locals so the register
                    # can double as the displaced-value mirror.
                    em.line("_T.deopts += 1")
                    em.line(f"return ({self.entry_pc}, 0, g, line0)")
                else:
                    em.line(f"_n_{name} = f_globals.get({name!r}, _MISS)")
                    em.line(f"if _n_{name} is _MISS:")
                    em.indent()
                    em.line(f"_n_{name} = bget({name!r}, _MISS)")
                    em.line(f"if _n_{name} is _MISS:")
                    em.indent()
                    em.line("_T.deopts += 1")
                    em.line(f"return ({self.entry_pc}, 0, g, line0)")
                    em.dedent()
                    em.dedent()
                em.dedent()
        em.line(f"_bb = {block_ids[self.entry_pc]}")
        em.line("while True:")
        em.indent()

        try:
            first = True
            for lead in sorted(reachable):
                em.line(("if" if first else "elif") + f" _bb == {block_ids[lead]}:")
                first = False
                em.indent()
                last = spans[lead]
                self._reset_block_state()
                terminated = False
                pc = lead
                while pc <= last:
                    if self._emit_op(pc, block_ids):
                        terminated = True
                        break
                    pc += 1
                if not terminated:
                    # fall through into the next block (or off the region end,
                    # which cannot happen: regions end at their back jump)
                    nxt = last + 1
                    nxt_depth = depths[nxt] if nxt < len(depths) and depths[nxt] is not None else 0
                    self._emit_transfer(last, nxt, nxt_depth, block_ids, extra=0)
                em.dedent()
        except _Unsupported:
            return None

        em.dedent()  # while
        em.dedent()  # def

        # Late prologue patches: helpers only when used.
        extra = []
        if self.uses_alloc:
            extra.append("    py_alloc = mem.py_alloc")
            extra.append("    py_free = mem.py_free")
        if self.uses_mod:
            extra.append("    _mod = f_locals is f_globals")
        if self.uses_flget:
            extra.append("    flget = f_locals.get")
        if extra:
            em.lines[prologue_mark:prologue_mark] = extra

        source = "\n".join(em.lines) + "\n"
        namespace = self.namespace
        code_name = f"<jit {self.code.name}:{self.start}-{self.end}>"
        try:
            exec(compile(source, code_name, "exec"), namespace)
        except SyntaxError:  # pragma: no cover - codegen bug guard
            return None
        trace = CompiledTrace(
            namespace["_trace"],
            self.start,
            self.end,
            self.entry_pc,
            max_ops + 1,
            source,
            code_name,
        )
        namespace["_T"] = trace
        return trace


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------


def compile_trace(code, entries, start: int):
    """Compile (with memoization on the code object) the loop region headed
    at instruction ``start``. Returns a :class:`CompiledTrace` or
    :data:`JIT_FAILED`."""
    regions = code._jit_regions
    if regions is None:
        regions = code._jit_regions = {}
    cached = regions.get(start)
    if cached is not None:
        return cached
    result: Any = JIT_FAILED
    region = _find_region(code, start)
    if region is not None:
        depths = _stack_depths(code)
        if depths is not None:
            compiled = _RegionCompiler(code, entries, region[0], region[1], region[2], depths).compile()
            if compiled is not None:
                result = compiled
    regions[start] = result
    return result


def iter_hit_cells(code):
    """Yield ``(pc, cell)`` for every threaded entry carrying a hit cell
    (loop headers and backward jumps). Requires built entries."""
    entries = code._threaded
    if entries is None:
        return
    for pc, entry in enumerate(entries):
        cell = entry[5]
        if cell is not None:
            yield pc, cell


def trace_at(code, start: int) -> Optional[CompiledTrace]:
    """The compiled trace for the region headed at ``start`` (None when
    not compiled or marked failed)."""
    regions = code._jit_regions
    if not regions:
        return None
    trace = regions.get(start)
    return trace if isinstance(trace, CompiledTrace) else None


def jit_stats(code) -> Dict[str, int]:
    """Aggregate tier statistics for a code object (tests/diagnostics)."""
    stats = {"hot_sites": 0, "compiled": 0, "failed": 0, "enters": 0, "deopts": 0}
    for _pc, cell in iter_hit_cells(code):
        if cell[1] is not None:
            stats["hot_sites"] += 1
    regions = code._jit_regions or {}
    for trace in regions.values():
        if isinstance(trace, CompiledTrace):
            stats["compiled"] += 1
            stats["enters"] += trace.enters
            stats["deopts"] += trace.deopts
        else:
            stats["failed"] += 1
    return stats
