"""Tests for threading, the GIL scheduler, and blocking semantics (§2.2)."""

import pytest

from repro.errors import SchedulerError
from repro.runtime.process import SimProcess
from repro.runtime.signals import SIGALRM, Timers


def test_threads_run_and_join():
    source = (
        "results = []\n"
        "def worker(n):\n"
        "    s = 0\n"
        "    for i in range(n):\n"
        "        s = s + i\n"
        "    results.append(s)\n"
        "t1 = spawn(worker, 100)\n"
        "t2 = spawn(worker, 50)\n"
        "join(t1)\n"
        "join(t2)\n"
        "total = len(results)\n"
    )
    process = SimProcess(source, filename="t.py")
    captured = {}
    original = process._finalize

    def capture():
        captured["results"] = sorted(process.globals["results"].items)
        original()

    process._finalize = capture
    process.run()
    assert captured["results"] == [sum(range(50)), sum(range(100))]


def test_subthreads_consume_cpu_time():
    source = (
        "def worker():\n"
        "    s = 0\n"
        "    for i in range(200):\n"
        "        s = s + 1\n"
        "t = spawn(worker)\n"
        "join(t)\n"
    )
    process = SimProcess(source, filename="t.py")
    process.run()
    sub = [t for t in process.threading.threads if not t.is_main][0]
    assert sub.cpu_time > 0
    assert process.main_thread.cpu_time > 0
    total = sum(t.cpu_time for t in process.threading.threads)
    assert total == pytest.approx(process.clock.cpu)


def test_gil_interleaving_is_fair():
    """Two CPU-bound threads should finish at roughly the same time."""
    source = (
        "def worker():\n"
        "    s = 0\n"
        "    for i in range(2000):\n"
        "        s = s + 1\n"
        "t1 = spawn(worker)\n"
        "t2 = spawn(worker)\n"
        "join(t1)\n"
        "join(t2)\n"
    )
    process = SimProcess(source, filename="t.py")
    process.run()
    subs = [t for t in process.threading.threads if not t.is_main]
    finish = sorted(t.finished_at for t in subs)
    assert finish[1] - finish[0] < 0.1 * finish[1] + 0.01


def test_blocking_join_starves_signal_delivery():
    """The §2.2 premise: an unpatched main-thread join defers signals."""
    source = (
        "def worker():\n"
        "    s = 0\n"
        "    for i in range(3000):\n"
        "        s = s + 1\n"
        "t = spawn(worker)\n"
        "join(t)\n"
    )
    process = SimProcess(source, filename="t.py")
    delivered = []
    process.signals.set_handler(SIGALRM, lambda s: delivered.append(process.clock.wall))
    process.signals.setitimer(Timers.ITIMER_REAL, 0.01)
    process.run()
    # Expirations happened all through the run but collapsed while the main
    # thread was blocked in join; only a handful of deliveries occur.
    assert process.signals.collapsed_count > len(delivered)


def test_timeout_join_restores_signal_delivery():
    """With a timeout (Scalene's monkey patch strategy), the main thread
    wakes periodically and delivery resumes."""
    source = (
        "def worker():\n"
        "    s = 0\n"
        "    for i in range(3000):\n"
        "        s = s + 1\n"
        "t = spawn(worker)\n"
        "done = 0\n"
        "while done == 0:\n"
        "    join(t, 0.005)\n"
        "    if is_finished(t):\n"
        "        done = 1\n"
    )
    process = SimProcess(source, filename="t.py")
    # Small helper builtin for this test.
    from repro.interp.objects import NativeFunction

    process.builtins["is_finished"] = NativeFunction(
        "is_finished", lambda ctx, args, kwargs: args[0].state == "finished"
    )
    delivered = []
    process.signals.set_handler(SIGALRM, lambda s: delivered.append(process.clock.wall))
    process.signals.setitimer(Timers.ITIMER_REAL, 0.01)
    process.run()
    duration = process.clock.wall
    expected = duration / 0.01
    assert len(delivered) >= expected * 0.5


def test_sleep_is_interruptible_by_signals():
    source = "sleep(0.1)\nx = 1\n"
    process = SimProcess(source, filename="t.py")
    delivered = []
    process.signals.set_handler(SIGALRM, lambda s: delivered.append(process.clock.wall))
    process.signals.setitimer(Timers.ITIMER_REAL, 0.01)
    process.run()
    # ~10 deliveries during the sleep.
    assert len(delivered) >= 5
    assert process.clock.wall >= 0.1


def test_sleep_advances_wall_not_cpu():
    process = SimProcess("sleep(0.5)\n", filename="t.py")
    process.run()
    assert process.clock.wall >= 0.5
    assert process.clock.cpu < 0.01


def test_system_time_ground_truth_for_sleep():
    process = SimProcess("sleep(0.2)\n", filename="t.py", collect_ground_truth=True)
    process.run()
    line = process.ground_truth.lines[("t.py", 1)]
    assert line.system_time == pytest.approx(0.2, abs=0.02)


def test_locks_provide_mutual_exclusion():
    source = (
        "lock = make_lock('m')\n"
        "shared = []\n"
        "def worker(tag):\n"
        "    lock_acquire(lock)\n"
        "    shared.append(tag)\n"
        "    shared.append(tag)\n"
        "    lock_release(lock)\n"
        "t1 = spawn(worker, 1)\n"
        "t2 = spawn(worker, 2)\n"
        "join(t1)\n"
        "join(t2)\n"
    )
    process = SimProcess(source, filename="t.py")
    captured = {}
    original = process._finalize

    def capture():
        captured["shared"] = list(process.globals["shared"].items)
        original()

    process._finalize = capture
    process.run()
    shared = captured["shared"]
    # Entries from each thread must be adjacent (critical section held).
    assert shared in ([1, 1, 2, 2], [2, 2, 1, 1])


def test_join_self_raises():
    source = "def f():\n    pass\nt = spawn(f)\njoin(t)\n"
    process = SimProcess(source, filename="t.py")
    process.run()  # sanity: normal join works

    source_bad = "join(current())\n"
    process = SimProcess(source_bad, filename="t.py")
    from repro.interp.objects import NativeFunction

    process.builtins["current"] = NativeFunction("current", lambda ctx, args, kwargs: ctx.thread)
    with pytest.raises(SchedulerError):
        process.run()


def test_deadlock_detection():
    source = (
        "lock = make_lock('m')\n"
        "lock_acquire(lock)\n"
        "lock_acquire(lock)\n"  # self-deadlock, no timeout
    )
    process = SimProcess(source, filename="t.py")
    with pytest.raises(SchedulerError, match="deadlock"):
        process.run()


def test_current_frames_exposes_all_threads():
    source = (
        "def worker():\n"
        "    s = 0\n"
        "    for i in range(2000):\n"
        "        s = s + 1\n"
        "t = spawn(worker)\n"
        "frames_seen = probe()\n"
        "join(t)\n"
    )
    process = SimProcess(source, filename="t.py")
    from repro.interp.objects import NativeFunction

    seen = {}

    def probe(ctx, args, kwargs):
        seen.update(ctx.process.current_frames())
        return len(seen)

    process.builtins["probe"] = NativeFunction("probe", probe)
    process.run()
    assert len(seen) == 2  # main + worker


def test_max_wall_guard():
    source = "while True:\n    x = 1\n"
    process = SimProcess(source, filename="t.py")
    with pytest.raises(SchedulerError, match="max_wall"):
        process.run(max_wall=0.1)
