"""Golden-file tests for the text and JSON report backends.

A pinned workload is profiled end-to-end (the simulation runs on virtual
time, so the resulting :class:`ProfileData` is bit-for-bit deterministic)
and the rendered text/JSON output is compared against checked-in golden
files in ``tests/golden/``.

Volatile fields are normalized before comparison: path-like strings are
reduced to basenames and floats are rounded, so the goldens are stable
across machines and insignificant float-formatting drift.

To regenerate after an intentional output change::

    REPRO_UPDATE_GOLDEN=1 python -m pytest tests/test_report_golden.py
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import pytest

from repro import SimProcess
from repro.core import Scalene

GOLDEN_DIR = Path(__file__).parent / "golden"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN", "") not in ("", "0")

#: Pinned workload: a Python-heavy loop, a long native call, blocking
#: sleep, persistent allocation growth, and transient allocation volume —
#: one line for each column family of the report.
SOURCE = (
    "s = 0\n"
    "for i in range(4000):\n"
    "    s = s + i * 3\n"
    "native_work(1.0)\n"
    "sleep(0.5)\n"
    "bufs = []\n"
    "for j in range(16):\n"
    "    bufs.append(py_buffer(1048576))\n"
    "scratch(8388608)\n"
    "print(s)\n"
)


def build_profile():
    process = SimProcess(SOURCE, filename="golden.py")
    return Scalene.run(process, mode="full")


def normalize_text(text: str) -> str:
    # Paths → basenames (keeps goldens machine-independent).
    text = re.sub(r"(/[\w./-]+/)([\w.]+\.py)", r"\2", text)
    # Collapse trailing whitespace the renderer may leave on padded rows.
    return "\n".join(line.rstrip() for line in text.splitlines()) + "\n"


def _round_floats(value, places=4):
    if isinstance(value, float):
        return round(value, places)
    if isinstance(value, list):
        return [_round_floats(v, places) for v in value]
    if isinstance(value, dict):
        return {k: _round_floats(v, places) for k, v in value.items()}
    if isinstance(value, str) and "/" in value and value.endswith(".py"):
        return value.rsplit("/", 1)[-1]
    return value


def normalize_json(payload: str) -> str:
    data = _round_floats(json.loads(payload))
    return json.dumps(data, indent=2, sort_keys=True) + "\n"


def check_golden(name: str, rendered: str):
    path = GOLDEN_DIR / name
    if UPDATE:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
        pytest.skip(f"golden {name} regenerated")
    assert path.exists(), (
        f"missing golden file {path}; run with REPRO_UPDATE_GOLDEN=1 to create"
    )
    expected = path.read_text(encoding="utf-8")
    assert rendered == expected, (
        f"{name} drifted from its golden copy; if the change is intentional, "
        f"regenerate with REPRO_UPDATE_GOLDEN=1"
    )


@pytest.fixture(scope="module")
def profile():
    return build_profile()


def test_text_report_matches_golden(profile):
    check_golden("report_text.golden", normalize_text(profile.render_text()))


def test_text_report_cpu_sort_matches_golden(profile):
    check_golden(
        "report_text_cpu_sort.golden",
        normalize_text(profile.render_text(sort_by="cpu")),
    )


def test_json_report_matches_golden(profile):
    check_golden("report_json.golden", normalize_json(profile.to_json()))


def test_profile_is_deterministic():
    """The premise of golden testing: two identical runs, identical output."""
    first = build_profile()
    second = build_profile()
    assert first.to_json() == second.to_json()
    assert first.render_text() == second.render_text()
