"""Unit tests for the durable control plane (DESIGN.md §13).

Covers the mechanics underneath the gateway-kill chaos proof, one layer
at a time:

* :class:`WriteAheadLog` — checksummed line framing, torn-tail-tolerant
  replay, writer self-repair after a (real or injected) torn write, and
  checkpoint + truncate compaction;
* gateway recovery — ``_recover`` rebuilds the ledger from checkpoint +
  log, requeues every non-terminal job, never recycles gw ids, and
  restores client idempotency keys;
* ledger hygiene — terminal records age out of memory (retention window
  and hard cap) and eviction folds into a WAL checkpoint;
* submit-key dedupe at both tiers (gateway ledger and single daemon);
* ring epochs — begin/finalize/abort, old-or-new read owners, dual-ring
  replication targets, and decommission bookkeeping.

The end-to-end kill -9 / reshard-under-load proofs live in
``tests/test_chaos.py``; these tests pin down the pieces they compose.
"""

import json
import threading
import time

import pytest

from repro.errors import ServeError, StoreError
from repro.faults import FaultInjector, FaultSpec
from repro.serve.daemon import ProfileDaemon
from repro.serve.frontend import ServeFrontend
from repro.serve.router import ShardRouter, shard_key
from repro.serve.wal import WriteAheadLog


# -- the log itself ---------------------------------------------------------


def test_append_replay_roundtrip_preserves_order(tmp_path):
    wal = WriteAheadLog(tmp_path)
    records = [{"op": "accept", "n": i} for i in range(20)]
    for record in records:
        wal.append(record)
    wal.close()
    assert WriteAheadLog(tmp_path).replay() == records


def test_replay_never_mutates_the_log(tmp_path):
    wal = WriteAheadLog(tmp_path)
    for i in range(5):
        wal.append({"n": i})
    first = wal.replay()
    assert wal.replay() == first == [{"n": i} for i in range(5)]


def test_truncated_tail_drops_only_the_torn_record(tmp_path):
    wal = WriteAheadLog(tmp_path)
    for i in range(4):
        wal.append({"n": i})
    wal.close()
    # Chop the last record mid-frame: a crash between write() syscalls.
    blob = (tmp_path / "wal.log").read_bytes()
    lines = blob.splitlines(keepends=True)
    (tmp_path / "wal.log").write_bytes(b"".join(lines[:3]) + lines[3][:7])
    reopened = WriteAheadLog(tmp_path)
    assert reopened.replay() == [{"n": i} for i in range(3)]
    assert reopened.stats["torn_records"] == 1


def test_mid_log_corruption_stops_replay_there(tmp_path):
    wal = WriteAheadLog(tmp_path)
    for i in range(6):
        wal.append({"n": i})
    wal.close()
    lines = (tmp_path / "wal.log").read_bytes().splitlines(keepends=True)
    lines[2] = b"deadbeef " + lines[2].split(b" ", 1)[1]  # bad checksum
    (tmp_path / "wal.log").write_bytes(b"".join(lines))
    reopened = WriteAheadLog(tmp_path)
    # Line framing cannot resync past a bad record; the good suffix is
    # deliberately not trusted (it may be glued to torn bytes).
    assert reopened.replay() == [{"n": 0}, {"n": 1}]
    assert reopened.stats["torn_records"] == 4


def test_injected_torn_write_raises_then_self_repairs(tmp_path):
    faults = FaultInjector(FaultSpec(seed=3, torn_writes=1))
    wal = WriteAheadLog(tmp_path, faults=faults)
    with pytest.raises(StoreError, match="torn write"):
        wal.append({"n": 0})  # the injector tears the first write
    assert wal.stats["append_failures"] == 1
    wal.append({"n": 1})  # repairs the tail (truncate) before writing
    wal.append({"n": 2})
    assert wal.replay() == [{"n": 1}, {"n": 2}]
    assert wal.stats["torn_records"] == 0  # the tear never hit the disk tail


def test_checkpoint_truncates_and_replay_restarts_empty(tmp_path):
    wal = WriteAheadLog(tmp_path)
    for i in range(8):
        wal.append({"n": i})
    wal.checkpoint({"format": 1, "next_gw": 9, "ledger": {}})
    assert wal.size_bytes() == 0
    assert wal.records_since_checkpoint == 0
    assert wal.replay() == []
    wal.append({"n": 99})
    assert wal.replay() == [{"n": 99}]
    assert wal.load_checkpoint() == {"format": 1, "next_gw": 9, "ledger": {}}
    assert wal.stats["compactions"] == 1


def test_corrupt_checkpoint_is_ignored_not_trusted(tmp_path):
    wal = WriteAheadLog(tmp_path)
    (tmp_path / "checkpoint.json").write_text("{not json", encoding="utf-8")
    assert wal.load_checkpoint() is None


def test_closed_wal_refuses_appends(tmp_path):
    wal = WriteAheadLog(tmp_path)
    wal.close()
    with pytest.raises(StoreError, match="closed"):
        wal.append({"n": 0})


def test_abandon_keeps_page_cache_appends(tmp_path):
    # abandon() models kill -9: no fsync, but the unbuffered write
    # already reached the OS, so a reopened log replays it.
    wal = WriteAheadLog(tmp_path, sync_every=10_000, sync_interval_s=3600.0)
    wal.append({"n": 0})
    wal.abandon()
    assert WriteAheadLog(tmp_path).replay() == [{"n": 0}]


# -- gateway recovery -------------------------------------------------------


def _router(n=2):
    return ShardRouter(
        {f"s{i}": f"http://127.0.0.1:{40000 + i}" for i in range(n)}
    )


@pytest.fixture
def frontend_factory(tmp_path):
    """Build (and reliably dispose) unstarted gateways over one WAL dir."""
    built = []

    def make(**kwargs):
        kwargs.setdefault("wal", tmp_path / "wal")
        frontend = ServeFrontend(_router(), **kwargs)
        built.append(frontend)
        return frontend

    yield make
    for frontend in built:
        if not frontend._started:
            frontend._listen.close()
            frontend._selector.close()
            frontend._wake_r.close()
            frontend._wake_w.close()
            frontend._io.shutdown(wait=False, cancel_futures=True)
            if frontend.wal is not None:
                frontend.wal.close()


def _accept_op(gw_id, *, status="accepted", submit_key=None):
    return {
        "op": "accept",
        "record": {
            "id": gw_id,
            "status": status,
            "workload": "pprint",
            "config_hash": "",
            "shard": None,
            "shard_job_id": None,
            "profile_id": None,
            "error": None,
            "accepted_at": time.time(),
            "terminal_at": None,
            "submit_key": submit_key,
            "payload": {"workload": "pprint", "mode": "cpu"},
        },
    }


def test_recovery_requeues_every_non_terminal_job(frontend_factory, tmp_path):
    wal = WriteAheadLog(tmp_path / "wal")
    wal.append(_accept_op("gw-00000001", submit_key="k1"))
    wal.append(_accept_op("gw-00000002"))
    wal.append({"op": "dispatch", "id": "gw-00000002", "shard": "s0",
                "shard_job_id": "job-1"})
    wal.append(_accept_op("gw-00000003"))
    wal.append({"op": "dispatch", "id": "gw-00000003", "shard": "s1",
                "shard_job_id": "job-2"})
    wal.append({"op": "terminal", "id": "gw-00000003", "status": "done",
                "profile_id": "p3", "error": None, "at": time.time()})
    wal.close()

    frontend = frontend_factory()
    frontend._recover()
    assert sorted(frontend.ledger) == ["gw-00000001", "gw-00000002", "gw-00000003"]
    # Non-terminal records requeue to accepted — even "dispatched" ones:
    # a restarted shard may have reused the shard_job_id, so the old
    # dispatch state cannot be trusted.
    assert frontend.ledger["gw-00000001"]["status"] == "accepted"
    assert frontend.ledger["gw-00000002"]["status"] == "accepted"
    assert frontend.ledger["gw-00000002"]["shard"] is None
    assert frontend.ledger["gw-00000003"]["status"] == "done"
    assert frontend.ledger["gw-00000003"]["profile_id"] == "p3"
    assert sorted(frontend._pending) == ["gw-00000001", "gw-00000002"]
    assert frontend._submit_keys == {"k1": "gw-00000001"}
    assert frontend.stats["recovered"] == 3
    assert frontend.stats["recovered_requeued"] == 1  # only the dispatched one
    assert frontend._gw_next == 4  # ids never recycle


def test_recovery_converges_when_log_overlaps_checkpoint(
    frontend_factory, tmp_path
):
    # A crash between checkpoint-write and log-truncate leaves records
    # in both; applying the overlap twice must converge (idempotent).
    wal = WriteAheadLog(tmp_path / "wal")
    accept = _accept_op("gw-00000001")
    wal.append(accept)
    wal.checkpoint(
        {"format": 1, "next_gw": 2, "ledger": {"gw-00000001": accept["record"]}}
    )
    wal.append(accept)  # the overlap: same accept already in the snapshot
    wal.append({"op": "terminal", "id": "gw-00000001", "status": "done",
                "profile_id": "p1", "error": None, "at": time.time()})
    wal.close()

    frontend = frontend_factory()
    frontend._recover()
    assert list(frontend.ledger) == ["gw-00000001"]
    assert frontend.ledger["gw-00000001"]["status"] == "done"
    assert frontend._pending == []
    assert frontend._gw_next == 2


def test_recovery_restores_gw_sequence_after_full_compaction(
    frontend_factory, tmp_path
):
    # After a quiet stretch every terminal record is evicted and
    # compacted away: the checkpoint is {ledger: {}, next_gw: N} and the
    # log is empty. The sequence floor must still be honored — gw ids
    # never recycle across restarts.
    wal = WriteAheadLog(tmp_path / "wal")
    wal.checkpoint({"format": 1, "next_gw": 42, "ledger": {}})
    wal.close()

    frontend = frontend_factory()
    frontend._recover()
    assert frontend.ledger == {}
    assert frontend._gw_next == 42


def test_concurrent_accepts_survive_checkpoints(frontend_factory, tmp_path):
    # Accept appends the WAL record and inserts into the ledger in one
    # critical section, and checkpoint snapshots + truncates under the
    # same lock — so a compaction racing a burst of accepts can never
    # truncate an accept the snapshot missed. Model the crash with
    # abandon() (no fsync) and assert recovery sees every 202'd job.
    frontend = frontend_factory(wal_compact_every=1)
    body = json.dumps(
        {"workload": "pprint", "mode": "cpu", "scale": 0.05}
    ).encode("utf-8")
    accepted = []
    accepted_lock = threading.Lock()

    def accept_burst():
        for _ in range(40):
            record = frontend._accept_job(body)
            with accepted_lock:
                accepted.append(record["id"])

    def checkpoint_storm(stop):
        while not stop.is_set():
            frontend._maintain_ledger()  # compact_every=1: checkpoints

    stop = threading.Event()
    acceptors = [threading.Thread(target=accept_burst) for _ in range(3)]
    compactor = threading.Thread(target=checkpoint_storm, args=(stop,))
    compactor.start()
    for thread in acceptors:
        thread.start()
    for thread in acceptors:
        thread.join()
    stop.set()
    compactor.join()
    frontend.wal.abandon()

    recovered = frontend_factory()
    recovered._recover()
    assert len(accepted) == len(set(accepted)) == 120  # no gw id minted twice
    missing = set(accepted) - set(recovered.ledger)
    assert not missing  # every 202 is durable, checkpoints notwithstanding
    assert recovered._gw_next > max(int(gw.split("-")[1]) for gw in accepted)


def test_terminal_eviction_respects_retention_and_compacts(frontend_factory):
    frontend = frontend_factory(terminal_retention_s=0.0)
    old = _accept_op("gw-00000001")["record"]
    old.update(status="done", terminal_at=time.time() - 10.0,
               payload=None, submit_key="k1")
    live = _accept_op("gw-00000002")["record"]
    frontend.ledger = {"gw-00000001": old, "gw-00000002": live}
    frontend._submit_keys = {"k1": "gw-00000001"}
    frontend._maintain_ledger()
    assert list(frontend.ledger) == ["gw-00000002"]  # accepted never evicted
    assert frontend._submit_keys == {}
    assert frontend.stats["evicted_terminal"] == 1
    assert frontend.wal.stats["compactions"] >= 1  # eviction checkpoints


def test_terminal_cap_evicts_oldest_first(frontend_factory):
    frontend = frontend_factory(
        terminal_retention_s=3600.0, terminal_retention_max=2
    )
    for i in range(1, 5):
        record = _accept_op(f"gw-0000000{i}")["record"]
        record.update(status="done", terminal_at=time.time() - (10 - i),
                      payload=None)
        frontend.ledger[record["id"]] = record
    frontend._maintain_ledger()
    assert sorted(frontend.ledger) == ["gw-00000003", "gw-00000004"]
    assert frontend.stats["evicted_terminal"] == 2


def test_daemon_dedupes_submit_keys(tmp_path):
    daemon = ProfileDaemon(str(tmp_path / "store"), workers=1)
    payload = {"workload": "pprint", "mode": "cpu", "scale": 0.05,
               "submit_key": "dk-1"}
    first = daemon.submit(dict(payload))
    again = daemon.submit(dict(payload))
    other = daemon.submit({**payload, "submit_key": "dk-2"})
    assert again.id == first.id
    assert other.id != first.id
    assert len(daemon.jobs()) == 2  # the retry did not enqueue a double-run


def test_daemon_submit_key_map_is_bounded(tmp_path):
    daemon = ProfileDaemon(
        str(tmp_path / "store"), workers=1, submit_key_retention_max=2
    )
    payload = {"workload": "pprint", "mode": "cpu", "scale": 0.05}
    for i in range(4):
        job = daemon.submit({**payload, "submit_key": f"dk-{i}"})
        job.status = "done"  # terminal: the key is now evictable
    # Oldest terminal keys fall off at the cap; the newest survive.
    assert sorted(daemon._submit_keys) == ["dk-2", "dk-3"]
    # Keys for live (non-terminal) jobs are never evicted — dropping
    # one would let a retried submission double-run an in-flight job.
    live = daemon.submit({**payload, "submit_key": "dk-live"})
    daemon.submit({**payload, "submit_key": "dk-4"}).status = "done"
    daemon.submit({**payload, "submit_key": "dk-5"}).status = "done"
    assert "dk-live" in daemon._submit_keys
    assert daemon.submit({**payload, "submit_key": "dk-live"}).id == live.id


def test_daemon_dangling_submit_key_treated_as_new(tmp_path):
    daemon = ProfileDaemon(str(tmp_path / "store"), workers=1)
    payload = {"workload": "pprint", "mode": "cpu", "scale": 0.05,
               "submit_key": "dk-gone"}
    first = daemon.submit(dict(payload))
    # Prune the job record out from under its key (retention, restart):
    # the stale mapping must not KeyError — the key is simply new again.
    with daemon._lock:
        del daemon._jobs[first.id]
    fresh = daemon.submit(dict(payload))
    assert fresh.id != first.id
    assert daemon._submit_keys["dk-gone"] == fresh.id


# -- ring epochs ------------------------------------------------------------


def test_begin_epoch_validates_urls_and_membership():
    router = _router(2)
    with pytest.raises(ServeError, match="without a registered url"):
        router.begin_epoch(["s0", "s1", "s2"])
    with pytest.raises(ServeError, match="would not change"):
        router.begin_epoch(["s0", "s1"])


def test_epoch_add_finalize_and_read_owner_union():
    router = _router(2)
    router.urls["s2"] = "http://127.0.0.1:40002"
    assert router.epoch == 1 and not router.migrating
    assert router.begin_epoch(["s0", "s1", "s2"]) == 2
    assert router.migrating
    with pytest.raises(ServeError, match="already in progress"):
        router.begin_epoch(["s0", "s1"])
    # Mid-migration reads cover both rings' owners, old ones first.
    for workload in ("pprint", "mdp", "raytrace", "sympy"):
        owners = router.read_owners(workload)
        old = router.prev_ring.owners(shard_key(workload))[:2]
        new = router.ring.owners(shard_key(workload))[:2]
        assert owners[: len(old)] == old
        assert set(old) | set(new) <= set(owners)
    router.finalize_epoch()
    assert not router.migrating and router.epoch == 2
    assert router.ring.shards == ["s0", "s1", "s2"]


def test_abort_epoch_restores_old_ring_and_bumps():
    router = _router(2)
    router.urls["s2"] = "http://127.0.0.1:40002"
    router.begin_epoch(["s0", "s1", "s2"])
    router.abort_epoch()
    assert router.ring.shards == ["s0", "s1"]
    assert not router.migrating
    assert router.epoch == 3  # an abort is a membership change too


def test_replication_targets_span_both_rings_mid_migration():
    router = _router(3)
    router.urls["s3"] = "http://127.0.0.1:40003"
    router.begin_epoch(["s0", "s1", "s2", "s3"])
    for workload in ("pprint", "mdp", "raytrace", "sympy", "leaky"):
        old = router.prev_ring.owners(shard_key(workload))[:2]
        new = router.ring.owners(shard_key(workload))[:2]
        targets = router.replication_targets(workload, source=old[0])
        assert old[0] not in targets
        assert set(targets) == (set(old) | set(new)) - {old[0]}


def test_forget_refuses_live_members_then_forgets():
    router = _router(3)
    with pytest.raises(ServeError, match="still a ring member"):
        router.forget("s2")
    router.begin_epoch(["s0", "s1"])
    with pytest.raises(ServeError, match="still a ring member"):
        router.forget("s2")  # still in prev_ring until finalize
    router.finalize_epoch()
    router.forget("s2")
    assert "s2" not in router.urls
    with pytest.raises(ServeError):
        router.url("s2")
