"""Direct tests for the disassembler and the dis/lint CLI paths."""

import json

import pytest

from repro.__main__ import main
from repro.interp.astcompile import compile_source
from repro.interp.code import CodeObject
from repro.interp.disassembler import (
    build_call_opcode_map,
    disassemble,
    iter_code_objects,
)
from repro.interp.opcodes import is_call_opcode

LOOP_SOURCE = "total = 0\nfor i in range(10):\n    total = total + i\nprint(total)\n"


def test_disassemble_lists_every_instruction():
    code = compile_source(LOOP_SOURCE, "loop.py")
    text = disassemble(code)
    assert text.startswith("Disassembly of <module> (loop.py):")
    # One listing line per instruction, plus the heading.
    assert len(text.splitlines()) == len(code.instructions) + 1
    assert "FOR_ITER" in text
    assert "STORE_NAME" in text and "'total'" in text


def test_disassemble_show_blocks_annotates_cfg():
    code = compile_source(LOOP_SOURCE, "loop.py")
    text = disassemble(code, show_blocks=True)
    assert "-- B0" in text
    assert "<loop header>" in text
    assert "preds:" in text and "succs:" in text
    # Block annotations add lines; the plain listing is a subsequence.
    plain = disassemble(code)
    plain_lines = plain.splitlines()
    annotated_lines = text.splitlines()
    assert [l for l in annotated_lines if not l.lstrip().startswith("--")] == plain_lines


def test_iter_code_objects_yields_nested_bodies():
    source = (
        "def outer():\n"
        "    def inner():\n"
        "        return 1\n"
        "    return inner()\n"
        "print(outer())\n"
    )
    code = compile_source(source, "nest.py")
    names = [c.name for c in iter_code_objects(code)]
    assert names == ["<module>", "outer", "inner"]


def test_build_call_opcode_map_finds_all_calls():
    source = (
        "def f(x):\n"
        "    return x + 1\n"
        "y = f(1)\n"
        "print(f(y))\n"
    )
    code = compile_source(source, "calls.py")
    call_map = build_call_opcode_map(code)
    for code_object in iter_code_objects(code):
        expected = {
            i
            for i, instr in enumerate(code_object.instructions)
            if is_call_opcode(instr.opcode)
        }
        assert call_map[id(code_object)] == expected
    # The module body calls f twice and print once.
    assert len(call_map[id(code)]) == 3


def test_build_call_opcode_map_empty_code():
    code = compile_source("x = 1\n", "noop.py")
    call_map = build_call_opcode_map(code)
    assert call_map[id(code)] == frozenset()


# -- CLI: python -m repro dis ------------------------------------------------


def test_dis_cli_on_source_file(tmp_path, capsys):
    path = tmp_path / "prog.py"
    path.write_text(LOOP_SOURCE)
    assert main(["dis", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Disassembly of <module> (prog.py):" in out
    assert "-- B" in out
    assert "<loop header>" in out


def test_dis_cli_on_workload(capsys):
    assert main(["dis", "--workload", "fannkuch", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Disassembly of" in out
    # Nested function bodies get their own listings.
    assert out.count("Disassembly of") > 1


def test_dis_cli_requires_target():
    with pytest.raises(SystemExit):
        main(["dis"])


# -- CLI: python -m repro lint -----------------------------------------------


def test_lint_cli_static_only(tmp_path, capsys):
    path = tmp_path / "bad.py"
    path.write_text(
        "out = []\nfor i in range(100):\n    out = out + [i]\nprint(len(out))\n"
    )
    json_path = tmp_path / "findings.json"
    assert main(["lint", str(path), "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "concat-growth-in-loop" in out
    data = json.loads(json_path.read_text())
    assert data[0]["detector"] == "concat-growth-in-loop"
    assert data[0]["lineno"] == 3


def test_lint_cli_clean_file(tmp_path, capsys):
    path = tmp_path / "ok.py"
    path.write_text("x = 1\nprint(x)\n")
    assert main(["lint", str(path)]) == 0
    assert "no performance lints" in capsys.readouterr().out


def test_lint_cli_with_profile(tmp_path, capsys):
    path = tmp_path / "hot.py"
    path.write_text(
        "n = 2000\n"
        "a = np.arange(n)\n"
        "b = np.zeros(n)\n"
        "for i in range(n):\n"
        "    b[i] = a[i] * 2.0\n"
        "print(b.sum())\n"
    )
    json_path = tmp_path / "tri.json"
    assert main(["lint", str(path), "--profile", "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "Performance lints" in out
    assert "measured" in out
    data = json.loads(json_path.read_text())
    assert any(e["detector"] == "scalar-loop-vectorize" and e["score"] > 0 for e in data)
