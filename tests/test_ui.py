"""Tests for the JSON and HTML output backends (§5)."""

import json

from repro import SimProcess
from repro.core import Scalene
from repro.interp.libs import install_standard_libraries
from repro.ui import render_html, write_html, write_json

SOURCE = (
    "def hot(n):\n"
    "    s = 0\n"
    "    for i in range(n):\n"
    "        s = s + i\n"
    "    return s\n"
    "x = hot(2000)\n"
    "buf = py_buffer(15000000)\n"
    "a = np.zeros(1000000)\n"
    "b = np.copy(a)\n"
    "del buf\n"
)


def make_profile():
    process = SimProcess(SOURCE, filename="app.py")
    install_standard_libraries(process)
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    return scalene.stop()


PROFILE = make_profile()


def test_json_roundtrip(tmp_path):
    path = write_json(PROFILE, tmp_path / "profile.json")
    data = json.loads(path.read_text())
    assert data["mode"] == "full"
    assert data["elapsed_s"] > 0
    assert data["lines"], "expected reported lines"
    assert data["functions"], "expected function aggregates"
    for line in data["lines"]:
        assert set(line) >= {
            "filename",
            "lineno",
            "source",
            "cpu_python_percent",
            "mem_peak_mb",
            "timeline",
            "copy_mb_s",
            "gpu_percent",
        }


def test_json_timeline_is_bounded():
    data = PROFILE.to_dict()
    assert len(data["memory"]["timeline"]) <= 100
    for line in data["lines"]:
        assert len(line["timeline"]) <= 100


def test_html_is_self_contained():
    page = render_html(PROFILE, title="app.py")
    assert page.startswith("<!DOCTYPE html>")
    assert "scalene-profile" in page
    # The embedded JSON parses back to the same payload.
    marker = '<script type="application/json" id="scalene-profile">'
    start = page.index(marker) + len(marker)
    end = page.index("</script>", start)
    embedded = json.loads(page[start:end])
    # Normalize tuples (timelines) to lists for comparison.
    assert embedded == json.loads(json.dumps(PROFILE.to_dict()))
    # No external resources (the CORS-avoidance property of §5).
    assert "http://" not in page and "https://" not in page
    assert "<svg" in page  # the memory timeline rendering


def test_html_escapes_source(tmp_path):
    # A line containing markup must not break the page.
    process = SimProcess("x = 1  # <b>&\n", filename="esc.py")
    scalene = Scalene(process, mode="cpu")
    scalene.start()
    process.run()
    profile = scalene.stop()
    page = render_html(profile)
    assert "<b>&" not in page

    path = write_html(profile, tmp_path / "p.html")
    assert path.exists()


def test_render_text_mentions_key_sections():
    text = PROFILE.render_text()
    assert "Scalene profile [full]" in text
    assert "py%" in text and "cp MB/s" in text
    assert "hot" in text  # the function table
