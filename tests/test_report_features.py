"""Tests for report features: sorting, activity column, inference ablation."""

import pytest

from repro import SimProcess
from repro.core import Scalene
from repro.core.config import ScaleneConfig
from repro.interp.libs import install_standard_libraries

SOURCE = (
    "s = 0\n"
    "for i in range(3000):\n"
    "    s = s + i\n"
    "buf = py_buffer(40000000)\n"
    "a = np.zeros(2000000)\n"
    "b = np.copy(a)\n"
    "del buf\n"
)


def make_profile(config=None):
    process = SimProcess(SOURCE, filename="r.py")
    install_standard_libraries(process)
    scalene = Scalene(process, config=config, mode=None if config else "full")
    scalene.start()
    process.run()
    return scalene.stop()


PROFILE = make_profile()


def test_sort_by_cpu_puts_hottest_first():
    text = PROFILE.render_text(sort_by="cpu")
    rows = [l for l in text.splitlines() if l.strip() and l.strip()[0].isdigit()]
    first_line_number = int(rows[0].split()[0])
    assert first_line_number == 5  # np.zeros: the most CPU-expensive line


def test_sort_by_memory_puts_biggest_first():
    text = PROFILE.render_text(sort_by="memory")
    rows = [l for l in text.splitlines() if l.strip() and l.strip()[0].isdigit()]
    first_line_number = int(rows[0].split()[0])
    assert first_line_number in (4, 5, 6)  # an allocating line


def test_sort_by_unknown_key_raises():
    with pytest.raises(ValueError, match="sort_by"):
        PROFILE.render_text(sort_by="altitude")


def test_activity_percentages_sum_to_about_100():
    total_activity = sum(l.mem_activity_percent for l in PROFILE.lines)
    assert 80 <= total_activity <= 101


def test_activity_highlights_allocating_lines():
    buf_line = PROFILE.line(4)
    loop_line = PROFILE.line(3)
    assert buf_line.mem_activity_percent > 20
    if loop_line is not None:
        assert buf_line.mem_activity_percent > loop_line.mem_activity_percent


def test_activity_in_json():
    data = PROFILE.to_dict()
    assert all("mem_activity_percent" in line for line in data["lines"])


def test_inference_ablation_flag():
    source = "s = 0\nfor i in range(2000):\n    s = s + 1\nnative_work(1.0)\n"

    def native_fraction(use_inference):
        process = SimProcess(source, filename="abl.py")
        config = ScaleneConfig(mode="cpu", use_delay_inference=use_inference)
        scalene = Scalene(process, config=config)
        scalene.start()
        process.run()
        profile = scalene.stop()
        total = profile.cpu_python_time + profile.cpu_native_time
        return profile.cpu_native_time / total if total else 0.0

    assert native_fraction(True) > 0.4
    assert native_fraction(False) < 0.05
