"""Tests for the multiprocessing substrate and profiler support (Fig. 1)."""

import pytest

from repro.baselines import make_profiler
from repro.core import Scalene
from repro.errors import VMError
from repro.interp.libs import install_standard_libraries
from repro.runtime.process import SimProcess

MP_SOURCE = (
    "def worker(wid):\n"
    "    s = 0\n"
    "    for i in range(2000):\n"
    "        s = s + 1\n"  # line 4: the children's hot line
    "    return s\n"
    "if is_main():\n"  # the __main__ guard, as real mp code needs
    "    mp.run_workers(worker, 3)\n"
    "tail = 0\n"
    "for i in range(200):\n"
    "    tail = tail + 1\n"  # line 10: the parent's tail loop
)


def make_process(source=MP_SOURCE):
    process = SimProcess(source, filename="mp.py")
    install_standard_libraries(process)
    return process


def test_children_run_and_parent_waits_for_slowest():
    process = make_process()
    process.run()
    assert len(process.children) == 3
    child_walls = [c.clock.wall for c in process.children]
    # Parent wall covers the slowest child (parallel children).
    assert process.clock.wall >= max(child_walls)
    # But nowhere near the *sum* (they did not serialize).
    assert process.clock.wall < sum(child_walls)


def test_children_re_import_module():
    # Module-level definitions exist in children (spawn semantics): each
    # child computed _mp_result.
    process = make_process()
    process.run()
    for child in process.children:
        assert child.stdout == []  # worker prints nothing
        assert child.clock.cpu > 0


def test_scalene_profiles_child_work():
    process = make_process()
    prof = Scalene.run(process, mode="cpu")
    hot = prof.line(4)
    assert hot is not None
    # The children's loop dominates the whole session.
    assert hot.cpu_python_percent > 25


def test_pyspy_follows_children():
    process = make_process()
    profiler = make_profiler("py_spy", process)
    profiler.start()
    process.run()
    report = profiler.stop()
    assert report.line_time(4) > 0


def test_pprofile_stat_misses_children():
    """Profilers without multiprocessing support never see child work."""
    process = make_process()
    profiler = make_profiler("pprofile_stat", process)
    profiler.start()
    process.run()
    report = profiler.stop()
    assert report.line_time(4) == 0.0
    # It does see the parent's tail loop.
    assert report.line_time(10) >= 0.0


def test_run_workers_validation():
    for bad_source in (
        "if is_main():\n    mp.run_workers(5, 2)\n",  # not a function
        "def w(a, b):\n    return a\nif is_main():\n    mp.run_workers(w, 2)\n",  # arity
        "def w(a):\n    return a\nif is_main():\n    mp.run_workers(w, 0)\n",  # count
        "def w(a):\n    return a\nif is_main():\n    mp.run_workers(w)\n",  # missing count
    ):
        process = make_process(bad_source)
        with pytest.raises(VMError):
            process.run()


def test_children_share_the_gpu_device():
    source = (
        "def worker(wid):\n"
        "    t = torch.tensor(10000)\n"
        "    u = t * 2.0\n"
        "    torch.synchronize()\n"
        "    return wid\n"
        "if is_main():\n"
        "    mp.run_workers(worker, 2)\n"
    )
    process = make_process(source)
    process.run()
    # Both children launched kernels on the shared device.
    assert process.gpu.kernels_launched >= 2
