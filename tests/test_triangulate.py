"""Triangulation: lint findings ranked by measured cost, cold ones suppressed."""

import pytest

from repro import SimProcess
from repro.analysis import lint_and_triangulate, triangulate
from repro.core import Scalene
from repro.interp.libs import install_standard_libraries
from repro.staticcheck import Finding, lint_source
from repro.ui import render_html

# The same anti-pattern twice: a scalar element loop over a large array
# (hot) and over a 4-element array that runs once (cold). Static analysis
# flags both; the profile shows only one matters.
HOT_COLD_SOURCE = (
    "small = np.arange(4)\n"
    "tiny = np.zeros(4)\n"
    "for i in range(4):\n"
    "    tiny[i] = small[i] * 2.0\n"  # line 4: cold instance
    "big = np.arange(4000)\n"
    "out = np.zeros(4000)\n"
    "for i in range(4000):\n"
    "    out[i] = big[i] * 2.0\n"  # line 8: hot instance
    "print(out.sum())\n"
)


@pytest.fixture(scope="module")
def hot_cold():
    process = SimProcess(HOT_COLD_SOURCE, filename="hotcold.py")
    install_standard_libraries(process)
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()
    triangulated = lint_and_triangulate(
        HOT_COLD_SOURCE, profile, "hotcold.py"
    )
    return profile, triangulated


def test_both_instances_found_statically():
    findings = lint_source(HOT_COLD_SOURCE, "hotcold.py")
    scalar = [f for f in findings if f.detector == "scalar-loop-vectorize"]
    assert {f.lineno for f in scalar} >= {4, 8}


def test_cold_instance_suppressed(hot_cold):
    _, triangulated = hot_cold
    cold = [t for t in triangulated if t.lineno == 4]
    assert cold
    assert all(t.suppressed for t in cold)
    assert all("threshold" in t.reason or "below" in t.reason for t in cold)


def test_hot_instance_ranks_first(hot_cold):
    _, triangulated = hot_cold
    assert triangulated[0].lineno == 8
    assert not triangulated[0].suppressed
    assert triangulated[0].score >= 1.0
    # Active findings come before suppressed ones.
    states = [t.suppressed for t in triangulated]
    assert states == sorted(states)


def test_lint_section_in_text_report(hot_cold):
    profile, _ = hot_cold
    text = profile.render_text()
    assert "Performance lints" in text
    assert "scalar-loop-vectorize" in text
    assert "#1 line    8" in text


def test_lint_in_json_payload(hot_cold):
    profile, _ = hot_cold
    payload = profile.to_dict()
    assert "lint" in payload
    entries = payload["lint"]
    assert any(e["lineno"] == 8 and not e["suppressed"] for e in entries)
    assert any(e["lineno"] == 4 and e["suppressed"] for e in entries)


def test_lint_in_html_report(hot_cold):
    profile, _ = hot_cold
    html = render_html(profile, "hotcold")
    assert "Performance lints" in html
    assert "scalar-loop-vectorize" in html
    assert 'class="lint cold"' in html  # the suppressed instance
    assert "measured" in html


def test_finding_off_profile_is_suppressed():
    process = SimProcess("x = 1\nprint(x)\n", filename="p.py")
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()
    ghost = Finding(
        detector="scalar-loop-vectorize",
        filename="p.py",
        lineno=999,
        function="<module>",
        message="planted",
        suggestion="n/a",
    )
    result = triangulate([ghost], profile)
    assert result[0].suppressed
    assert "not in profile" in result[0].reason


def test_min_percent_zero_keeps_everything(hot_cold):
    profile, _ = hot_cold
    findings = lint_source(HOT_COLD_SOURCE, "hotcold.py")
    loose = triangulate(findings, profile, min_percent=0.0)
    on_profile = [t for t in loose if "not in profile" not in t.reason]
    assert all(not t.suppressed for t in on_profile)
