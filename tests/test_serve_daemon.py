"""End-to-end tests for the continuous-profiling daemon.

A real daemon (HTTP server + 2-process worker pool + on-disk store) is
started once per module; the tests drive it purely over HTTP, exactly
like an external client. The concurrency test is the subsystem's
acceptance bar: 8 simultaneous submissions across 2 worker processes,
every profile persisted, and the merged aggregate's counters equal to
the sums (peaks: maxes) of the constituent runs.
"""

import json
import threading
import urllib.request

import pytest

from repro.core.profile_data import ProfileData
from repro.errors import ServeError
from repro.serve import ProfileDaemon, ServeClient

#: 8 distinct jobs over 2 cheap workloads. The sampling-interval override
#: varies per job so each produces a distinct profile (the simulation is
#: deterministic; identical jobs would dedupe to one content id).
JOBS = [
    (workload, {"cpu_sampling_interval": 0.01 * (1 + variant * 0.3)})
    for workload in ("leaky", "balanced")
    for variant in range(4)
]


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    daemon = ProfileDaemon(
        tmp_path_factory.mktemp("serve-store"), workers=2, port=0
    )
    daemon.start()
    yield daemon
    daemon.stop()


@pytest.fixture(scope="module")
def client(daemon):
    return ServeClient(daemon.url)


@pytest.fixture(scope="module")
def completed_jobs(client):
    """Submit all 8 jobs concurrently; wait for completion."""
    results = [None] * len(JOBS)
    errors = []

    def submit(index, workload, config):
        try:
            job = client.submit(workload, config=config)
            results[index] = client.wait(job["id"], timeout=300)
        except Exception as exc:  # noqa: BLE001 — surface in the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=submit, args=(i, workload, config))
        for i, (workload, config) in enumerate(JOBS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    assert not errors, errors
    return results


def test_health(client):
    health = client.health()
    assert health["status"] == "ok"
    assert health["workers"] == 2


def test_concurrent_jobs_all_complete_and_persist(client, completed_jobs):
    assert len(completed_jobs) == 8
    assert all(job["status"] == "done" for job in completed_jobs)
    profile_ids = [job["profile_id"] for job in completed_jobs]
    assert all(profile_ids)
    assert len(set(profile_ids)) == 8  # distinct workload×scale ⇒ distinct profiles
    stored = {entry["id"] for entry in client.profiles()}
    assert set(profile_ids) <= stored


def test_merged_profile_counters_are_sums_and_maxes(client, completed_jobs):
    """The acceptance criterion: the served aggregate is exactly the sum."""
    profile_ids = [job["profile_id"] for job in completed_jobs]
    parts = [client.profile_data(profile_id) for profile_id in profile_ids]
    merged_id = client.merge(profile_ids)["id"]

    served = client.profile(merged_id)
    assert served["id"] == merged_id
    merged = ProfileData.from_dict(served["profile"])
    assert merged.cpu_samples == sum(p.cpu_samples for p in parts)
    assert merged.total_alloc_mb == pytest.approx(
        sum(p.total_alloc_mb for p in parts)
    )
    assert merged.total_copy_mb == pytest.approx(
        sum(p.total_copy_mb for p in parts)
    )
    assert merged.peak_footprint_mb == max(p.peak_footprint_mb for p in parts)
    assert merged.mem_samples == sum(p.mem_samples for p in parts)
    assert sorted(served["meta"]["parents"]) == sorted(profile_ids)


def test_profile_index_filters_by_workload(client, completed_jobs):
    leaky = client.profiles(workload="leaky")
    assert len([e for e in leaky if not e["parents"]]) == 4
    assert all(e["workload"] == "leaky" for e in leaky)


def test_diff_endpoint(client, completed_jobs):
    a = completed_jobs[0]["profile_id"]  # leaky
    b = completed_jobs[4]["profile_id"]  # balanced — disjoint line sets
    diff = client.diff(a, b)
    before = client.profile_data(a)
    after = client.profile_data(b)
    assert diff["elapsed_before_s"] == pytest.approx(before.elapsed)
    assert diff["elapsed_after_s"] == pytest.approx(after.elapsed)
    assert diff["lines"]  # disjoint profiles still diff (against zero)
    assert isinstance(diff["leaks"], list)


def test_trend_endpoint(client, completed_jobs):
    trend = client.trend(workload="balanced")
    assert len(trend["trend"]) == 4
    created = [point["created_at"] for point in trend["trend"]]
    assert created == sorted(created)


def test_html_rendering(daemon, client, completed_jobs):
    profile_id = completed_jobs[0]["profile_id"]
    with urllib.request.urlopen(
        f"{daemon.url}/profiles/{profile_id}?format=html", timeout=30
    ) as response:
        assert response.headers["Content-Type"] == "text/html"
        page = response.read().decode("utf-8")
    assert "<!DOCTYPE html>" in page
    assert "Scalene profile" in page


def test_job_listing_and_lookup(client, completed_jobs):
    jobs = client.jobs()
    assert len(jobs) >= 8
    one = client.job(jobs[0]["id"])
    assert one["id"] == jobs[0]["id"]


def test_bad_submissions_fail_synchronously(client):
    with pytest.raises(ServeError, match="unknown workload"):
        client.submit("no-such-workload")
    with pytest.raises(ServeError, match="unknown profiler"):
        client.submit("leaky", profiler="no-such-profiler")
    with pytest.raises(ServeError, match="mode"):
        client.submit("leaky", mode="warp-speed")
    with pytest.raises(ServeError, match="scale"):
        client.submit("leaky", scale=-1)


def test_unknown_resources_are_404(daemon):
    for path in ("/profiles/" + "0" * 64, "/nope", "/jobs/job-999999"):
        try:
            urllib.request.urlopen(daemon.url + path, timeout=30)
        except urllib.error.HTTPError as exc:
            assert exc.code in (400, 404), path
            assert "error" in json.loads(exc.read().decode("utf-8"))
        else:  # pragma: no cover - the request must fail
            pytest.fail(f"{path} unexpectedly succeeded")


def test_merge_requires_two_ids(client, completed_jobs):
    with pytest.raises(ServeError, match="merge needs"):
        client.merge([completed_jobs[0]["profile_id"]])


def test_baseline_profiler_jobs(client):
    """Jobs can run baseline profilers; results land in the same store."""
    job = client.submit("balanced", profiler="cProfile", scale=0.02)
    done = client.wait(job["id"], timeout=300)
    profile = client.profile_data(done["profile_id"])
    assert profile.mode == "baseline:cProfile"
    assert profile.cpu_samples > 0


def test_faulted_job_over_http_yields_degraded_profile(client):
    """A job carrying a fault schedule round-trips the whole plane:
    HTTP submit -> worker-side injection -> degraded profile persisted."""
    job = client.submit(
        "balanced",
        scale=0.1,
        faults={"seed": 5, "signal_drop_rate": 0.2, "enomem_rate": 0.05},
    )
    done = client.wait(job["id"], timeout=300)
    profile = client.profile_data(done["profile_id"])
    assert profile.degraded
    assert profile.fault_counters  # something fired at these rates
    assert profile.invariant_violations() == []


def test_health_reports_healing_counters(client):
    health = client.health()
    assert set(health["healing"]) >= {
        "retries", "requeues", "timeouts", "pool_breaks", "pool_respawns",
    }
    assert isinstance(health["breaker"], dict)


def test_bad_fault_spec_fails_synchronously(client):
    with pytest.raises(ServeError, match="signal_drop_rate"):
        client.submit("leaky", faults={"signal_drop_rate": 3.0})
    with pytest.raises(ServeError, match="timeout_s"):
        client.submit("leaky", timeout_s=-5)


def test_crossflow_endpoint(client):
    job = client.submit("chatty", scale=0.25)
    done = client.wait(job["id"], timeout=300)
    result = client.crossflow(done["profile_id"])
    assert result["workload"] == "chatty"
    assert result["crossings"]["total"] > 0
    detectors = {f["detector"] for f in result["findings"]}
    assert "chatty-native-loop" in detectors
    chatty_sites = [
        f for f in result["findings"] if f["detector"] == "chatty-native-loop"
    ]
    assert all(f["crossings_per_iteration"] > 1 for f in chatty_sites)


def test_crossflow_endpoint_requires_id(daemon):
    try:
        urllib.request.urlopen(daemon.url + "/crossflow", timeout=30)
    except urllib.error.HTTPError as exc:
        assert exc.code == 400
        assert "crossflow needs" in json.loads(exc.read().decode("utf-8"))["error"]
    else:  # pragma: no cover - the request must fail
        pytest.fail("/crossflow without ?id unexpectedly succeeded")


def test_contention_endpoint(client):
    job = client.submit("producer_consumer", scale=1.0)
    done = client.wait(job["id"], timeout=300)
    result = client.contention(done["profile_id"])
    assert result["id"] == done["profile_id"]
    assert result["locks"]["blocked_s"] > 0
    assert result["locks"]["contentions"] > 0
    # The per-line table is sorted hottest-first and only lists lines that
    # actually touched a lock.
    lines = result["lines"]
    assert lines
    blocked = [entry["blocked_s"] for entry in lines]
    assert blocked == sorted(blocked, reverse=True)
    assert all(
        entry["contentions"] > 0 or entry["acquisitions"] > 0
        for entry in lines
    )
    edges = result["edges"]
    assert edges
    assert all(e["waiter"] != e["holder"] for e in edges)
    assert all(e["lock"] == "queue" for e in edges)


def test_contention_endpoint_requires_id(daemon):
    try:
        urllib.request.urlopen(daemon.url + "/contention", timeout=30)
    except urllib.error.HTTPError as exc:
        assert exc.code == 400
        assert "contention needs" in json.loads(exc.read().decode("utf-8"))["error"]
    else:  # pragma: no cover - the request must fail
        pytest.fail("/contention without ?id unexpectedly succeeded")
