"""Fork-stitching exactness: merged counters == sum of per-process truth.

Stitching mode gives every forked child its own stats and profile, then
merges parent + children with the exact ``merge_profiles`` semantics.
Unlike the sampled CPU columns (bounded by the ±5% conformance suite),
the counters checked here are exact: process lineage, per-process
clocks, sample counts, and crossing/lock totals must equal the sums of
the per-process ground truth with no tolerance.
"""

from __future__ import annotations

import pytest

from repro.core.scalene import Scalene
from repro.workloads import get_workload

SCALES = [1.0, 1.5, 2.0, 2.5, 3.0]


@pytest.fixture(scope="module", params=SCALES)
def stitched(request):
    workload = get_workload("fork_etl")
    process = workload.make_process(request.param, collect_ground_truth=True)
    scalene = Scalene(process, mode="cpu", stitch_children=True)
    scalene.start()
    process.run()
    merged = scalene.stop()
    return process, scalene, merged


@pytest.mark.accuracy
def test_lineage_exactly_matches_process_tree(stitched):
    process, _scalene, merged = stitched
    tree = process.process_tree()
    assert len(tree) == 4  # parent + 3 ETL workers
    assert {(p.pid, p.parent_pid) for p in merged.processes} == {
        (t.pid, t.parent_pid) for t in tree
    }
    by_pid = {p.pid: p for p in merged.processes}
    for t in tree:
        report = by_pid[t.pid]
        assert report.elapsed_s == t.clock.wall
        assert report.cpu_s == t.clock.cpu


@pytest.mark.accuracy
def test_merged_counters_equal_per_process_sums(stitched):
    process, scalene, merged = stitched
    tree = process.process_tree()
    # Elapsed is the sum of per-process walls (the merge's "one longer
    # session" semantics), exactly.
    assert merged.elapsed == pytest.approx(
        sum(t.clock.wall for t in tree), rel=1e-12
    )
    # Sample counts: the merged profile carries every per-process sample.
    sessions = [scalene] + scalene._child_sessions
    assert merged.cpu_samples == sum(s.stats.cpu_sample_count for s in sessions)
    # Exact runtime counters sum across the tree.
    assert merged.total_crossings == sum(t.crossings.total_crossings for t in tree)
    assert merged.total_lock_acquisitions == sum(
        t.lock_contention.total_acquisitions for t in tree
    )
    assert merged.total_bytes_to_native == sum(
        t.crossings.total_bytes_to_native for t in tree
    )


@pytest.mark.accuracy
def test_stitched_children_carry_their_own_work(stitched):
    _process, scalene, merged = stitched
    assert len(scalene._child_sessions) == 3
    for child in scalene._child_sessions:
        assert child.stats is not scalene.stats
        assert child.stats.cpu_sample_count > 0
    # The worker body (the child-only while loop) must appear in the
    # merged per-line table with real attribution.
    hot = [l for l in merged.lines if l.cpu_total_percent > 1.0]
    assert any(l.lineno in (4, 5, 6) for l in hot)
