"""Conformance accuracy suite: profiler vs. exact ground truth.

For each concurrency workload and each seed (seeds map to distinct
scales, so every run exercises a different schedule), a profiled run is
compared against an unprofiled oracle run:

* per-line CPU attribution (python + native) must land within ±5 points
  of the program's total ground-truth CPU time;
* lock blocked-time must land within ±10% (relative) of the oracle's
  exact contention recorder;
* a fork-stitched merged profile's counters must *exactly* equal the
  sum of the per-process ground truth (walls, lineage, sample counts).
"""

from __future__ import annotations

import pytest

from repro.analysis.accuracy import run_conformance

#: Seed → scale: five distinct schedules per workload. The band is
#: chosen so runs carry enough samples for the bounds to be meaningful
#: (hundreds of CPU samples) while staying fast enough for tier-1.
SEEDS = {0: 1.5, 1: 1.75, 2: 2.0, 3: 2.25, 4: 2.5}

CPU_BOUND = 0.05  # ±5 points of total ground-truth CPU
LOCK_BOUND = 0.10  # ±10% relative blocked time

CONCURRENCY_WORKLOADS = ("async_server", "fork_etl", "producer_consumer")


@pytest.mark.accuracy
@pytest.mark.parametrize("workload", CONCURRENCY_WORKLOADS)
@pytest.mark.parametrize("seed", sorted(SEEDS))
def test_per_line_cpu_attribution_within_bound(workload, seed):
    report = run_conformance(workload, scale=SEEDS[seed])
    worst = max(report.line_errors, key=lambda e: e.error_fraction)
    assert report.worst_line_cpu_error <= CPU_BOUND, (
        f"{workload} seed {seed}: line {worst.filename}:{worst.lineno} "
        f"attributed {worst.profiled_s:.4f}s vs actual {worst.actual_s:.4f}s "
        f"({100 * worst.error_fraction:.2f} points of total CPU)"
    )


@pytest.mark.accuracy
@pytest.mark.parametrize("seed", sorted(SEEDS))
def test_lock_blocked_time_within_bound(seed):
    report = run_conformance("producer_consumer", scale=SEEDS[seed])
    assert report.gt_lock_blocked_s > 0, "oracle run saw no contention"
    assert report.profile.total_lock_blocked_s > 0
    assert report.lock_blocked_relative_error <= LOCK_BOUND, (
        f"seed {seed}: profiled blocked "
        f"{report.profile.total_lock_blocked_s:.4f}s vs oracle "
        f"{report.gt_lock_blocked_s:.4f}s "
        f"({100 * report.lock_blocked_relative_error:.1f}% off)"
    )
    # Per-line blocked time obeys the same bound wherever the oracle saw
    # non-trivial contention on a line.
    for key, gt_blocked in report.gt_line_blocked.items():
        if gt_blocked < 0.1 * report.gt_lock_blocked_s:
            continue
        line = report.profile.line(key[1], key[0])
        assert line is not None, f"contended line {key} missing from profile"
        rel = abs(line.lock_blocked_s - gt_blocked) / gt_blocked
        assert rel <= LOCK_BOUND, (
            f"seed {seed} line {key}: {line.lock_blocked_s:.4f}s vs "
            f"{gt_blocked:.4f}s ({100 * rel:.1f}% off)"
        )


@pytest.mark.accuracy
@pytest.mark.parametrize("seed", sorted(SEEDS))
def test_async_task_accounting(seed):
    report = run_conformance("async_server", scale=SEEDS[seed])
    profile = report.profile
    assert profile.tasks, "async workload produced no task records"
    # Every handler awaited at least once, and per-task CPU is exact
    # (virtual-clock accounting), so the totals must be positive and the
    # idle time of IO-bound handlers must dominate their CPU time.
    handlers = [t for t in profile.tasks if t.name.startswith("handler")]
    assert handlers
    for task in handlers:
        assert task.awaiting, f"{task.name} recorded no await point"
        assert task.switches > 0
        assert task.wait_s > 0
