"""Integration tests: GPU profiling (§4) and copy volume (§3.5)."""

import pytest

from repro import SimProcess
from repro.core import Scalene
from repro.core.config import ScaleneConfig
from repro.interp.libs import install_standard_libraries


def run(source, mode="full", config=None):
    process = SimProcess(source, filename="t.py")
    install_standard_libraries(process)
    scalene = Scalene(process, config=config, mode=None if config else mode)
    scalene.start()
    process.run()
    return scalene, scalene.stop(), process


def test_gpu_utilization_attributed_to_busy_region():
    source = (
        "t = torch.tensor(400000)\n"
        "u = torch.forward(t)\n"
        "torch.synchronize()\n"  # line 3: where the program waits on GPU
        "s = 0\n"
        "for i in range(4000):\n"
        "    s = s + 1\n"  # lines 5-6: CPU-only tail, GPU idle
    )
    _, prof, _ = run(source, mode="cpu+gpu")
    sync_line = prof.line(3)
    cpu_line = prof.line(6)
    assert sync_line is not None
    assert sync_line.gpu_percent > 0.5
    if cpu_line is not None:
        assert cpu_line.gpu_percent < sync_line.gpu_percent
    assert prof.gpu_mean_utilization > 0.05


def test_gpu_memory_tracked():
    source = (
        "t = torch.tensor(2000000)\n"
        "torch.synchronize()\n"
        "s = 0\n"
        "for i in range(3000):\n"
        "    s = s + 1\n"
    )
    _, prof, _ = run(source, mode="cpu+gpu")
    assert prof.gpu_mem_peak_mb == pytest.approx(8.0, rel=0.3)  # 2M * 4B


def test_per_pid_accounting_enabled_at_start():
    source = "x = 1\n"
    _, _, process = run(source, mode="cpu+gpu")
    assert process.gpu.per_pid_accounting


def test_per_pid_accounting_can_be_declined():
    config = ScaleneConfig(mode="cpu+gpu", enable_gpu_per_pid_accounting=False)
    source = "x = 1\n"
    _, _, process = run(source, config=config)
    assert not process.gpu.per_pid_accounting


def test_cpu_mode_skips_gpu_and_memory():
    source = "t = torch.tensor(100000)\ntorch.synchronize()\n"
    scalene, prof, _ = run(source, mode="cpu")
    assert scalene.gpu_profiler is None
    assert scalene.memory_profiler is None
    assert prof.gpu_mean_utilization == 0.0
    assert prof.mem_samples == 0


def test_copy_volume_for_explicit_copies():
    source = (
        "a = np.zeros(3000000)\n"  # 24 MB
        "total = 0\n"
        "for i in range(10):\n"
        "    b = np.copy(a)\n"  # line 4: 24 MB copied per iteration
        "    del b\n"
        "    total = total + 1\n"
    )
    _, prof, _ = run(source)
    line = prof.line(4)
    assert line is not None
    assert line.copy_mb_s > 0
    assert prof.total_copy_mb == pytest.approx(240 * 1e6 / (1024 * 1024), rel=0.15)


def test_copy_volume_for_gpu_transfers():
    source = (
        "t = torch.tensor(4000000)\n"  # 16 MB h2d
        "h = t.to_host()\n"  # 16 MB d2h
    )
    _, prof, _ = run(source)
    assert prof.total_copy_mb > 20


def test_chained_indexing_shows_copy_volume():
    """The pandas case study (§7): df[col][i] in a loop copies the column
    every iteration; hoisting eliminates the copies."""
    chained = (
        "df = pd.frame(500000, 4)\n"
        "total = 0\n"
        "for i in range(30):\n"
        "    v = df['c0'][i]\n"  # line 4: copies 4 MB per iteration
        "    total = total + v\n"
    )
    hoisted = (
        "df = pd.frame(500000, 4)\n"
        "col = df.column_view('c0')\n"
        "total = 0\n"
        "for i in range(30):\n"
        "    v = col[i]\n"
        "    total = total + v\n"
    )
    _, prof_chained, p1 = run(chained)
    _, prof_hoisted, p2 = run(hoisted)
    assert prof_chained.total_copy_mb > 20 * prof_hoisted.total_copy_mb + 1
    # And the chained version is much slower end to end.
    assert p1.clock.wall > 3 * p2.clock.wall


def test_no_copy_volume_without_copies():
    source = "s = 0\nfor i in range(2000):\n    s = s + 1\n"
    _, prof, _ = run(source)
    assert prof.total_copy_mb == 0.0
