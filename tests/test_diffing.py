"""Tests for profile diffing (the before/after verification loop of §7)."""

import pytest

from repro import SimProcess
from repro.analysis.diffing import diff_profiles
from repro.core import Scalene
from repro.interp.libs import install_standard_libraries

BEFORE = (
    "total = 0\n"
    "for i in range(6000):\n"
    "    total = total + i * 3 - 1\n"  # line 3: the slow scalar loop
    "buf = py_buffer(60000000)\n"
    "a = np.zeros(1000000)\n"
    "b = np.copy(a)\n"
    "del buf\n"
)

AFTER = (
    "x = np.zeros(6000)\n"
    "y = x * 3.0\n"
    "total = y.sum()\n"  # vectorized replacement
    "buf = py_buffer(20000000)\n"  # smaller buffer after the fix
    "a = np.zeros(1000000)\n"
    "b = a[0:1000000]\n"  # view instead of copy
    "del buf\n"
)


def profile(source):
    process = SimProcess(source, filename="opt.py")
    install_standard_libraries(process)
    return Scalene.run(process, mode="full")


P_BEFORE = profile(BEFORE)
P_AFTER = profile(AFTER)
DIFF = diff_profiles(P_BEFORE, P_AFTER)


def test_headline_speedup():
    assert DIFF.speedup > 3.0
    assert DIFF.elapsed_before > DIFF.elapsed_after


def test_memory_savings():
    assert DIFF.memory_saved_mb > 30


def test_copy_volume_eliminated():
    assert DIFF.copy_mb_before > DIFF.copy_mb_after


def test_hottest_improvement_is_the_scalar_loop():
    improvements = DIFF.hottest_improvements(top=3)
    assert improvements[0].lineno == 3
    assert improvements[0].cpu_percent_delta < -20


def test_lines_unique_to_one_profile_are_covered():
    linenos = {d.lineno for d in DIFF.line_deltas}
    before_lines = {l.lineno for l in P_BEFORE.lines}
    after_lines = {l.lineno for l in P_AFTER.lines}
    assert linenos == before_lines | after_lines


def test_regressions_detection():
    # Diffing a profile against itself: no regressions, 1.0x speedup.
    self_diff = diff_profiles(P_BEFORE, P_BEFORE)
    assert self_diff.speedup == pytest.approx(1.0)
    assert self_diff.regressions() == []
    # Reversed diff: the slow loop shows up as a regression.
    reversed_diff = diff_profiles(P_AFTER, P_BEFORE)
    assert any(d.lineno == 3 for d in reversed_diff.regressions())


def test_render_text():
    text = DIFF.render_text()
    assert "speedup" in text
    assert "peak memory" in text
    assert "biggest line improvements" in text
