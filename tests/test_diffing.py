"""Tests for profile diffing (the before/after verification loop of §7)."""

import pytest

from repro import SimProcess
from repro.analysis.diffing import diff_profiles
from repro.core import Scalene
from repro.interp.libs import install_standard_libraries

BEFORE = (
    "total = 0\n"
    "for i in range(6000):\n"
    "    total = total + i * 3 - 1\n"  # line 3: the slow scalar loop
    "buf = py_buffer(60000000)\n"
    "a = np.zeros(1000000)\n"
    "b = np.copy(a)\n"
    "del buf\n"
)

AFTER = (
    "x = np.zeros(6000)\n"
    "y = x * 3.0\n"
    "total = y.sum()\n"  # vectorized replacement
    "buf = py_buffer(20000000)\n"  # smaller buffer after the fix
    "a = np.zeros(1000000)\n"
    "b = a[0:1000000]\n"  # view instead of copy
    "del buf\n"
)


def profile(source):
    process = SimProcess(source, filename="opt.py")
    install_standard_libraries(process)
    return Scalene.run(process, mode="full")


P_BEFORE = profile(BEFORE)
P_AFTER = profile(AFTER)
DIFF = diff_profiles(P_BEFORE, P_AFTER)


def test_headline_speedup():
    assert DIFF.speedup > 3.0
    assert DIFF.elapsed_before > DIFF.elapsed_after


def test_memory_savings():
    assert DIFF.memory_saved_mb > 30


def test_copy_volume_eliminated():
    assert DIFF.copy_mb_before > DIFF.copy_mb_after


def test_hottest_improvement_is_the_scalar_loop():
    improvements = DIFF.hottest_improvements(top=3)
    assert improvements[0].lineno == 3
    assert improvements[0].cpu_percent_delta < -20


def test_lines_unique_to_one_profile_are_covered():
    linenos = {d.lineno for d in DIFF.line_deltas}
    before_lines = {l.lineno for l in P_BEFORE.lines}
    after_lines = {l.lineno for l in P_AFTER.lines}
    assert linenos == before_lines | after_lines


def test_regressions_detection():
    # Diffing a profile against itself: no regressions, 1.0x speedup.
    self_diff = diff_profiles(P_BEFORE, P_BEFORE)
    assert self_diff.speedup == pytest.approx(1.0)
    assert self_diff.regressions() == []
    # Reversed diff: the slow loop shows up as a regression.
    reversed_diff = diff_profiles(P_AFTER, P_BEFORE)
    assert any(d.lineno == 3 for d in reversed_diff.regressions())


def test_render_text():
    text = DIFF.render_text()
    assert "speedup" in text
    assert "peak memory" in text
    assert "biggest line improvements" in text


# ---------------------------------------------------------------------------
# Disjoint profiles + function/leak deltas (the serve /diff contract)
# ---------------------------------------------------------------------------

DISJOINT_BEFORE = (
    "items = []\n"
    "for i in range(3000):\n"
    "    items.append(i * 2)\n"
)
DISJOINT_AFTER = (
    "a = np.zeros(500000)\n"
    "b = np.copy(a)\n"
    "native_work(0.4)\n"
)


def test_disjoint_line_sets_diff_against_zero():
    """Profiles of entirely different programs diff without raising."""
    before = profile(DISJOINT_BEFORE)
    after = profile(DISJOINT_AFTER)
    # Distinct filenames too: nothing matches on (filename, lineno).
    diff = diff_profiles(before, after)
    keys_before = {(l.filename, l.lineno) for l in before.lines}
    keys_after = {(l.filename, l.lineno) for l in after.lines}
    assert keys_before.isdisjoint(keys_after) or keys_before & keys_after
    covered = {(d.filename, d.lineno) for d in diff.line_deltas}
    assert covered == keys_before | keys_after
    # Lines only in `before` lose their full share; only-in-`after` gain it.
    for delta in diff.line_deltas:
        if (delta.filename, delta.lineno) in keys_before - keys_after:
            b = before.line(delta.lineno, delta.filename)
            assert delta.cpu_percent_delta == pytest.approx(-b.cpu_total_percent)
    diff.render_text()  # renders without raising


def test_diff_empty_profiles():
    from repro.core.profile_data import ProfileData

    empty = ProfileData(
        mode="full", elapsed=0.0, cpu_python_time=0, cpu_native_time=0,
        cpu_system_time=0, cpu_samples=0, mem_samples=0, peak_footprint_mb=0,
        total_copy_mb=0, gpu_mean_utilization=0, gpu_mem_peak_mb=0,
    )
    diff = diff_profiles(empty, P_AFTER)
    assert len(diff.line_deltas) == len(P_AFTER.lines)
    assert diff_profiles(empty, empty).line_deltas == []


def test_function_deltas_cover_both_sides():
    functions_before = {(f.filename, f.function) for f in P_BEFORE.functions}
    functions_after = {(f.filename, f.function) for f in P_AFTER.functions}
    covered = {(d.filename, d.function) for d in DIFF.function_deltas}
    assert covered == functions_before | functions_after


def test_leak_deltas_fixed_leak_goes_negative():
    from repro.core.leak_detector import LeakReport
    from repro.core.profile_data import ProfileData

    def with_leak(leaks):
        return ProfileData(
            mode="full", elapsed=10.0, cpu_python_time=1, cpu_native_time=0,
            cpu_system_time=0, cpu_samples=10, mem_samples=5,
            peak_footprint_mb=100, total_copy_mb=0, gpu_mean_utilization=0,
            gpu_mem_peak_mb=0, leaks=leaks,
        )

    leak = LeakReport(
        filename="app.py", lineno=7, function="grow", likelihood=0.97,
        leak_rate_mb_s=2.0, mallocs=40, frees=0,
    )
    diff = diff_profiles(with_leak([leak]), with_leak([]))
    assert len(diff.leak_deltas) == 1
    assert diff.leak_deltas[0].likelihood_delta == pytest.approx(-0.97)
    assert "leaks fixed" in diff.render_text()
    reverse = diff_profiles(with_leak([]), with_leak([leak]))
    assert reverse.leak_deltas[0].likelihood_delta == pytest.approx(0.97)
    assert "new leaks" in reverse.render_text()


def test_diff_to_dict_is_json_ready():
    import json

    payload = DIFF.to_dict()
    json.dumps(payload)  # round-trips through JSON
    assert payload["speedup"] == pytest.approx(DIFF.speedup)
    assert len(payload["lines"]) == len(DIFF.line_deltas)
    assert {"functions", "leaks", "regressions"} <= set(payload)
