"""Acceptance tests for the native-boundary cross-flow plane.

The contract (the PR's acceptance bar): on the chatty/batched workload
pair, the cross-flow analysis flags the chatty variant's loop lines with
more than one crossing per iteration, reports the crossing-overhead
share, and suggests the batched rewrite with estimated savings — and
reports **zero** boundary findings on the batched variant. The measured
crossing counts must match the runtime's ground-truth oracle exactly.
"""

import pytest

from repro.analysis.crossflow import analyze_crossflow, cross_flow
from repro.core import Scalene
from repro.errors import VMError
from repro.interp.libs.simnp import make_simnp
from repro.staticcheck import boundary_findings_source
from repro.workloads import get_workload

SCALE = 0.25


def run_workload(name, **process_kwargs):
    workload = get_workload(name)
    process = workload.make_process(SCALE, **process_kwargs)
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()
    return workload, process, profile


@pytest.fixture(scope="module")
def chatty():
    workload, process, profile = run_workload("chatty", collect_ground_truth=True)
    findings = analyze_crossflow(
        workload.source(SCALE), profile, "chatty.py", recorder=process.crossings
    )
    return workload, process, profile, findings


def test_chatty_loop_lines_flagged(chatty):
    _workload, _process, _profile, findings = chatty
    loop = [f for f in findings if f.detector == "chatty-native-loop"]
    assert len(loop) == 2  # np.get and np.put, one site each
    for f in loop:
        assert f.crossings > 0
        assert f.crossings_per_iteration > 1
        assert 0 < f.overhead_share_percent < 100
        assert f.estimated_savings_s > 0
        assert "vectorized" in f.suggestion


def test_chatty_roundtrip_flagged(chatty):
    _workload, _process, _profile, findings = chatty
    roundtrips = [f for f in findings if f.detector == "native-roundtrip-conversion"]
    assert len(roundtrips) == 1
    (f,) = roundtrips
    assert f.crossings == 1
    # The fix removes the conversion outright: all overhead is saved.
    assert f.estimated_savings_s == pytest.approx(f.overhead_s)


def test_chatty_byte_volumes_recorded(chatty):
    _workload, _process, profile, _findings = chatty
    # tolist converts the array out, asarray converts the list back in.
    assert profile.total_bytes_to_python > 0
    assert profile.total_bytes_to_native > 0


def test_crossings_match_ground_truth_oracle_exactly(chatty):
    _workload, process, _profile, _findings = chatty
    recorded = {
        key: counters.crossings for key, counters in process.crossings.lines.items()
    }
    oracle = {
        key[:2]: truth.native_calls
        for key, truth in process.ground_truth.lines.items()
        if truth.native_calls > 0
    }
    assert recorded == oracle
    assert process.crossings.total_crossings == sum(oracle.values())


def test_batched_variant_is_clean():
    workload, process, profile = run_workload("batched")
    findings = analyze_crossflow(
        workload.source(SCALE), profile, "batched.py", recorder=process.crossings
    )
    assert findings == []
    assert boundary_findings_source(workload.source(SCALE), "batched.py") == []
    # The batched variant still crosses (arange + the vectorized multiply
    # run natively) — just a constant number of times, not per element.
    assert 0 < profile.total_crossings <= 5


def test_profile_embeds_crossflow_findings(chatty):
    _workload, _process, profile, findings = chatty
    assert profile.crossflow_findings == findings
    text = profile.render_text()
    assert "Cross-flow findings" in text
    assert "Native boundary" in text


def test_cross_flow_join_from_profile_lines(chatty):
    """Without a recorder the join falls back to the profile's per-line
    counters (what the daemon does for stored profiles)."""
    workload, _process, profile, with_recorder = chatty
    boundary = boundary_findings_source(workload.source(SCALE), "chatty.py")
    from_profile = cross_flow(boundary, profile)
    assert {(f.detector, f.lineno) for f in from_profile} == {
        (f.detector, f.lineno) for f in with_recorder
    }
    chatty_lines = [f for f in from_profile if f.detector == "chatty-native-loop"]
    assert all(f.crossings_per_iteration > 1 for f in chatty_lines)


def test_unexecuted_findings_sort_last():
    source = (
        "flag = 0\n"
        "a = np.arange(50)\n"
        "b = np.zeros(50)\n"
        "if flag > 0:\n"
        "    for i in range(50):\n"
        "        v = np.get(a, i)\n"
        "        np.put(b, i, v)\n"
        "l = a.tolist()\n"
        "c = np.asarray(l)\n"
        "print(c.sum())\n"
    )
    from repro.runtime.process import SimProcess
    from repro.interp.libs import install_standard_libraries

    process = SimProcess(source, filename="cold.py")
    install_standard_libraries(process)
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()
    findings = analyze_crossflow(source, profile, "cold.py", recorder=process.crossings)
    assert findings, "the static shapes must still be reported"
    executed = [f for f in findings if f.confirmed]
    dead = [f for f in findings if not f.confirmed]
    assert dead, "the dead loop's findings must survive with zero counters"
    assert findings == executed + dead  # confirmed first


def test_sim_getattr_suggests_nearest_match():
    np = make_simnp()
    with pytest.raises(VMError, match=r"did you mean 'arange'\?"):
        np.sim_getattr("arrange")
    with pytest.raises(VMError, match="available: "):
        np.sim_getattr("qqqq")


def test_triangulate_all_attaches_both_joins():
    from repro.analysis import triangulate_all

    workload, process, profile = run_workload("chatty")
    triangulated, crossflow = triangulate_all(
        workload.source(SCALE), profile, "chatty.py", recorder=process.crossings
    )
    assert profile.lint_findings == triangulated
    assert profile.crossflow_findings == crossflow
    assert any(f.detector == "chatty-native-loop" for f in crossflow)
