"""Property tests for profile merge semantics (repro.serve aggregation).

The merge rules (see ``repro.core.profile_data``): additive counters
sum, high-water marks take the max, fractions recombine sample-weighted
from the underlying absolute quantities, and leak likelihoods re-derive
from the *summed* malloc/free counters via Laplace's Rule of Succession.
Those rules make the merge associative and commutative up to float
rounding — which is what lets the daemon merge worker profiles in any
order and incrementally.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import SimProcess
from repro.core import Scalene
from repro.core.leak_detector import LeakReport, leak_likelihood
from repro.core.profile_data import (
    FunctionReport,
    LineReport,
    LockEdge,
    ProcessReport,
    ProfileData,
    TaskReport,
    merge_profiles,
)
from repro.errors import ProfilerError

# ---------------------------------------------------------------------------
# Synthetic-profile strategy: draw raw per-line counters, then derive the
# percentage fields exactly the way build_profile does, so every generated
# profile is internally consistent.
# ---------------------------------------------------------------------------

mb = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False)
seconds = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@st.composite
def profiles(draw):
    num_lines = draw(st.integers(min_value=0, max_value=5))
    raw_lines = []
    for index in range(num_lines):
        lineno = draw(st.integers(min_value=1, max_value=8))
        malloc = draw(mb)
        raw_lines.append(
            {
                "filename": draw(st.sampled_from(["a.py", "b.py"])),
                "lineno": lineno,
                "python_s": draw(seconds),
                "native_s": draw(seconds),
                "system_s": draw(seconds),
                "malloc_mb": malloc,
                "python_alloc_mb": malloc * draw(st.floats(0.0, 1.0)),
                "peak_mb": draw(mb),
                "copy_mb": draw(mb),
                # Native-boundary counters (schema v4): exact, additive.
                "crossings": draw(st.integers(min_value=0, max_value=50)),
                "crossing_overhead_s": draw(seconds),
                "crossing_native_s": draw(seconds),
                "to_native": draw(st.integers(min_value=0, max_value=1 << 20)),
                "to_python": draw(st.integers(min_value=0, max_value=1 << 20)),
                # Lock-contention counters (schema v5): exact, additive.
                "lock_blocked_s": draw(seconds),
                "lock_contentions": draw(st.integers(min_value=0, max_value=20)),
                "lock_acquisitions": draw(st.integers(min_value=0, max_value=40)),
            }
        )
    # Collapse duplicate (filename, lineno) draws.
    by_key = {}
    for raw in raw_lines:
        by_key[(raw["filename"], raw["lineno"])] = raw
    raw_lines = list(by_key.values())

    elapsed = draw(st.floats(min_value=0.1, max_value=100.0))
    total_python = sum(r["python_s"] for r in raw_lines)
    total_native = sum(r["native_s"] for r in raw_lines)
    total_system = sum(r["system_s"] for r in raw_lines)
    total_cpu = total_python + total_native + total_system
    total_alloc = sum(r["malloc_mb"] for r in raw_lines)
    pct = (lambda s: 100.0 * s / total_cpu if total_cpu > 0 else 0.0)

    leaks = []
    for key in draw(st.lists(st.sampled_from(["l1", "l2"]), unique=True)):
        mallocs = draw(st.integers(min_value=1, max_value=50))
        frees = draw(st.integers(min_value=0, max_value=mallocs))
        leaks.append(
            LeakReport(
                filename="a.py",
                lineno=1 if key == "l1" else 2,
                function=key,
                likelihood=leak_likelihood(mallocs, frees),
                leak_rate_mb_s=draw(mb) / elapsed,
                mallocs=mallocs,
                frees=frees,
            )
        )

    edges = [
        LockEdge(
            waiter=pair[0],
            holder=pair[1],
            lock="queue",
            blocked_s=draw(seconds),
            count=draw(st.integers(min_value=1, max_value=20)),
        )
        for pair in draw(
            st.lists(
                st.sampled_from(
                    [("worker-1", "worker-2"), ("worker-2", "worker-1")]
                ),
                unique=True,
            )
        )
    ]
    tasks = [
        TaskReport(
            name=name,
            cpu_s=draw(seconds),
            wait_s=draw(seconds),
            switches=draw(st.integers(min_value=0, max_value=50)),
            awaiting=draw(st.sampled_from(["", "a.py:3"])),
        )
        for name in draw(
            st.lists(st.sampled_from(["task-a", "task-b"]), unique=True)
        )
    ]
    processes = [
        ProcessReport(
            pid=pid,
            parent_pid=None if pid == 1 else 1,
            elapsed_s=draw(seconds),
            cpu_s=draw(seconds),
            peak_mb=draw(mb),
        )
        for pid in draw(st.lists(st.sampled_from([1, 2, 3]), unique=True))
    ]

    return ProfileData(
        mode="full",
        elapsed=elapsed,
        cpu_python_time=total_python,
        cpu_native_time=total_native,
        cpu_system_time=total_system,
        cpu_samples=draw(st.integers(min_value=0, max_value=10_000)),
        mem_samples=draw(st.integers(min_value=1, max_value=10_000)),
        peak_footprint_mb=max([r["peak_mb"] for r in raw_lines], default=0.0),
        total_copy_mb=sum(r["copy_mb"] for r in raw_lines),
        gpu_mean_utilization=draw(st.floats(0.0, 1.0)),
        gpu_mem_peak_mb=draw(mb),
        gpu_samples=draw(st.integers(min_value=0, max_value=1000)),
        total_alloc_mb=total_alloc,
        sample_log_bytes=draw(st.integers(min_value=0, max_value=1 << 20)),
        # Totals cover the whole run, so they may exceed the per-line sums
        # (lines below the significance filter still cross).
        total_crossings=sum(r["crossings"] for r in raw_lines)
        + draw(st.integers(min_value=0, max_value=100)),
        total_crossing_overhead_s=sum(r["crossing_overhead_s"] for r in raw_lines),
        total_bytes_to_native=sum(r["to_native"] for r in raw_lines),
        total_bytes_to_python=sum(r["to_python"] for r in raw_lines),
        total_lock_blocked_s=sum(r["lock_blocked_s"] for r in raw_lines),
        total_lock_contentions=sum(r["lock_contentions"] for r in raw_lines),
        total_lock_acquisitions=sum(r["lock_acquisitions"] for r in raw_lines)
        + draw(st.integers(min_value=0, max_value=100)),
        lock_edges=edges,
        tasks=tasks,
        processes=processes,
        leaks=leaks,
        lines=[
            LineReport(
                filename=r["filename"],
                lineno=r["lineno"],
                function="f",
                source="src",
                cpu_python_percent=pct(r["python_s"]),
                cpu_native_percent=pct(r["native_s"]),
                cpu_system_percent=pct(r["system_s"]),
                mem_avg_mb=r["peak_mb"] / 2,
                mem_peak_mb=r["peak_mb"],
                mem_python_percent=(
                    100.0 * r["python_alloc_mb"] / r["malloc_mb"]
                    if r["malloc_mb"] > 0
                    else 0.0
                ),
                mem_activity_percent=(
                    100.0 * r["malloc_mb"] / total_alloc if total_alloc > 0 else 0.0
                ),
                timeline=[(0.0, 0.0), (elapsed, r["peak_mb"])],
                copy_mb_s=r["copy_mb"] / elapsed,
                gpu_percent=draw(st.floats(0.0, 1.0)),
                gpu_mem_peak_mb=draw(mb),
                crossings=r["crossings"],
                crossing_overhead_s=r["crossing_overhead_s"],
                crossing_native_s=r["crossing_native_s"],
                bytes_to_native=r["to_native"],
                bytes_to_python=r["to_python"],
                lock_blocked_s=r["lock_blocked_s"],
                lock_contentions=r["lock_contentions"],
                lock_acquisitions=r["lock_acquisitions"],
            )
            for r in raw_lines
        ],
        functions=[
            FunctionReport(
                filename=r["filename"],
                function="f",
                cpu_python_percent=pct(r["python_s"]),
                cpu_native_percent=0.0,
                cpu_system_percent=0.0,
                malloc_mb=r["malloc_mb"],
                copy_mb=r["copy_mb"],
                gpu_percent=0.0,
            )
            for r in raw_lines[:1]
        ],
    )


def counters(profile: ProfileData):
    """The additive/max counters the merge must combine exactly."""
    return {
        "elapsed": profile.elapsed,
        "python_s": profile.cpu_python_time,
        "native_s": profile.cpu_native_time,
        "system_s": profile.cpu_system_time,
        "cpu_samples": profile.cpu_samples,
        "mem_samples": profile.mem_samples,
        "peak_mb": profile.peak_footprint_mb,
        "copy_mb": profile.total_copy_mb,
        "alloc_mb": profile.total_alloc_mb,
        "gpu_samples": profile.gpu_samples,
        "log_bytes": profile.sample_log_bytes,
        "crossings": profile.total_crossings,
        "crossing_overhead_s": profile.total_crossing_overhead_s,
        "bytes_to_native": profile.total_bytes_to_native,
        "bytes_to_python": profile.total_bytes_to_python,
        "lock_blocked_s": profile.total_lock_blocked_s,
        "lock_contentions": profile.total_lock_contentions,
        "lock_acquisitions": profile.total_lock_acquisitions,
    }


def assert_counters_close(left: ProfileData, right: ProfileData):
    for name, a in counters(left).items():
        b = counters(right)[name]
        assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9), (name, a, b)


@settings(max_examples=60, deadline=None)
@given(a=profiles(), b=profiles())
def test_merge_commutative(a, b):
    left = merge_profiles([a, b])
    right = merge_profiles([b, a])
    assert_counters_close(left, right)
    assert {(l.filename, l.lineno) for l in left.lines} == {
        (l.filename, l.lineno) for l in right.lines
    }
    for line in left.lines:
        other = right.line(line.lineno, line.filename)
        assert math.isclose(
            line.cpu_total_percent, other.cpu_total_percent, abs_tol=1e-6
        )
        assert math.isclose(line.mem_peak_mb, other.mem_peak_mb, abs_tol=1e-9)


@settings(max_examples=60, deadline=None)
@given(a=profiles(), b=profiles(), c=profiles())
def test_merge_associative(a, b, c):
    left = merge_profiles([merge_profiles([a, b]), c])
    right = merge_profiles([a, merge_profiles([b, c])])
    assert_counters_close(left, right)
    for line in left.lines:
        other = right.line(line.lineno, line.filename)
        assert other is not None
        assert math.isclose(
            line.cpu_total_percent, other.cpu_total_percent, abs_tol=1e-6
        )


@settings(max_examples=60, deadline=None)
@given(parts=st.lists(profiles(), min_size=2, max_size=4))
def test_merged_counters_are_sums_and_maxes(parts):
    merged = merge_profiles(parts)
    assert merged.cpu_samples == sum(p.cpu_samples for p in parts)
    assert merged.mem_samples == sum(p.mem_samples for p in parts)
    assert merged.sample_log_bytes == sum(p.sample_log_bytes for p in parts)
    assert math.isclose(
        merged.total_copy_mb, sum(p.total_copy_mb for p in parts), abs_tol=1e-9
    )
    assert math.isclose(
        merged.total_alloc_mb, sum(p.total_alloc_mb for p in parts), abs_tol=1e-9
    )
    assert merged.peak_footprint_mb == max(p.peak_footprint_mb for p in parts)
    assert merged.gpu_mem_peak_mb == max(p.gpu_mem_peak_mb for p in parts)


@settings(max_examples=60, deadline=None)
@given(parts=st.lists(profiles(), min_size=2, max_size=4))
def test_merged_crossing_counters_are_exact_sums(parts):
    """Crossing counts and byte volumes are exact integers: the merge must
    sum them without any float slack, per line and in the totals."""
    merged = merge_profiles(parts)
    assert merged.total_crossings == sum(p.total_crossings for p in parts)
    assert merged.total_bytes_to_native == sum(
        p.total_bytes_to_native for p in parts
    )
    assert merged.total_bytes_to_python == sum(
        p.total_bytes_to_python for p in parts
    )
    assert math.isclose(
        merged.total_crossing_overhead_s,
        sum(p.total_crossing_overhead_s for p in parts),
        rel_tol=1e-9,
        abs_tol=1e-9,
    )
    for line in merged.lines:
        sources = [
            p.line(line.lineno, line.filename)
            for p in parts
            if p.line(line.lineno, line.filename) is not None
        ]
        assert line.crossings == sum(l.crossings for l in sources)
        assert line.bytes_to_native == sum(l.bytes_to_native for l in sources)
        assert line.bytes_to_python == sum(l.bytes_to_python for l in sources)
        assert math.isclose(
            line.crossing_overhead_s,
            sum(l.crossing_overhead_s for l in sources),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )
        assert math.isclose(
            line.crossing_native_s,
            sum(l.crossing_native_s for l in sources),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )


@settings(max_examples=60, deadline=None)
@given(parts=st.lists(profiles(), min_size=2, max_size=4))
def test_merged_concurrency_counters_are_exact_sums(parts):
    """Lock/task/process counters (schema v5) are exact: per line, per
    edge, per task, and per process the merge must sum the additive
    columns and max the high-water marks with no tolerance beyond float
    addition order."""
    merged = merge_profiles(parts)
    assert merged.total_lock_contentions == sum(
        p.total_lock_contentions for p in parts
    )
    assert merged.total_lock_acquisitions == sum(
        p.total_lock_acquisitions for p in parts
    )
    assert math.isclose(
        merged.total_lock_blocked_s,
        sum(p.total_lock_blocked_s for p in parts),
        rel_tol=1e-9,
        abs_tol=1e-9,
    )
    for line in merged.lines:
        sources = [
            p.line(line.lineno, line.filename)
            for p in parts
            if p.line(line.lineno, line.filename) is not None
        ]
        assert line.lock_contentions == sum(l.lock_contentions for l in sources)
        assert line.lock_acquisitions == sum(l.lock_acquisitions for l in sources)
        assert math.isclose(
            line.lock_blocked_s,
            sum(l.lock_blocked_s for l in sources),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )
    for edge in merged.lock_edges:
        key = (edge.waiter, edge.holder, edge.lock)
        sources = [
            e
            for p in parts
            for e in p.lock_edges
            if (e.waiter, e.holder, e.lock) == key
        ]
        assert edge.count == sum(e.count for e in sources)
        assert math.isclose(
            edge.blocked_s,
            sum(e.blocked_s for e in sources),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )
    for task in merged.tasks:
        sources = [t for p in parts for t in p.tasks if t.name == task.name]
        assert task.switches == sum(t.switches for t in sources)
        assert math.isclose(
            task.cpu_s, sum(t.cpu_s for t in sources), rel_tol=1e-9, abs_tol=1e-9
        )
        assert math.isclose(
            task.wait_s, sum(t.wait_s for t in sources), rel_tol=1e-9, abs_tol=1e-9
        )
        # Awaiting location: first non-empty across the merge inputs.
        nonempty = [t.awaiting for t in sources if t.awaiting]
        assert task.awaiting == (nonempty[0] if nonempty else "")
    for proc in merged.processes:
        sources = [
            q
            for p in parts
            for q in p.processes
            if (q.pid, q.parent_pid) == (proc.pid, proc.parent_pid)
        ]
        assert math.isclose(
            proc.elapsed_s,
            sum(q.elapsed_s for q in sources),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )
        assert math.isclose(
            proc.cpu_s, sum(q.cpu_s for q in sources), rel_tol=1e-9, abs_tol=1e-9
        )
        assert proc.peak_mb == max(q.peak_mb for q in sources)


@settings(max_examples=60, deadline=None)
@given(a=profiles(), b=profiles())
def test_merge_concurrency_tables_commute(a, b):
    left = merge_profiles([a, b])
    right = merge_profiles([b, a])
    assert {(e.waiter, e.holder, e.lock) for e in left.lock_edges} == {
        (e.waiter, e.holder, e.lock) for e in right.lock_edges
    }
    assert {t.name for t in left.tasks} == {t.name for t in right.tasks}
    assert [(p.pid, p.parent_pid) for p in left.processes] == [
        (p.pid, p.parent_pid) for p in right.processes
    ]


@settings(max_examples=60, deadline=None)
@given(parts=st.lists(profiles(), min_size=2, max_size=4))
def test_merged_leak_likelihood_is_laplace_on_summed_counters(parts):
    merged = merge_profiles(parts)
    for leak in merged.leaks:
        key = (leak.filename, leak.lineno, leak.function)
        mallocs = sum(
            l.mallocs
            for p in parts
            for l in p.leaks
            if (l.filename, l.lineno, l.function) == key
        )
        frees = sum(
            l.frees
            for p in parts
            for l in p.leaks
            if (l.filename, l.lineno, l.function) == key
        )
        assert leak.mallocs == mallocs
        assert leak.frees == frees
        assert leak.likelihood == pytest.approx(1.0 - (frees + 1) / (mallocs + 2))
        assert leak.likelihood == pytest.approx(leak_likelihood(mallocs, frees))


def test_merge_rejects_mixed_modes():
    a = ProfileData(
        mode="cpu", elapsed=1, cpu_python_time=1, cpu_native_time=0,
        cpu_system_time=0, cpu_samples=1, mem_samples=0, peak_footprint_mb=0,
        total_copy_mb=0, gpu_mean_utilization=0, gpu_mem_peak_mb=0,
    )
    b = ProfileData(
        mode="full", elapsed=1, cpu_python_time=1, cpu_native_time=0,
        cpu_system_time=0, cpu_samples=1, mem_samples=0, peak_footprint_mb=0,
        total_copy_mb=0, gpu_mean_utilization=0, gpu_mem_peak_mb=0,
    )
    with pytest.raises(ProfilerError):
        merge_profiles([a, b])
    with pytest.raises(ProfilerError):
        merge_profiles([])


def test_merge_of_real_runs_matches_acceptance_semantics():
    """Merging real Scalene profiles sums samples/volumes and maxes peaks."""
    source = (
        "bufs = []\n"
        "for i in range(12):\n"
        "    bufs.append(py_buffer(1048576))\n"
        "total = 0\n"
        "for i in range(3000):\n"
        "    total = total + i\n"
        "print(total)\n"
    )

    def run():
        return Scalene.run(SimProcess(source, filename="merge_e2e.py"), mode="full")

    parts = [run(), run(), run()]
    merged = merge_profiles(parts)
    assert merged.cpu_samples == sum(p.cpu_samples for p in parts)
    assert merged.total_alloc_mb == pytest.approx(
        sum(p.total_alloc_mb for p in parts)
    )
    assert merged.total_copy_mb == pytest.approx(
        sum(p.total_copy_mb for p in parts)
    )
    assert merged.peak_footprint_mb == max(p.peak_footprint_mb for p in parts)
    assert merged.elapsed == pytest.approx(sum(p.elapsed for p in parts))
    # Line percentages recombine sample-weighted: identical runs keep them.
    for line in parts[0].lines:
        merged_line = merged.line(line.lineno, line.filename)
        assert merged_line is not None
        assert merged_line.cpu_total_percent == pytest.approx(
            line.cpu_total_percent, abs=1e-6
        )
