"""Tests for the mini-language compiler and disassembler."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CompileError
from repro.interp import opcodes as op
from repro.interp.astcompile import compile_source
from repro.interp.code import CodeObject
from repro.interp.disassembler import build_call_opcode_map, disassemble, iter_code_objects


def test_compiles_module_with_function():
    code = compile_source("def f(x):\n    return x + 1\ny = 7\n")
    names = [i.opcode for i in code.instructions]
    assert op.MAKE_FUNCTION in names
    assert op.STORE_NAME in names


def test_line_numbers_are_attached():
    code = compile_source("a = 1\nb = 2\n")
    lines = {i.lineno for i in code.instructions if i.opcode == op.STORE_NAME}
    assert lines == {1, 2}


def test_call_opcode_for_function_call():
    code = compile_source("f(1, 2)\n")
    calls = [i for i in code.instructions if i.opcode == op.CALL]
    assert len(calls) == 1
    assert calls[0].arg == (2, ())


def test_method_call_uses_call_method():
    code = compile_source("xs.append(1)\n")
    assert any(i.opcode == op.CALL_METHOD for i in code.instructions)
    assert any(i.opcode == op.LOAD_METHOD and i.arg == "append" for i in code.instructions)


def test_keyword_arguments():
    code = compile_source("f(1, key=2)\n")
    call = next(i for i in code.instructions if i.opcode == op.CALL)
    assert call.arg == (1, ("key",))


def test_loop_compilation_has_jump_back():
    code = compile_source("for i in range(3):\n    x = i\n")
    assert any(i.opcode == op.FOR_ITER for i in code.instructions)
    assert any(i.opcode == op.GET_ITER for i in code.instructions)


def test_while_break_continue():
    source = (
        "i = 0\n"
        "while True:\n"
        "    i = i + 1\n"
        "    if i > 3:\n"
        "        break\n"
        "    continue\n"
    )
    code = compile_source(source)
    jumps = [i for i in code.instructions if i.opcode == op.JUMP]
    assert jumps  # break and continue compile to jumps
    for instr in code.instructions:
        if instr.opcode in (op.JUMP, op.POP_JUMP_IF_FALSE, op.POP_JUMP_IF_TRUE):
            assert 0 <= instr.arg <= len(code.instructions)


def test_global_declaration_collected():
    code = compile_source("def f():\n    global g\n    g = 1\n")
    fn_code = next(c for c in code.constants if isinstance(c, CodeObject))
    assert fn_code.global_names == ("g",)


def test_slice_compilation():
    code = compile_source("y = xs[1:5]\n")
    assert any(i.opcode == op.BUILD_SLICE for i in code.instructions)


def test_unsupported_constructs_raise():
    for bad in [
        "import os\n",
        "class C:\n    pass\n",
        "x = [i for xs in y for i in xs]\n",  # multi-generator
        "a = b = 1\n",
        "def f(*args):\n    pass\n",
        "def f(x=1):\n    pass\n",
        "a < b < c\n",
        "f(*xs)\n",
        "try:\n    pass\nexcept Exception:\n    pass\n",
    ]:
        with pytest.raises(CompileError):
            compile_source(bad)


def test_syntax_error_becomes_compile_error():
    with pytest.raises(CompileError):
        compile_source("def f(:\n")


def test_break_outside_loop_rejected():
    with pytest.raises(CompileError):
        compile_source("break\n")


def test_return_outside_function_rejected():
    with pytest.raises(CompileError):
        compile_source("return 1\n")


def test_docstrings_are_skipped():
    code = compile_source('"""module doc"""\nx = 1\n')
    consts = [c for c in code.constants if c == "module doc"]
    assert not consts


def test_const_pool_interning():
    code = compile_source("a = 5\nb = 5\nc = 5.0\n")
    # int 5 interned once; 5.0 is distinct (type-sensitive interning).
    fives = [c for c in code.constants if isinstance(c, int) and c == 5 and not isinstance(c, bool)]
    floats = [c for c in code.constants if isinstance(c, float)]
    assert len(fives) == 1
    assert len(floats) == 1


# -- disassembler ---------------------------------------------------------------


def test_disassemble_renders_listing():
    code = compile_source("x = 1\nf(x)\n")
    listing = disassemble(code)
    assert "LOAD_CONST" in listing
    assert "CALL" in listing


def test_call_opcode_map_covers_nested_functions():
    source = "def f():\n    g()\n\nf()\n"
    code = compile_source(source)
    call_map = build_call_opcode_map(code)
    assert len(call_map) == 2  # module + f
    for code_object in iter_code_objects(code):
        expected = {
            i for i, ins in enumerate(code_object.instructions) if ins.opcode in op.CALL_OPCODES
        }
        assert call_map[id(code_object)] == expected


@given(st.integers(min_value=-1000, max_value=1000), st.integers(min_value=-1000, max_value=1000))
def test_arithmetic_matches_host_python(a, b):
    """Property: compiled arithmetic agrees with host Python."""
    from repro.runtime.process import SimProcess

    source = f"r = ({a} + {b}) * 3 - {a} // 7 + {b} % 5\n"
    process = SimProcess(source, filename="prop.py")
    # Hold onto the result before finalization clears globals.
    result = {}
    original = process._finalize

    def capture():
        result["r"] = process.globals.get("r")
        original()

    process._finalize = capture
    process.run()
    assert result["r"] == (a + b) * 3 - a // 7 + b % 5
