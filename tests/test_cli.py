"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.__main__ import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fannkuch" in out
    assert "cProfile" in out
    assert "scalene" in out


def test_profile_named_workload(capsys):
    assert main(["profile", "--workload", "raytrace", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Scalene profile [full]" in out


def test_profile_with_baseline(capsys):
    code = main(
        [
            "profile",
            "--workload",
            "docutils",
            "--scale",
            "0.05",
            "--profiler",
            "cProfile",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "cProfile" in out
    assert "parse_section" in out


def test_profile_source_file(tmp_path, capsys):
    source = tmp_path / "prog.py"
    source.write_text("x = 0\nfor i in range(200):\n    x = x + i\nprint(x)\n")
    json_path = tmp_path / "p.json"
    html_path = tmp_path / "p.html"
    code = main(
        [
            "profile",
            str(source),
            "--mode",
            "cpu",
            "--json",
            str(json_path),
            "--html",
            str(html_path),
        ]
    )
    assert code == 0
    data = json.loads(json_path.read_text())
    assert data["mode"] == "cpu"
    assert html_path.read_text().startswith("<!DOCTYPE html>")


def test_profile_requires_target():
    with pytest.raises(SystemExit):
        main(["profile"])


def test_profile_rejects_bad_mode(tmp_path):
    source = tmp_path / "p.py"
    source.write_text("x = 1\n")
    with pytest.raises(SystemExit):
        main(["profile", str(source), "--mode", "warp"])


def test_crossflow_command(tmp_path, capsys):
    json_path = tmp_path / "crossflow.json"
    code = main(
        [
            "crossflow",
            "--workload",
            "chatty",
            "--scale",
            "0.25",
            "--json",
            str(json_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Native boundary" in out
    assert "Cross-flow findings" in out
    payload = json.loads(json_path.read_text())
    detectors = {entry["detector"] for entry in payload}
    assert "chatty-native-loop" in detectors
    assert all(entry["crossings"] >= 0 for entry in payload)


def test_crossflow_clean_workload(capsys):
    assert main(["crossflow", "--workload", "batched", "--scale", "0.25"]) == 0
    out = capsys.readouterr().out
    assert "no cross-flow findings" in out
