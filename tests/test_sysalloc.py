"""Tests for the simulated system allocator (mapped vs. resident memory)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import HeapError
from repro.memory.sysalloc import SystemAllocator
from repro.units import MiB, PAGE_SIZE


def test_malloc_returns_unique_addresses():
    alloc = SystemAllocator()
    a = alloc.malloc(100)
    b = alloc.malloc(100)
    assert a.address != b.address


def test_untouched_allocation_adds_no_rss():
    alloc = SystemAllocator(base_rss_bytes=0)
    alloc.malloc(512 * MiB, touch=False)
    assert alloc.rss_bytes() == 0
    assert alloc.mapped_bytes() == 512 * MiB


def test_touch_adds_page_granular_rss():
    alloc = SystemAllocator(base_rss_bytes=0)
    a = alloc.malloc(10 * PAGE_SIZE)
    alloc.touch(a, 1)  # touching one byte makes one page resident
    assert alloc.rss_bytes() == PAGE_SIZE
    alloc.touch(a, 5 * PAGE_SIZE)
    assert alloc.rss_bytes() == 5 * PAGE_SIZE


def test_touch_is_monotone():
    alloc = SystemAllocator(base_rss_bytes=0)
    a = alloc.malloc(4 * PAGE_SIZE)
    alloc.touch(a, 2 * PAGE_SIZE)
    alloc.touch(a, PAGE_SIZE)  # re-touching fewer bytes changes nothing
    assert alloc.rss_bytes() == 2 * PAGE_SIZE


def test_touch_clamps_to_allocation_size():
    alloc = SystemAllocator(base_rss_bytes=0)
    a = alloc.malloc(100)
    alloc.touch(a, 10_000)
    assert a.touched_bytes == 100


def test_free_returns_rss_and_mapped():
    alloc = SystemAllocator(base_rss_bytes=0)
    a = alloc.malloc(1 * MiB, touch=True)
    assert alloc.rss_bytes() > 0
    alloc.free(a)
    assert alloc.rss_bytes() == 0
    assert alloc.mapped_bytes() == 0


def test_double_free_raises():
    alloc = SystemAllocator()
    a = alloc.malloc(64)
    alloc.free(a)
    with pytest.raises(HeapError):
        alloc.free(a)


def test_touch_after_free_raises():
    alloc = SystemAllocator()
    a = alloc.malloc(64)
    alloc.free(a)
    with pytest.raises(HeapError):
        alloc.touch(a)


def test_negative_malloc_raises():
    alloc = SystemAllocator()
    with pytest.raises(HeapError):
        alloc.malloc(-1)


def test_lookup_and_is_live():
    alloc = SystemAllocator()
    a = alloc.malloc(64)
    assert alloc.is_live(a.address)
    assert alloc.lookup(a.address) is a
    alloc.free(a)
    assert not alloc.is_live(a.address)
    with pytest.raises(HeapError):
        alloc.lookup(a.address)


def test_peak_mapped_tracks_high_water():
    alloc = SystemAllocator()
    a = alloc.malloc(10 * MiB)
    b = alloc.malloc(20 * MiB)
    alloc.free(a)
    alloc.free(b)
    assert alloc.peak_mapped_bytes == 30 * MiB
    assert alloc.mapped_bytes() == 0


def test_base_rss_floor():
    alloc = SystemAllocator(base_rss_bytes=24 * MiB)
    assert alloc.rss_bytes() == 24 * MiB


@given(st.lists(st.integers(min_value=0, max_value=10 * MiB), min_size=1, max_size=50))
def test_mapped_bytes_invariant(sizes):
    """mapped == sum(live sizes); freeing everything returns to zero."""
    alloc = SystemAllocator(base_rss_bytes=0)
    live = [alloc.malloc(n, touch=True) for n in sizes]
    assert alloc.mapped_bytes() == sum(sizes)
    # RSS is page-rounded and therefore >= mapped for touched regions.
    assert alloc.rss_bytes() >= alloc.mapped_bytes()
    for a in live:
        alloc.free(a)
    assert alloc.mapped_bytes() == 0
    assert alloc.rss_bytes() == 0
    assert alloc.live_count == 0
