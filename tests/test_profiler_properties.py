"""Property-based tests of profiler invariants against the ground truth.

Three families of invariants, each driven by randomized schedules:

* **CPU shares.** For every line the ground truth records, the Python,
  native, and system components must account for the line's total time
  exactly — their normalized shares sum to 1 within float tolerance —
  and the per-line components must roll up to the process totals.
* **Footprint.** Under any interleaving of allocations and frees of live
  handles, the logical footprint is never negative and never exceeds the
  recorded peak.
* **Leak scores.** The Laplace leak likelihood is monotone: more
  unreclaimed allocations ⇒ a higher score, more reclaims ⇒ a lower one;
  and any schedule fed through the LeakDetector yields internally
  consistent (mallocs, frees) counters.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.config import ScaleneConfig
from repro.core.leak_detector import LeakDetector, leak_likelihood
from repro.runtime.clock import VirtualClock
from repro.runtime.ground_truth import GroundTruth
from repro.runtime.memsys import MemSubsystem


class FakeFrame:
    def __init__(self, filename="gt.py", lineno=1, name="fn"):
        self._loc = (filename, lineno, name)
        self.back = None

    def location(self):
        return self._loc


class FakeThread:
    def __init__(self, frame=None):
        self.frame = frame or FakeFrame()
        self.ident = 1
        self.is_main = True


# ---------------------------------------------------------------------------
# CPU shares
# ---------------------------------------------------------------------------

time_events = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=5),  # lineno
        st.sampled_from(["python", "native", "system"]),
        st.floats(min_value=1e-6, max_value=0.5, allow_nan=False),
    ),
    min_size=1,
    max_size=120,
)


def record_schedule(events):
    gt = GroundTruth()
    thread = FakeThread()
    for lineno, kind, seconds in events:
        thread.frame = FakeFrame(lineno=lineno)
        if kind == "python":
            gt.record_python_time(thread, seconds)
        elif kind == "native":
            gt.record_native_time(thread, seconds)
        else:
            gt.record_system_time(thread, seconds)
    return gt


@settings(max_examples=80, deadline=None)
@given(time_events)
def test_cpu_shares_sum_to_one_per_line(events):
    gt = record_schedule(events)
    for key, line in gt.lines.items():
        total = line.total_time
        assert total > 0
        shares = (
            line.python_time / total,
            line.native_time / total,
            line.system_time / total,
        )
        assert all(0.0 <= s <= 1.0 + 1e-9 for s in shares), (key, shares)
        assert abs(sum(shares) - 1.0) < 1e-9, (key, shares)


@settings(max_examples=80, deadline=None)
@given(time_events)
def test_per_line_times_roll_up_to_totals(events):
    gt = record_schedule(events)
    tol = 1e-9
    assert abs(sum(l.python_time for l in gt.lines.values()) - gt.total_python_time) < tol
    assert abs(sum(l.native_time for l in gt.lines.values()) - gt.total_native_time) < tol
    assert abs(sum(l.system_time for l in gt.lines.values()) - gt.total_system_time) < tol


# ---------------------------------------------------------------------------
# Footprint
# ---------------------------------------------------------------------------

# A schedule is a list of (action, size) where action "alloc" allocates
# `size` bytes and "free" releases the oldest (or newest) live handle.
footprint_schedules = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "free_oldest", "free_newest"]),
        st.integers(min_value=1, max_value=600_000),
        st.sampled_from(["python", "native"]),
    ),
    max_size=150,
)


@settings(max_examples=60, deadline=None)
@given(footprint_schedules)
def test_footprint_never_negative_and_bounded_by_peak(schedule):
    mem = MemSubsystem(VirtualClock(), ground_truth=GroundTruth())
    thread = FakeThread()
    live = []  # (domain, handle)
    for action, size, domain in schedule:
        if action == "alloc":
            if domain == "python":
                live.append(("python", mem.py_alloc(size, thread)))
            else:
                live.append(("native", mem.native_alloc(size, thread)))
        elif live:
            index = 0 if action == "free_oldest" else -1
            dom, handle = live.pop(index)
            if dom == "python":
                mem.py_free(handle, thread)
            else:
                mem.native_free(handle, thread)
        footprint = mem.logical_footprint()
        assert footprint >= 0
        assert footprint <= mem.peak_footprint
    # Draining everything returns the footprint to zero exactly.
    for dom, handle in live:
        if dom == "python":
            mem.py_free(handle, thread)
        else:
            mem.native_free(handle, thread)
    assert mem.logical_footprint() == 0


@settings(max_examples=60, deadline=None)
@given(footprint_schedules)
def test_ground_truth_net_bytes_match_footprint(schedule):
    """The oracle's per-line net bytes equal the live footprint."""
    gt = GroundTruth()
    mem = MemSubsystem(VirtualClock(), ground_truth=gt)
    thread = FakeThread()
    live = []
    for action, size, domain in schedule:
        if action == "alloc":
            if domain == "python":
                live.append(("python", mem.py_alloc(size, thread)))
            else:
                live.append(("native", mem.native_alloc(size, thread)))
        elif live:
            index = 0 if action == "free_oldest" else -1
            dom, handle = live.pop(index)
            if dom == "python":
                mem.py_free(handle, thread)
            else:
                mem.native_free(handle, thread)
    net = sum(line.net_bytes for line in gt.lines.values())
    assert net == mem.logical_footprint()


# ---------------------------------------------------------------------------
# Leak scores
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
)
def test_leak_likelihood_monotone_in_reclaim_velocity(mallocs, frees):
    frees = min(frees, mallocs)
    score = leak_likelihood(mallocs, frees)
    assert 0.0 <= score < 1.0
    # One more reclaim (free) never raises the score.
    if frees < mallocs:
        assert leak_likelihood(mallocs, frees + 1) <= score
    # One more unreclaimed allocation never lowers it.
    assert leak_likelihood(mallocs + 1, frees) >= score


leak_schedules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),  # site index (lineno)
        st.integers(min_value=1, max_value=100),  # growth per sample
        st.booleans(),  # whether the tracked object gets freed
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(leak_schedules)
def test_leak_detector_counters_consistent(schedule):
    detector = LeakDetector(ScaleneConfig())
    footprint = 0
    address = 0
    for lineno, growth, freed in schedule:
        footprint += growth  # strictly growing: every sample is high-water
        address += 1
        detector.on_growth_sample(
            footprint=footprint,
            address=address,
            nbytes=growth,
            location=("leak.py", lineno, "fn"),
            wall=float(address),
        )
        if freed:
            detector.on_free(address)
    detector.finalize()
    for lineno in range(8):
        mallocs, frees = detector.site_score(("leak.py", lineno, "fn"))
        assert 0 <= frees <= mallocs
        if mallocs:
            score = leak_likelihood(mallocs, frees)
            assert 0.0 <= score < 1.0


@settings(max_examples=40, deadline=None)
@given(leak_schedules)
def test_leak_detector_all_freed_scores_low(schedule):
    """If every tracked object is reclaimed, no site can look leakier
    than the same history with nothing reclaimed."""
    def run(force_freed):
        detector = LeakDetector(ScaleneConfig())
        footprint = 0
        address = 0
        for lineno, growth, _ in schedule:
            footprint += growth
            address += 1
            detector.on_growth_sample(
                footprint=footprint,
                address=address,
                nbytes=growth,
                location=("leak.py", lineno, "fn"),
                wall=float(address),
            )
            if force_freed:
                detector.on_free(address)
        detector.finalize()
        return detector

    freed = run(True)
    leaked = run(False)
    for lineno in range(8):
        loc = ("leak.py", lineno, "fn")
        m_f, f_f = freed.site_score(loc)
        m_l, f_l = leaked.site_score(loc)
        assert m_f == m_l
        if m_f:
            assert leak_likelihood(m_f, f_f) <= leak_likelihood(m_l, f_l)
