"""Each §7 anti-pattern detector fires on its planted shape and stays
quiet on the repaired version."""

from repro.staticcheck import DETECTORS, lint_source


def _detectors(findings):
    return {f.detector for f in findings}


# -- detector 1: chained DataFrame indexing ----------------------------------


def test_chained_indexing_detected():
    source = (
        "df = pd.frame(100)\n"
        "total = 0.0\n"
        "for i in range(100):\n"
        "    total = total + df['c0'][i]\n"
        "print(total)\n"
    )
    findings = lint_source(source, "chained.py")
    assert "chained-df-indexing" in _detectors(findings)
    hit = next(f for f in findings if f.detector == "chained-df-indexing")
    assert hit.lineno == 4
    assert "df" in hit.message


def test_hoisted_column_view_is_clean():
    source = (
        "df = pd.frame(100)\n"
        "col = df.column_view('c0')\n"
        "total = 0.0\n"
        "for i in range(100):\n"
        "    total = total + col[i]\n"
        "print(total)\n"
    )
    assert "chained-df-indexing" not in _detectors(lint_source(source, "clean.py"))


def test_chained_indexing_outside_loop_not_flagged():
    source = "df = pd.frame(10)\nv = df['c0'][3]\nprint(v)\n"
    assert "chained-df-indexing" not in _detectors(lint_source(source, "once.py"))


# -- detector 2: concat growth in loops --------------------------------------


def test_concat_in_loop_detected():
    source = (
        "acc = pd.frame(1)\n"
        "for i in range(50):\n"
        "    chunk = pd.frame(10)\n"
        "    acc = pd.concat(acc, chunk)\n"
        "print(len(acc))\n"
    )
    findings = lint_source(source, "concat.py")
    assert "concat-growth-in-loop" in _detectors(findings)
    hit = next(f for f in findings if f.detector == "concat-growth-in-loop")
    assert hit.lineno == 4


def test_list_reconcat_detected():
    source = (
        "out = []\n"
        "for i in range(100):\n"
        "    out = out + [i]\n"
        "print(len(out))\n"
    )
    findings = lint_source(source, "grow.py")
    assert "concat-growth-in-loop" in _detectors(findings)


def test_append_accumulation_is_clean():
    source = (
        "out = []\n"
        "for i in range(100):\n"
        "    out.append(i)\n"
        "print(len(out))\n"
    )
    assert "concat-growth-in-loop" not in _detectors(lint_source(source, "ok.py"))


def test_concat_after_loop_is_clean():
    source = (
        "pieces = []\n"
        "for i in range(10):\n"
        "    pieces.append(pd.frame(5))\n"
        "merged = pd.concat(pieces)\n"
        "print(len(merged))\n"
    )
    assert "concat-growth-in-loop" not in _detectors(lint_source(source, "ok2.py"))


# -- detector 3: scalar element loops over arrays ----------------------------


def test_scalar_loop_detected():
    source = (
        "n = 500\n"
        "a = np.arange(n)\n"
        "b = np.zeros(n)\n"
        "for i in range(n):\n"
        "    b[i] = a[i] * 2.0\n"
        "print(b.sum())\n"
    )
    findings = lint_source(source, "scalar.py")
    assert "scalar-loop-vectorize" in _detectors(findings)
    hit = next(f for f in findings if f.detector == "scalar-loop-vectorize")
    assert hit.lineno == 5


def test_vectorized_version_is_clean():
    source = (
        "n = 500\n"
        "a = np.arange(n)\n"
        "b = a * 2.0\n"
        "print(b.sum())\n"
    )
    assert "scalar-loop-vectorize" not in _detectors(lint_source(source, "vec.py"))


# -- detector 4: loop-invariant work -----------------------------------------


def test_invariant_allocation_detected():
    source = (
        "n = 64\n"
        "total = 0.0\n"
        "for i in range(20):\n"
        "    scratch = np.zeros(n)\n"
        "    total = total + scratch.sum()\n"
        "print(total)\n"
    )
    findings = lint_source(source, "hoist.py")
    assert "loop-invariant-hoist" in _detectors(findings)
    hit = next(f for f in findings if f.detector == "loop-invariant-hoist")
    assert hit.lineno == 4
    assert "zeros" in hit.message


def test_variant_allocation_is_clean():
    source = (
        "total = 0.0\n"
        "for i in range(20):\n"
        "    scratch = np.zeros(i + 1)\n"
        "    total = total + scratch.sum()\n"
        "print(total)\n"
    )
    findings = lint_source(source, "varies.py")
    assert not any(
        f.detector == "loop-invariant-hoist" and "zeros" in f.message
        for f in findings
    )


# -- detector 5: GIL-serialized thread workers -------------------------------


def test_cpu_bound_thread_workers_detected():
    source = (
        "def worker():\n"
        "    s = 0\n"
        "    for i in range(5000):\n"
        "        s = s + 1\n"
        "t1 = spawn(worker)\n"
        "t2 = spawn(worker)\n"
        "join(t1)\n"
        "join(t2)\n"
    )
    findings = lint_source(source, "threads.py")
    assert "gil-serialized-threads" in _detectors(findings)
    hit = next(f for f in findings if f.detector == "gil-serialized-threads")
    assert "worker" in hit.message


def test_io_bound_thread_workers_are_clean():
    source = (
        "def worker():\n"
        "    for i in range(10):\n"
        "        sleep(0.01)\n"
        "t = spawn(worker)\n"
        "join(t)\n"
    )
    assert "gil-serialized-threads" not in _detectors(lint_source(source, "io.py"))


# -- driver behaviour --------------------------------------------------------


def test_all_detectors_exist():
    assert len(DETECTORS) == 5


def test_findings_sorted_and_deduped():
    source = (
        "df = pd.frame(100)\n"
        "out = []\n"
        "total = 0.0\n"
        "for i in range(100):\n"
        "    total = total + df['c0'][i]\n"
        "    out = out + [i]\n"
        "print(total)\n"
    )
    findings = lint_source(source, "multi.py")
    linenos = [f.lineno for f in findings]
    assert linenos == sorted(linenos)
    keys = [(f.detector, f.lineno, f.message) for f in findings]
    assert len(keys) == len(set(keys))


def test_clean_program_has_no_findings():
    source = (
        "n = 100\n"
        "a = np.arange(n)\n"
        "b = a * 2.0\n"
        "print(b.sum())\n"
    )
    assert lint_source(source, "clean.py") == []
