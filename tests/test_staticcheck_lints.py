"""Each §7 anti-pattern detector fires on its planted shape and stays
quiet on the repaired version."""

from repro.staticcheck import DETECTORS, lint_source


def _detectors(findings):
    return {f.detector for f in findings}


# -- detector 1: chained DataFrame indexing ----------------------------------


def test_chained_indexing_detected():
    source = (
        "df = pd.frame(100)\n"
        "total = 0.0\n"
        "for i in range(100):\n"
        "    total = total + df['c0'][i]\n"
        "print(total)\n"
    )
    findings = lint_source(source, "chained.py")
    assert "chained-df-indexing" in _detectors(findings)
    hit = next(f for f in findings if f.detector == "chained-df-indexing")
    assert hit.lineno == 4
    assert "df" in hit.message


def test_hoisted_column_view_is_clean():
    source = (
        "df = pd.frame(100)\n"
        "col = df.column_view('c0')\n"
        "total = 0.0\n"
        "for i in range(100):\n"
        "    total = total + col[i]\n"
        "print(total)\n"
    )
    assert "chained-df-indexing" not in _detectors(lint_source(source, "clean.py"))


def test_chained_indexing_outside_loop_not_flagged():
    source = "df = pd.frame(10)\nv = df['c0'][3]\nprint(v)\n"
    assert "chained-df-indexing" not in _detectors(lint_source(source, "once.py"))


# -- detector 2: concat growth in loops --------------------------------------


def test_concat_in_loop_detected():
    source = (
        "acc = pd.frame(1)\n"
        "for i in range(50):\n"
        "    chunk = pd.frame(10)\n"
        "    acc = pd.concat(acc, chunk)\n"
        "print(len(acc))\n"
    )
    findings = lint_source(source, "concat.py")
    assert "concat-growth-in-loop" in _detectors(findings)
    hit = next(f for f in findings if f.detector == "concat-growth-in-loop")
    assert hit.lineno == 4


def test_list_reconcat_detected():
    source = (
        "out = []\n"
        "for i in range(100):\n"
        "    out = out + [i]\n"
        "print(len(out))\n"
    )
    findings = lint_source(source, "grow.py")
    assert "concat-growth-in-loop" in _detectors(findings)


def test_append_accumulation_is_clean():
    source = (
        "out = []\n"
        "for i in range(100):\n"
        "    out.append(i)\n"
        "print(len(out))\n"
    )
    assert "concat-growth-in-loop" not in _detectors(lint_source(source, "ok.py"))


def test_concat_after_loop_is_clean():
    source = (
        "pieces = []\n"
        "for i in range(10):\n"
        "    pieces.append(pd.frame(5))\n"
        "merged = pd.concat(pieces)\n"
        "print(len(merged))\n"
    )
    assert "concat-growth-in-loop" not in _detectors(lint_source(source, "ok2.py"))


# -- detector 3: scalar element loops over arrays ----------------------------


def test_scalar_loop_detected():
    source = (
        "n = 500\n"
        "a = np.arange(n)\n"
        "b = np.zeros(n)\n"
        "for i in range(n):\n"
        "    b[i] = a[i] * 2.0\n"
        "print(b.sum())\n"
    )
    findings = lint_source(source, "scalar.py")
    assert "scalar-loop-vectorize" in _detectors(findings)
    hit = next(f for f in findings if f.detector == "scalar-loop-vectorize")
    assert hit.lineno == 5


def test_vectorized_version_is_clean():
    source = (
        "n = 500\n"
        "a = np.arange(n)\n"
        "b = a * 2.0\n"
        "print(b.sum())\n"
    )
    assert "scalar-loop-vectorize" not in _detectors(lint_source(source, "vec.py"))


# -- detector 4: loop-invariant work -----------------------------------------


def test_invariant_allocation_detected():
    source = (
        "n = 64\n"
        "total = 0.0\n"
        "for i in range(20):\n"
        "    scratch = np.zeros(n)\n"
        "    total = total + scratch.sum()\n"
        "print(total)\n"
    )
    findings = lint_source(source, "hoist.py")
    assert "loop-invariant-hoist" in _detectors(findings)
    hit = next(f for f in findings if f.detector == "loop-invariant-hoist")
    assert hit.lineno == 4
    assert "zeros" in hit.message


def test_variant_allocation_is_clean():
    source = (
        "total = 0.0\n"
        "for i in range(20):\n"
        "    scratch = np.zeros(i + 1)\n"
        "    total = total + scratch.sum()\n"
        "print(total)\n"
    )
    findings = lint_source(source, "varies.py")
    assert not any(
        f.detector == "loop-invariant-hoist" and "zeros" in f.message
        for f in findings
    )


# -- detector 5: GIL-serialized thread workers -------------------------------


def test_cpu_bound_thread_workers_detected():
    source = (
        "def worker():\n"
        "    s = 0\n"
        "    for i in range(5000):\n"
        "        s = s + 1\n"
        "t1 = spawn(worker)\n"
        "t2 = spawn(worker)\n"
        "join(t1)\n"
        "join(t2)\n"
    )
    findings = lint_source(source, "threads.py")
    assert "gil-serialized-threads" in _detectors(findings)
    hit = next(f for f in findings if f.detector == "gil-serialized-threads")
    assert "worker" in hit.message


def test_io_bound_thread_workers_are_clean():
    source = (
        "def worker():\n"
        "    for i in range(10):\n"
        "        sleep(0.01)\n"
        "t = spawn(worker)\n"
        "join(t)\n"
    )
    assert "gil-serialized-threads" not in _detectors(lint_source(source, "io.py"))


# -- driver behaviour --------------------------------------------------------


def test_all_detectors_exist():
    assert len(DETECTORS) == 8


def test_findings_sorted_and_deduped():
    source = (
        "df = pd.frame(100)\n"
        "out = []\n"
        "total = 0.0\n"
        "for i in range(100):\n"
        "    total = total + df['c0'][i]\n"
        "    out = out + [i]\n"
        "print(total)\n"
    )
    findings = lint_source(source, "multi.py")
    linenos = [f.lineno for f in findings]
    assert linenos == sorted(linenos)
    keys = [(f.detector, f.lineno, f.message) for f in findings]
    assert len(keys) == len(set(keys))


def test_clean_program_has_no_findings():
    source = (
        "n = 100\n"
        "a = np.arange(n)\n"
        "b = a * 2.0\n"
        "print(b.sum())\n"
    )
    assert lint_source(source, "clean.py") == []


# -- detector 6: chatty native loop ------------------------------------------


def test_chatty_native_loop_detected():
    source = (
        "n = 100\n"
        "src = np.arange(n)\n"
        "dst = np.zeros(n)\n"
        "for i in range(n):\n"
        "    v = np.get(src, i)\n"
        "    np.put(dst, i, v * 2.0)\n"
        "print(dst.sum())\n"
    )
    findings = lint_source(source, "chatty.py")
    hits = [f for f in findings if f.detector == "chatty-native-loop"]
    assert {f.lineno for f in hits} == {5, 6}
    assert "vectorized" in hits[0].suggestion


def test_chatty_native_loop_through_helper():
    source = (
        "def step(a, b, i):\n"
        "    v = np.get(a, i)\n"
        "    np.put(b, i, v)\n"
        "x = np.arange(50)\n"
        "y = np.zeros(50)\n"
        "for i in range(50):\n"
        "    step(x, y, i)\n"
        "print(y.sum())\n"
    )
    findings = lint_source(source, "inter.py")
    hits = [f for f in findings if f.detector == "chatty-native-loop"]
    assert len(hits) == 1
    assert hits[0].lineno == 7  # the loop's call site, not the helper body
    assert "step" in hits[0].message


def test_vectorized_rewrite_is_clean():
    source = (
        "n = 100\n"
        "src = np.arange(n)\n"
        "dst = src * 2.0\n"
        "print(dst.sum())\n"
    )
    assert "chatty-native-loop" not in _detectors(lint_source(source, "batched.py"))


def test_element_call_outside_loop_not_chatty():
    source = (
        "a = np.arange(10)\n"
        "v = np.get(a, 3)\n"
        "print(v)\n"
    )
    assert "chatty-native-loop" not in _detectors(lint_source(source, "once.py"))


# -- detector 7: redundant native round-trip ---------------------------------


def test_roundtrip_conversion_detected():
    source = (
        "a = np.arange(100)\n"
        "l = a.tolist()\n"
        "b = np.asarray(l)\n"
        "print(b.sum())\n"
    )
    findings = lint_source(source, "roundtrip.py")
    hits = [f for f in findings if f.detector == "native-roundtrip-conversion"]
    assert len(hits) == 1
    assert hits[0].lineno == 3


def test_inline_roundtrip_detected():
    source = (
        "a = np.arange(100)\n"
        "b = np.asarray(a.tolist())\n"
        "print(b.sum())\n"
    )
    findings = lint_source(source, "inline.py")
    assert "native-roundtrip-conversion" in _detectors(findings)


def test_asarray_from_python_list_is_clean():
    source = (
        "items = []\n"
        "for i in range(10):\n"
        "    items.append(i * 2)\n"
        "a = np.asarray(items)\n"
        "print(a.sum())\n"
    )
    assert "native-roundtrip-conversion" not in _detectors(
        lint_source(source, "fresh.py")
    )


# -- detector 8: tiny-argument crossings -------------------------------------


def test_tiny_crossing_detected():
    source = (
        "total = 0.0\n"
        "for i in range(100):\n"
        "    a = np.frombuffer(i)\n"
        "    total = total + a.sum()\n"
        "print(total)\n"
    )
    findings = lint_source(source, "tiny.py")
    hits = [f for f in findings if f.detector == "tiny-crossing-overhead"]
    assert len(hits) == 1
    assert hits[0].lineno == 3


def test_bulk_payload_crossing_not_tiny():
    source = (
        "a = np.arange(100)\n"
        "b = np.arange(100)\n"
        "total = 0.0\n"
        "for i in range(10):\n"
        "    total = total + np.dot(a, b)\n"
        "print(total)\n"
    )
    assert "tiny-crossing-overhead" not in _detectors(lint_source(source, "bulk.py"))


def test_batched_equivalent_site_reports_chatty_not_tiny():
    source = (
        "a = np.arange(100)\n"
        "for i in range(100):\n"
        "    v = np.get(a, i)\n"
        "print(v)\n"
    )
    detectors = _detectors(lint_source(source, "get.py"))
    assert "chatty-native-loop" in detectors
    assert "tiny-crossing-overhead" not in detectors


# -- satellite: scalar loop recognizes module-attribute native calls ---------


def test_scalar_loop_via_native_module_call():
    source = (
        "a = np.arange(100)\n"
        "b = np.zeros(100)\n"
        "c = np.zeros(100)\n"
        "for i in range(100):\n"
        "    c[i] = np.add(a[i], b[i])\n"
        "print(c.sum())\n"
    )
    findings = lint_source(source, "npadd.py")
    hits = [f for f in findings if f.detector == "scalar-loop-vectorize"]
    assert any(f.lineno == 5 for f in hits)
