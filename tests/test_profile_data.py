"""Tests for profile assembly: filtering, function aggregation, rendering."""

import pytest

from repro.core.config import ScaleneConfig
from repro.core.filtering import significant_lines
from repro.core.profile_data import build_profile
from repro.core.stats import LineStats, ScaleneStats


def make_stats(num_lines: int, hot_lines=(5,)) -> ScaleneStats:
    stats = ScaleneStats()
    stats.start_wall = 0.0
    stats.stop_wall = 10.0
    for lineno in range(1, num_lines + 1):
        line = stats.line("app.py", lineno, f"fn{lineno % 3}")
        if lineno in hot_lines:
            line.python_time = 5.0
            stats.total_python_time += 5.0
        else:
            line.python_time = 0.001
            stats.total_python_time += 0.001
    return stats


def test_significant_lines_keeps_hot_plus_neighbours():
    stats = make_stats(50, hot_lines=(25,))
    keys = significant_lines(stats.lines, stats.total_cpu_time, 0.0)
    linenos = [lineno for _f, lineno in keys]
    assert 25 in linenos
    assert 24 in linenos and 26 in linenos
    assert 10 not in linenos  # a cold line far from the hot one


def test_significant_lines_min_line_is_one():
    stats = make_stats(3, hot_lines=(1,))
    keys = significant_lines(stats.lines, stats.total_cpu_time, 0.0)
    assert all(lineno >= 1 for _f, lineno in keys)


def test_300_line_guarantee():
    """§5: a profile never contains more than 300 lines."""
    stats = ScaleneStats()
    stats.total_python_time = 1000.0
    for lineno in range(1, 2001):
        line = stats.line("big.py", lineno)
        line.python_time = 0.5  # everything is "significant"
    keys = significant_lines(stats.lines, stats.total_cpu_time, 0.0, max_lines=300)
    assert len(keys) <= 300


def test_memory_significance_counts_too():
    stats = ScaleneStats()
    stats.total_python_time = 100.0
    cold = stats.line("app.py", 3)
    cold.python_time = 0.0001
    allocator = stats.line("app.py", 7)
    allocator.malloc_mb = 50.0
    stats.total_alloc_mb = 50.0
    keys = significant_lines(stats.lines, stats.total_cpu_time, stats.total_alloc_mb)
    assert ("app.py", 7) in keys
    assert ("app.py", 3) not in keys


def test_build_profile_populates_lines_and_functions():
    stats = make_stats(10, hot_lines=(5,))
    config = ScaleneConfig()
    profile = build_profile(
        stats,
        config,
        source_lines={"app.py": [f"line {i}" for i in range(1, 11)]},
        leaks=[],
    )
    hot = profile.line(5)
    assert hot is not None
    assert hot.source == "line 5"
    assert hot.cpu_python_percent > 90
    assert profile.functions
    top = profile.functions[0]
    assert top.cpu_total_percent >= profile.functions[-1].cpu_total_percent
    assert profile.function(top.function) is top


def test_neighbour_lines_have_empty_stats():
    stats = make_stats(10, hot_lines=(5,))
    # Remove line 4 from stats entirely: it should still appear (context)
    # with zeroed columns.
    del stats.lines[("app.py", 4)]
    profile = build_profile(
        stats,
        config=ScaleneConfig(),
        source_lines={"app.py": [f"l{i}" for i in range(1, 11)]},
        leaks=[],
    )
    neighbour = profile.line(4)
    assert neighbour is not None
    assert neighbour.cpu_total_percent == 0.0


def test_to_json_parses():
    import json

    stats = make_stats(10)
    profile = build_profile(
        stats, ScaleneConfig(), source_lines={"app.py": []}, leaks=[]
    )
    payload = json.loads(profile.to_json())
    assert payload["cpu"]["samples"] == 0
    assert isinstance(payload["lines"], list)


def test_mem_python_percent():
    stats = ScaleneStats()
    stats.total_python_time = 1.0
    line = stats.line("app.py", 2)
    line.python_time = 1.0
    line.malloc_mb = 10.0
    line.python_alloc_mb = 7.5
    profile = build_profile(
        stats, ScaleneConfig(), source_lines={"app.py": []}, leaks=[]
    )
    assert profile.line(2).mem_python_percent == pytest.approx(75.0)
