"""Tests for profile assembly: filtering, function aggregation, rendering."""

import pytest

from repro.core.config import ScaleneConfig
from repro.core.filtering import significant_lines
from repro.core.profile_data import build_profile
from repro.core.stats import LineStats, ScaleneStats


def make_stats(num_lines: int, hot_lines=(5,)) -> ScaleneStats:
    stats = ScaleneStats()
    stats.start_wall = 0.0
    stats.stop_wall = 10.0
    for lineno in range(1, num_lines + 1):
        line = stats.line("app.py", lineno, f"fn{lineno % 3}")
        if lineno in hot_lines:
            line.python_time = 5.0
            stats.total_python_time += 5.0
        else:
            line.python_time = 0.001
            stats.total_python_time += 0.001
    return stats


def test_significant_lines_keeps_hot_plus_neighbours():
    stats = make_stats(50, hot_lines=(25,))
    keys = significant_lines(stats.lines, stats.total_cpu_time, 0.0)
    linenos = [lineno for _f, lineno in keys]
    assert 25 in linenos
    assert 24 in linenos and 26 in linenos
    assert 10 not in linenos  # a cold line far from the hot one


def test_significant_lines_min_line_is_one():
    stats = make_stats(3, hot_lines=(1,))
    keys = significant_lines(stats.lines, stats.total_cpu_time, 0.0)
    assert all(lineno >= 1 for _f, lineno in keys)


def test_300_line_guarantee():
    """§5: a profile never contains more than 300 lines."""
    stats = ScaleneStats()
    stats.total_python_time = 1000.0
    for lineno in range(1, 2001):
        line = stats.line("big.py", lineno)
        line.python_time = 0.5  # everything is "significant"
    keys = significant_lines(stats.lines, stats.total_cpu_time, 0.0, max_lines=300)
    assert len(keys) <= 300


def test_memory_significance_counts_too():
    stats = ScaleneStats()
    stats.total_python_time = 100.0
    cold = stats.line("app.py", 3)
    cold.python_time = 0.0001
    allocator = stats.line("app.py", 7)
    allocator.malloc_mb = 50.0
    stats.total_alloc_mb = 50.0
    keys = significant_lines(stats.lines, stats.total_cpu_time, stats.total_alloc_mb)
    assert ("app.py", 7) in keys
    assert ("app.py", 3) not in keys


def test_build_profile_populates_lines_and_functions():
    stats = make_stats(10, hot_lines=(5,))
    config = ScaleneConfig()
    profile = build_profile(
        stats,
        config,
        source_lines={"app.py": [f"line {i}" for i in range(1, 11)]},
        leaks=[],
    )
    hot = profile.line(5)
    assert hot is not None
    assert hot.source == "line 5"
    assert hot.cpu_python_percent > 90
    assert profile.functions
    top = profile.functions[0]
    assert top.cpu_total_percent >= profile.functions[-1].cpu_total_percent
    assert profile.function(top.function) is top


def test_neighbour_lines_have_empty_stats():
    stats = make_stats(10, hot_lines=(5,))
    # Remove line 4 from stats entirely: it should still appear (context)
    # with zeroed columns.
    del stats.lines[("app.py", 4)]
    profile = build_profile(
        stats,
        config=ScaleneConfig(),
        source_lines={"app.py": [f"l{i}" for i in range(1, 11)]},
        leaks=[],
    )
    neighbour = profile.line(4)
    assert neighbour is not None
    assert neighbour.cpu_total_percent == 0.0


def test_to_json_parses():
    import json

    stats = make_stats(10)
    profile = build_profile(
        stats, ScaleneConfig(), source_lines={"app.py": []}, leaks=[]
    )
    payload = json.loads(profile.to_json())
    assert payload["cpu"]["samples"] == 0
    assert isinstance(payload["lines"], list)


def test_mem_python_percent():
    stats = ScaleneStats()
    stats.total_python_time = 1.0
    line = stats.line("app.py", 2)
    line.python_time = 1.0
    line.malloc_mb = 10.0
    line.python_alloc_mb = 7.5
    profile = build_profile(
        stats, ScaleneConfig(), source_lines={"app.py": []}, leaks=[]
    )
    assert profile.line(2).mem_python_percent == pytest.approx(75.0)


# ---------------------------------------------------------------------------
# JSON round-trip (the profile store's contract)
# ---------------------------------------------------------------------------


def full_profile():
    """A profile exercising every field family: CPU, memory, leaks, lints."""
    from repro import SimProcess
    from repro.analysis.triangulate import lint_and_triangulate
    from repro.core import Scalene

    source = (
        "total = 0\n"
        "for i in range(4000):\n"
        "    total = total + i * 3\n"
        "native_work(0.5)\n"
        "bufs = []\n"
        "for j in range(16):\n"
        "    bufs.append(py_buffer(1048576))\n"
        "print(total)\n"
    )
    process = SimProcess(source, filename="roundtrip.py")
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()
    lint_and_triangulate(source, profile, filename="roundtrip.py")
    return profile


def test_json_round_trip_is_exact():
    from repro.core.profile_data import ProfileData

    profile = full_profile()
    restored = ProfileData.from_json(profile.to_json())
    assert restored.to_dict() == profile.to_dict()
    # Rendering works identically on the restored profile (lints included).
    assert restored.render_text() == profile.render_text()


def test_round_trip_restores_counters_and_leaks():
    from repro.core.leak_detector import LeakReport
    from repro.core.profile_data import ProfileData

    stats = make_stats(10)
    stats.total_alloc_mb = 12.5
    profile = build_profile(
        stats,
        ScaleneConfig(),
        source_lines={"app.py": []},
        leaks=[
            LeakReport(
                filename="app.py", lineno=5, function="fn2", likelihood=0.96,
                leak_rate_mb_s=1.25, mallocs=30, frees=0,
            )
        ],
        sample_log_bytes=4096,
    )
    restored = ProfileData.from_json(profile.to_json())
    assert restored.total_alloc_mb == 12.5
    assert restored.sample_log_bytes == 4096
    leak = restored.leaks[0]
    assert (leak.mallocs, leak.frees) == (30, 0)
    assert leak.likelihood == pytest.approx(0.96)
    assert restored.memory_timeline == profile.memory_timeline


def test_from_json_rejects_other_schema_versions():
    import json

    from repro.core.profile_data import SCHEMA_VERSION, ProfileData
    from repro.errors import ProfileSchemaError

    stats = make_stats(3)
    profile = build_profile(stats, ScaleneConfig(), source_lines={"app.py": []}, leaks=[])
    payload = profile.to_dict()
    assert payload["schema"] == SCHEMA_VERSION

    for bad_schema in (None, 1, SCHEMA_VERSION + 1, "2"):
        tampered = dict(payload, schema=bad_schema)
        with pytest.raises(ProfileSchemaError):
            ProfileData.from_dict(tampered)
    with pytest.raises(ProfileSchemaError):
        ProfileData.from_json("not json {")
    with pytest.raises(ProfileSchemaError):
        ProfileData.from_dict([payload])


def test_from_dict_fails_loudly_on_missing_keys():
    from repro.core.profile_data import ProfileData
    from repro.errors import ProfileSchemaError

    stats = make_stats(3)
    profile = build_profile(stats, ScaleneConfig(), source_lines={"app.py": []}, leaks=[])
    payload = profile.to_dict()
    del payload["memory"]["total_alloc_mb"]
    with pytest.raises(ProfileSchemaError, match="missing key"):
        ProfileData.from_dict(payload)


def test_crossing_fields_round_trip():
    """Schema v4: per-line crossing counters and totals survive JSON."""
    from repro.core.profile_data import ProfileData

    stats = make_stats(6)
    profile = build_profile(stats, ScaleneConfig(), source_lines={"app.py": []}, leaks=[])
    profile.total_crossings = 205
    profile.total_crossing_overhead_s = 0.0025625
    profile.total_bytes_to_native = 800
    profile.total_bytes_to_python = 1600
    line = profile.lines[0]
    line.crossings = 100
    line.crossing_overhead_s = 0.00125
    line.crossing_native_s = 0.0025
    line.bytes_to_native = 800
    line.bytes_to_python = 0

    restored = ProfileData.from_json(profile.to_json())
    assert restored.total_crossings == 205
    assert restored.total_crossing_overhead_s == pytest.approx(0.0025625)
    assert restored.total_bytes_to_native == 800
    assert restored.total_bytes_to_python == 1600
    restored_line = restored.line(line.lineno, line.filename)
    assert restored_line.crossings == 100
    assert restored_line.crossing_overhead_s == pytest.approx(0.00125)
    assert restored_line.crossing_native_s == pytest.approx(0.0025)
    assert restored_line.bytes_to_native == 800
    assert restored_line.bytes_to_python == 0


def test_crossflow_findings_round_trip():
    from repro.analysis.crossflow import CrossFlowFinding
    from repro.core.profile_data import ProfileData

    stats = make_stats(3)
    profile = build_profile(stats, ScaleneConfig(), source_lines={"app.py": []}, leaks=[])
    profile.crossflow_findings = [
        CrossFlowFinding(
            detector="chatty-native-loop",
            filename="app.py",
            lineno=5,
            function="<module>",
            message="chatty",
            suggestion="batch it",
            crossings=100,
            crossings_per_iteration=2.0,
            overhead_s=0.00125,
            native_s=0.0025,
            overhead_share_percent=33.3,
            bytes_to_native=0,
            bytes_to_python=0,
            estimated_savings_s=0.0012375,
        )
    ]
    restored = ProfileData.from_json(profile.to_json())
    assert len(restored.crossflow_findings) == 1
    f = restored.crossflow_findings[0]
    assert f.detector == "chatty-native-loop"
    assert f.crossings == 100
    assert f.crossings_per_iteration == 2.0
    assert f.estimated_savings_s == pytest.approx(0.0012375)


def test_schema_v2_and_v3_payloads_still_load():
    """Back-compat: pre-crossing payloads parse with zeroed v4 fields."""
    from repro.core.profile_data import ProfileData

    stats = make_stats(4)
    profile = build_profile(stats, ScaleneConfig(), source_lines={"app.py": []}, leaks=[])
    payload = profile.to_dict()
    # Strip everything v4 added.
    v3 = dict(payload, schema=3)
    del v3["crossings"]
    del v3["crossflow"]
    v3["lines"] = [
        {
            k: v
            for k, v in entry.items()
            if k
            not in (
                "crossings",
                "crossing_overhead_s",
                "crossing_native_s",
                "bytes_to_native",
                "bytes_to_python",
            )
        }
        for entry in payload["lines"]
    ]
    restored = ProfileData.from_dict(v3)
    assert restored.total_crossings == 0
    assert restored.crossflow_findings == []
    assert all(line.crossings == 0 for line in restored.lines)

    # v2 additionally predates the degraded-mode fields.
    v2 = dict(v3, schema=2)
    del v2["degraded"]
    del v2["faults"]
    restored = ProfileData.from_dict(v2)
    assert restored.degraded is False
    assert restored.fault_counters == {}
    assert restored.total_crossings == 0


def test_concurrency_fields_round_trip():
    """Schema v5: lock tables, task accounting, and process lineage
    survive JSON exactly."""
    from repro.core.profile_data import (
        LockEdge,
        ProcessReport,
        ProfileData,
        TaskReport,
    )

    stats = make_stats(6)
    profile = build_profile(stats, ScaleneConfig(), source_lines={"app.py": []}, leaks=[])
    profile.total_lock_blocked_s = 0.375
    profile.total_lock_contentions = 9
    profile.total_lock_acquisitions = 40
    profile.lock_edges = [
        LockEdge(waiter="consumer", holder="producer", lock="queue",
                 blocked_s=0.25, count=6),
        LockEdge(waiter="producer", holder="consumer", lock="queue",
                 blocked_s=0.125, count=3),
    ]
    profile.tasks = [
        TaskReport(name="handler-1", cpu_s=0.5, wait_s=1.5, switches=7,
                   awaiting="app.py:4"),
        TaskReport(name="main", cpu_s=0.1, wait_s=2.0, switches=2, awaiting=""),
    ]
    profile.processes = [
        ProcessReport(pid=1, parent_pid=None, elapsed_s=3.0, cpu_s=2.5,
                      peak_mb=64.0),
        ProcessReport(pid=2, parent_pid=1, elapsed_s=1.0, cpu_s=0.9,
                      peak_mb=32.0),
    ]
    line = profile.lines[0]
    line.lock_blocked_s = 0.25
    line.lock_contentions = 6
    line.lock_acquisitions = 20

    restored = ProfileData.from_json(profile.to_json())
    assert restored.total_lock_blocked_s == pytest.approx(0.375)
    assert restored.total_lock_contentions == 9
    assert restored.total_lock_acquisitions == 40
    assert [(e.waiter, e.holder, e.lock, e.count) for e in restored.lock_edges] == [
        ("consumer", "producer", "queue", 6),
        ("producer", "consumer", "queue", 3),
    ]
    assert [(t.name, t.switches, t.awaiting) for t in restored.tasks] == [
        ("handler-1", 7, "app.py:4"),
        ("main", 2, ""),
    ]
    assert [(p.pid, p.parent_pid) for p in restored.processes] == [
        (1, None),
        (2, 1),
    ]
    assert restored.processes[0].peak_mb == pytest.approx(64.0)
    restored_line = restored.line(line.lineno, line.filename)
    assert restored_line.lock_blocked_s == pytest.approx(0.25)
    assert restored_line.lock_contentions == 6
    assert restored_line.lock_acquisitions == 20
    assert restored.to_dict() == profile.to_dict()


def test_schema_v4_payloads_still_load():
    """Back-compat: a pre-concurrency (v4) payload parses with zeroed
    lock counters and empty task/process tables."""
    from repro.core.profile_data import ProfileData

    stats = make_stats(4)
    profile = build_profile(stats, ScaleneConfig(), source_lines={"app.py": []}, leaks=[])
    payload = profile.to_dict()
    v4 = dict(payload, schema=4)
    del v4["locks"]
    del v4["tasks"]
    del v4["processes"]
    v4["lines"] = [
        {
            k: v
            for k, v in entry.items()
            if k not in ("lock_blocked_s", "lock_contentions", "lock_acquisitions")
        }
        for entry in payload["lines"]
    ]
    restored = ProfileData.from_dict(v4)
    assert restored.total_lock_blocked_s == 0.0
    assert restored.total_lock_contentions == 0
    assert restored.total_lock_acquisitions == 0
    assert restored.lock_edges == []
    assert restored.tasks == []
    assert restored.processes == []
    assert all(line.lock_blocked_s == 0.0 for line in restored.lines)
    assert all(line.lock_acquisitions == 0 for line in restored.lines)


def test_schema_v3_requires_degraded_keys():
    """v3 added `degraded`/`faults`; a payload without them must not parse."""
    from repro.core.profile_data import ProfileData
    from repro.errors import ProfileSchemaError

    stats = make_stats(3)
    profile = build_profile(stats, ScaleneConfig(), source_lines={"app.py": []}, leaks=[])
    payload = profile.to_dict()
    assert payload["degraded"] is False  # clean run
    assert payload["faults"] == {}
    for key in ("degraded", "faults"):
        broken = dict(payload)
        del broken[key]
        with pytest.raises(ProfileSchemaError, match="missing key"):
            ProfileData.from_dict(broken)
