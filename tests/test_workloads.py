"""Tests for the workload suite."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import get_workload, pyperf_suite, workload_names
from repro.workloads.base import default_scale
from repro.workloads.membench import ARRAY_MB, membench
from repro.workloads.microbench import microbenchmark


def test_suite_has_ten_members_in_paper_order():
    names = list(pyperf_suite())
    assert names == [
        "async_tree_io_none",
        "async_tree_io_io",
        "async_tree_io_cpu_io_mixed",
        "async_tree_io_memoization",
        "docutils",
        "fannkuch",
        "mdp",
        "pprint",
        "raytrace",
        "sympy",
    ]


@pytest.mark.parametrize("name", list(pyperf_suite()))
def test_each_workload_runs_at_small_scale(name):
    workload = get_workload(name)
    process = workload.make_process(scale=0.05)
    process.run()
    assert process.stdout  # every workload prints its result
    assert process.clock.wall > 0
    # Nothing leaks at teardown.
    assert process.mem.logical_footprint() < 100_000


def test_workloads_are_deterministic():
    workload = get_workload("raytrace")
    runs = []
    for _ in range(2):
        process = workload.make_process(scale=0.05)
        process.run()
        runs.append((process.clock.wall, process.vm.instruction_count, process.stdout))
    assert runs[0] == runs[1]


def test_scale_changes_duration_roughly_linearly():
    workload = get_workload("fannkuch")
    small = workload.make_process(scale=0.05)
    small.run()
    big = workload.make_process(scale=0.2)
    big.run()
    ratio = big.clock.wall / small.clock.wall
    assert 2.0 < ratio < 8.0


def test_unknown_workload_raises():
    with pytest.raises(WorkloadError):
        get_workload("quicksort3000")


def test_workload_names_includes_leak_workloads():
    names = workload_names()
    assert "leaky" in names and "balanced" in names


def test_leaky_workload_grows_balanced_does_not():
    leaky = get_workload("leaky").make_process(scale=1.0)
    leaky.run()
    balanced = get_workload("balanced").make_process(scale=1.0)
    balanced.run()
    assert leaky.mem.peak_footprint > 5 * balanced.mem.peak_footprint


def test_microbenchmark_fraction_validation():
    with pytest.raises(ValueError):
        microbenchmark(1.5)
    with pytest.raises(ValueError):
        microbenchmark(-0.1)


def test_microbenchmark_split_controls_work():
    heavy_call = microbenchmark(0.9).make_process(0.2, collect_ground_truth=True)
    heavy_call.run()
    gt = heavy_call.ground_truth
    call_time = gt.function_time("with_call") + gt.function_time("helper")
    inline_time = gt.function_time("inlined")
    assert call_time > 3 * inline_time


def test_membench_fraction_validation():
    with pytest.raises(ValueError):
        membench(2.0)


def test_membench_allocates_512_mib():
    process = membench(0.0).make_process()
    process.run()
    assert process.mem.peak_footprint / (1024 * 1024) == pytest.approx(
        ARRAY_MB, rel=0.01
    )


def test_default_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.7")
    assert default_scale() == 0.7
    monkeypatch.setenv("REPRO_SCALE", "junk")
    assert default_scale() == 0.2


def test_scaled_repetitions():
    workload = get_workload("raytrace")
    assert workload.scaled_repetitions(1.0) == workload.repetitions
    assert workload.scaled_repetitions(0.001) == 1
