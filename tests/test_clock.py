"""Tests for the virtual clock."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime.clock import VirtualClock


def test_initial_state():
    clock = VirtualClock()
    assert clock.wall == 0.0
    assert clock.cpu == 0.0


def test_advance_cpu_moves_both_clocks():
    clock = VirtualClock()
    clock.advance_cpu(0.5)
    assert clock.wall == pytest.approx(0.5)
    assert clock.cpu == pytest.approx(0.5)


def test_advance_wall_moves_only_wall():
    clock = VirtualClock()
    clock.advance_wall(0.25)
    assert clock.wall == pytest.approx(0.25)
    assert clock.cpu == 0.0


def test_negative_advance_rejected():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance_cpu(-1.0)
    with pytest.raises(ValueError):
        clock.advance_wall(-0.1)


def test_zero_advance_is_noop_and_skips_observers():
    clock = VirtualClock()
    calls = []
    clock.subscribe(lambda w, c: calls.append((w, c)))
    clock.advance_cpu(0.0)
    clock.advance_wall(0.0)
    assert calls == []


def test_observers_receive_deltas():
    clock = VirtualClock()
    seen = []
    clock.subscribe(lambda w, c: seen.append((w, c)))
    clock.advance_cpu(0.1)
    clock.advance_wall(0.2)
    assert seen == [(0.1, 0.1), (0.2, 0.0)]


def test_unsubscribe():
    clock = VirtualClock()
    seen = []
    cb = lambda w, c: seen.append(1)  # noqa: E731
    clock.subscribe(cb)
    clock.advance_cpu(0.1)
    clock.unsubscribe(cb)
    clock.advance_cpu(0.1)
    assert len(seen) == 1
    # Unsubscribing twice is harmless.
    clock.unsubscribe(cb)


@given(st.lists(st.tuples(st.booleans(), st.floats(min_value=0, max_value=10)), max_size=50))
def test_monotonicity_and_cpu_bound(steps):
    """Wall is monotone; CPU never exceeds wall."""
    clock = VirtualClock()
    last_wall = 0.0
    for is_cpu, dt in steps:
        if is_cpu:
            clock.advance_cpu(dt)
        else:
            clock.advance_wall(dt)
        assert clock.wall >= last_wall
        last_wall = clock.wall
    assert clock.cpu <= clock.wall + 1e-9
