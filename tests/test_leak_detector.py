"""Unit tests for the leak detector's scoring and filtering (paper §3.4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.config import ScaleneConfig
from repro.core.leak_detector import LeakDetector, leak_likelihood

LOC_A = ("app.py", 10, "grow")
LOC_B = ("app.py", 20, "churn")

GROWING_TIMELINE = [(0.0, 10.0), (5.0, 100.0)]
FLAT_TIMELINE = [(0.0, 100.0), (5.0, 100.0)]


def make_detector():
    return LeakDetector(ScaleneConfig())


def feed_growth(detector, location, n, footprint_start=0, freed=False, nbytes=1 << 20):
    """Simulate n consecutive high-water growth samples at a site."""
    footprint = footprint_start
    for i in range(n):
        footprint += 20 << 20
        detector.on_growth_sample(
            footprint=footprint,
            address=0x1000 + i,
            nbytes=nbytes,
            location=location,
            wall=float(i),
        )
        if freed:
            detector.on_free(0x1000 + i)
    return footprint


# -- the likelihood formula ----------------------------------------------------


def test_likelihood_formula_matches_paper():
    # 1 - (frees+1)/(mallocs+2): Laplace's Rule of Succession, always a
    # valid probability (the never-freed progression matches the paper).
    assert leak_likelihood(10, 0) == pytest.approx(1 - 1 / 12)
    assert leak_likelihood(10, 10) == pytest.approx(1 - 11 / 12)
    assert leak_likelihood(0, 0) == pytest.approx(0.5)
    assert 0.0 <= leak_likelihood(10, 10) < 1.0


def test_likelihood_needs_about_20_observations_for_95():
    assert leak_likelihood(17, 0) < 0.95
    assert leak_likelihood(18, 0) >= 0.95


def test_likelihood_rejects_invalid_scores():
    with pytest.raises(ValueError):
        leak_likelihood(1, 2)
    with pytest.raises(ValueError):
        leak_likelihood(-1, 0)


@given(st.integers(min_value=0, max_value=1000))
def test_never_freed_likelihood_monotone(n):
    """More never-freed observations → monotonically higher likelihood."""
    if n == 0:
        return
    assert leak_likelihood(n, 0) >= leak_likelihood(n - 1, 0)


# -- detector behaviour ----------------------------------------------------


def test_leaking_site_is_reported():
    detector = make_detector()
    feed_growth(detector, LOC_A, 30, freed=False)
    detector.finalize()
    reports = detector.report(GROWING_TIMELINE, elapsed=5.0)
    assert len(reports) == 1
    assert reports[0].lineno == 10
    assert reports[0].likelihood >= 0.95
    assert reports[0].leak_rate_mb_s > 0


def test_reclaimed_site_is_not_reported():
    detector = make_detector()
    feed_growth(detector, LOC_A, 30, freed=True)
    detector.finalize()
    assert detector.report(GROWING_TIMELINE, elapsed=5.0) == []


def test_flat_memory_suppresses_all_reports():
    """The ≥1% overall-growth filter (§3.4)."""
    detector = make_detector()
    feed_growth(detector, LOC_A, 30, freed=False)
    detector.finalize()
    assert detector.report(FLAT_TIMELINE, elapsed=5.0) == []


def test_too_few_observations_not_reported():
    detector = make_detector()
    feed_growth(detector, LOC_A, 5, freed=False)
    detector.finalize()
    assert detector.report(GROWING_TIMELINE, elapsed=5.0) == []


def test_non_high_water_growth_ignored():
    detector = make_detector()
    detector.on_growth_sample(
        footprint=100 << 20, address=1, nbytes=1 << 20, location=LOC_A, wall=0.0
    )
    # Lower footprint: not a new maximum → not tracked.
    detector.on_growth_sample(
        footprint=50 << 20, address=2, nbytes=1 << 20, location=LOC_A, wall=1.0
    )
    mallocs, _frees = detector.site_score(LOC_A)
    assert mallocs == 1


def test_free_checks_are_counted():
    detector = make_detector()
    feed_growth(detector, LOC_A, 3)
    for addr in range(100):
        detector.on_free(addr)
    assert detector.free_checks == 100


def test_reports_sorted_by_leak_rate():
    detector = make_detector()
    footprint = feed_growth(detector, LOC_A, 25, nbytes=1 << 20)
    feed_growth(detector, LOC_B, 25, footprint_start=footprint, nbytes=16 << 20)
    detector.finalize()
    reports = detector.report(GROWING_TIMELINE, elapsed=5.0)
    assert len(reports) == 2
    assert reports[0].lineno == 20  # the bigger leaker first
    assert reports[0].leak_rate_mb_s > reports[1].leak_rate_mb_s
