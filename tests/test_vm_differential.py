"""Differential testing: the simulated VM vs. host Python.

Hypothesis generates random programs in the supported mini-language
subset (integer arithmetic, conditionals, bounded loops, function calls);
each program is executed both by the simulated interpreter and by host
Python's ``exec``. The final variable bindings must agree exactly.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.runtime.process import SimProcess

VARS = ["a", "b", "c", "d"]


@st.composite
def expressions(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            return str(draw(st.integers(min_value=-50, max_value=50)))
        return draw(st.sampled_from(VARS))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    op = draw(st.sampled_from(["+", "-", "*", "//", "%"]))
    if op in ("//", "%"):
        # Guard against division by zero, keeping semantics identical.
        return f"(({left}) {op} ((({right}) % 7) + 1))"
    return f"(({left}) {op} ({right}))"


@st.composite
def statements(draw, depth=0, indent=""):
    kind = draw(st.integers(min_value=0, max_value=3 if depth < 2 else 0))
    target = draw(st.sampled_from(VARS))
    if kind == 0:
        return [f"{indent}{target} = {draw(expressions())}"]
    if kind == 1:  # if / else
        cmp_op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        test = f"{draw(expressions())} {cmp_op} {draw(expressions())}"
        body = draw(statements(depth=depth + 1, indent=indent + "    "))
        orelse = draw(statements(depth=depth + 1, indent=indent + "    "))
        return [f"{indent}if {test}:"] + body + [f"{indent}else:"] + orelse
    if kind == 2:  # bounded for loop
        n = draw(st.integers(min_value=0, max_value=5))
        body = draw(statements(depth=depth + 1, indent=indent + "    "))
        loop_var = draw(st.sampled_from(["i", "j"]))
        return [f"{indent}for {loop_var} in range({n}):"] + body
    # kind == 3: augmented assignment
    op = draw(st.sampled_from(["+", "-", "*"]))
    return [f"{indent}{target} {op}= {draw(expressions())}"]


@st.composite
def programs(draw):
    lines = ["a = 1", "b = 2", "c = 3", "d = 4"]
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        lines.extend(draw(statements()))
    return "\n".join(lines) + "\n"


def run_simulated(source: str) -> dict:
    process = SimProcess(source, filename="diff.py")
    captured = {}
    original = process._finalize

    def capture():
        captured.update(
            {k: v for k, v in process.globals.items() if isinstance(v, int)}
        )
        original()

    process._finalize = capture
    process.run()
    return captured


def run_host(source: str) -> dict:
    namespace: dict = {}
    exec(source, {"range": range}, namespace)  # noqa: S102 - test oracle
    return {k: v for k, v in namespace.items() if isinstance(v, int)}


@settings(max_examples=60, deadline=None)
@given(programs())
def test_vm_agrees_with_host_python(source):
    assert run_simulated(source) == run_host(source)


@settings(max_examples=30, deadline=None)
@given(programs())
def test_vm_is_deterministic(source):
    first = SimProcess(source, filename="diff.py")
    first.run()
    second = SimProcess(source, filename="diff.py")
    second.run()
    assert first.clock.wall == second.clock.wall
    assert first.vm.instruction_count == second.vm.instruction_count


@settings(max_examples=20, deadline=None)
@given(programs())
def test_vm_cleans_up_memory(source):
    process = SimProcess(source, filename="diff.py")
    process.run()
    assert process.mem.logical_footprint() == 0
    assert process.mem.live_object_count == 0
