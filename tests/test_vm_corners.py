"""Edge-case tests for the VM and compiler semantics."""

import pytest

from repro.errors import VMError
from repro.runtime.process import SimProcess
from repro.interp.libs import install_standard_libraries


def run_and_capture(source, libs=False):
    process = SimProcess(source, filename="c.py")
    if libs:
        install_standard_libraries(process)
    captured = {}
    original = process._finalize

    def capture():
        captured.update(process.globals)
        from repro.interp.objects import incref

        for value in captured.values():
            incref(value)
        original()

    process._finalize = capture
    process.run()
    return process, captured


def test_and_short_circuits():
    # If the right operand were evaluated, boom() would raise.
    source = (
        "def flag():\n"
        "    return 0\n"
        "x = flag() and missing_name\n"
    )
    _, g = run_and_capture(source)
    assert g["x"] == 0


def test_or_short_circuits():
    source = "x = 1 or missing_name\n"
    _, g = run_and_capture(source)
    assert g["x"] == 1


def test_ternary_evaluates_single_branch():
    source = "x = 5 if 1 < 2 else missing_name\n"
    _, g = run_and_capture(source)
    assert g["x"] == 5


def test_nested_and_mutual_function_calls():
    source = (
        "def even(n):\n"
        "    if n == 0:\n"
        "        return 1\n"
        "    return odd(n - 1)\n"
        "def odd(n):\n"
        "    if n == 0:\n"
        "        return 0\n"
        "    return even(n - 1)\n"
        "a = even(10)\n"
        "b = odd(10)\n"
    )
    _, g = run_and_capture(source)
    assert g["a"] == 1 and g["b"] == 0


def test_while_with_break_and_continue():
    source = (
        "total = 0\n"
        "i = 0\n"
        "while True:\n"
        "    i = i + 1\n"
        "    if i % 2 == 0:\n"
        "        continue\n"
        "    if i > 9:\n"
        "        break\n"
        "    total = total + i\n"
    )
    _, g = run_and_capture(source)
    assert g["total"] == 1 + 3 + 5 + 7 + 9


def test_subscript_store_in_loop():
    source = (
        "d = {}\n"
        "for i in range(5):\n"
        "    d[i] = i * i\n"
        "xs = [0, 0, 0]\n"
        "xs[1] = 42\n"
        "v = d[3] + xs[1]\n"
    )
    _, g = run_and_capture(source)
    assert g["v"] == 51


def test_negative_indexing():
    _, g = run_and_capture("xs = [1, 2, 3]\nlast = xs[-1]\n")
    assert g["last"] == 3


def test_unpack_mismatch_raises():
    with pytest.raises(VMError, match="unpack"):
        SimProcess("a, b = (1, 2, 3)\n", filename="c.py").run()


def test_unpack_non_sequence_raises():
    with pytest.raises(VMError, match="unpack"):
        SimProcess("a, b = 5\n", filename="c.py").run()


def test_calling_non_callable_raises():
    with pytest.raises(VMError, match="not callable"):
        SimProcess("x = 5\nx()\n", filename="c.py").run()


def test_kwargs_on_native_function():
    # Keyword arguments flow into native calls cleanly (join's timeout).
    source = (
        "def f():\n"
        "    pass\n"
        "t = spawn(f)\n"
        "join(t, timeout=1.0)\n"
    )
    run_and_capture(source)


def test_kwargs_on_sim_function_rejected():
    source = "def f(a):\n    return a\nx = f(a=1)\n"
    with pytest.raises(VMError, match="keyword"):
        SimProcess(source, filename="c.py").run()


def test_division_by_zero_is_vmerror():
    with pytest.raises(VMError, match="binary op"):
        SimProcess("x = 1 // 0\n", filename="c.py").run()


def test_string_operations():
    _, g = run_and_capture(
        "s = 'ab' + 'cd'\n"
        "n = len(s)\n"
        "r = s * 2\n"
        "has = 'bc' in s\n"
    )
    assert g["s"] == "abcd"
    assert g["n"] == 4
    assert g["r"] == "abcdabcd"
    assert g["has"] is True


def test_is_comparison():
    _, g = run_and_capture("a = None\nx = a is None\ny = a is not None\n")
    assert g["x"] is True and g["y"] is False


def test_attribute_on_plain_value_raises():
    with pytest.raises(VMError, match="attribute"):
        SimProcess("x = 5\ny = x.real\n", filename="c.py").run()


def test_array_slice_with_step_raises(libs=True):
    process = SimProcess("a = np.zeros(100)\nv = a[0:10:2]\n", filename="c.py")
    install_standard_libraries(process)
    with pytest.raises(VMError, match="step"):
        process.run()


def test_del_inside_function_releases_local():
    source = (
        "def f():\n"
        "    b = py_buffer(5000000)\n"
        "    del b\n"
        "    return 1\n"
        "x = f()\n"
    )
    process, _ = run_and_capture(source)
    assert process.mem.logical_footprint() == 0


def test_deeply_nested_calls():
    source = (
        "def f(n):\n"
        "    if n == 0:\n"
        "        return 0\n"
        "    return 1 + f(n - 1)\n"
        "depth = f(200)\n"
    )
    _, g = run_and_capture(source)
    assert g["depth"] == 200


def test_module_globals_visible_in_functions():
    source = (
        "CONST = 17\n"
        "def read_const():\n"
        "    return CONST * 2\n"
        "x = read_const()\n"
    )
    _, g = run_and_capture(source)
    assert g["x"] == 34


def test_local_shadows_global():
    source = (
        "v = 1\n"
        "def shadow():\n"
        "    v = 99\n"
        "    return v\n"
        "a = shadow()\n"
        "b = v\n"
    )
    _, g = run_and_capture(source)
    assert g["a"] == 99 and g["b"] == 1
