"""Tests for the sampling file and the ScaleneStats accumulator."""

import pytest

from repro.core.stats import ScaleneStats
from repro.memory.samplefile import SampleFile


def test_samplefile_append_and_size():
    sf = SampleFile()
    sf.append("malloc,1.0,1048576,0.5,0xdead,app.py:3")
    assert sf.record_count == 1
    assert sf.size_bytes == len("malloc,1.0,1048576,0.5,0xdead,app.py:3") + 1


def test_samplefile_drain_semantics():
    sf = SampleFile()
    sf.append("a")
    sf.append("b")
    assert sf.drain() == ["a", "b"]
    assert sf.drain() == []
    sf.append("c")
    assert sf.drain() == ["c"]
    assert sf.all_records() == ["a", "b", "c"]


def test_samplefile_append_bytes_counts_without_storing():
    sf = SampleFile()
    for _ in range(1000):
        sf.append_bytes(48)
    assert sf.size_bytes == 48_000
    assert sf.record_count == 1000
    assert sf.all_records() == []  # content not retained


def test_samplefile_clear():
    sf = SampleFile()
    sf.append("x")
    sf.append_bytes(10)
    sf.clear()
    assert sf.size_bytes == 0
    assert sf.record_count == 0
    assert sf.drain() == []


# -- stats -----------------------------------------------------------------


def test_stats_line_interning():
    stats = ScaleneStats()
    a = stats.line("f.py", 3, "fn")
    b = stats.line("f.py", 3)
    assert a is b
    assert a.function == "fn"


def test_stats_function_backfill():
    stats = ScaleneStats()
    stats.line("f.py", 3)  # no function yet
    line = stats.line("f.py", 3, "late")
    assert line.function == "late"


def test_record_cpu_totals_and_line():
    stats = ScaleneStats()
    stats.record_cpu(("f.py", 3, "fn"), 0.01, 0.02, 0.003)
    stats.record_cpu(None, 0.01, 0.0, 0.0)  # unattributable sample
    assert stats.total_python_time == pytest.approx(0.02)
    assert stats.total_native_time == pytest.approx(0.02)
    line = stats.lines[("f.py", 3)]
    assert line.cpu_samples == 1
    assert line.python_time == pytest.approx(0.01)


def test_record_memory_sample_growth_and_decline():
    stats = ScaleneStats()
    mb = 1024 * 1024
    stats.record_memory_sample(("f.py", 5, "fn"), 12 * mb, 0.8, 12 * mb, 1.0)
    stats.record_memory_sample(("f.py", 6, "fn"), -12 * mb, 0.0, 0, 2.0)
    grow = stats.lines[("f.py", 5)]
    shrink = stats.lines[("f.py", 6)]
    assert grow.malloc_mb == pytest.approx(12.0)
    assert grow.python_alloc_mb == pytest.approx(9.6)
    assert shrink.free_mb == pytest.approx(12.0)
    assert stats.peak_footprint_mb == pytest.approx(12.0)
    assert len(stats.memory_timeline) == 2
    assert grow.timeline == [(1.0, 12.0)]


def test_line_derived_properties():
    stats = ScaleneStats()
    line = stats.line("f.py", 1)
    assert line.avg_footprint_mb == 0.0
    assert line.gpu_utilization == 0.0
    mb = 1024 * 1024
    stats.record_memory_sample(("f.py", 1, ""), mb, 1.0, 10 * mb, 0.5)
    stats.record_memory_sample(("f.py", 1, ""), mb, 1.0, 20 * mb, 1.5)
    assert line.avg_footprint_mb == pytest.approx(15.0)
    assert line.peak_footprint_mb == pytest.approx(20.0)


def test_record_gpu():
    stats = ScaleneStats()
    stats.record_gpu(("f.py", 2, "fn"), 0.5, 100 * 1024 * 1024)
    stats.record_gpu(("f.py", 2, "fn"), 1.0, 50 * 1024 * 1024)
    line = stats.lines[("f.py", 2)]
    assert line.gpu_utilization == pytest.approx(0.75)
    assert line.gpu_mem_peak_mb == pytest.approx(100.0)


def test_record_copy():
    stats = ScaleneStats()
    stats.record_copy(("f.py", 4, "fn"), 5 * 1024 * 1024)
    stats.record_copy(None, 1024 * 1024)
    assert stats.total_copy_mb == pytest.approx(6.0)
    assert stats.lines[("f.py", 4)].copy_mb == pytest.approx(5.0)


def test_elapsed():
    stats = ScaleneStats()
    stats.start_wall = 1.0
    stats.stop_wall = 4.5
    assert stats.elapsed == pytest.approx(3.5)
