"""Tests for the pandas-, torch- and IO-like native libraries."""

import pytest

from repro.errors import VMError
from repro.interp.libs import install_standard_libraries
from repro.runtime.process import SimProcess


def run(source, **kwargs):
    process = SimProcess(source, filename="lib.py", **kwargs)
    install_standard_libraries(process)
    process.run()
    return process


def copied_bytes(process):
    return sum(l.copy_bytes for l in process.ground_truth.lines.values())


# -- simdf ---------------------------------------------------------------


def test_frame_allocates_columnar_storage():
    process = run("df = pd.frame(100000, 4)\nn = len(df)\n")
    assert process.mem.sysalloc.total_bytes_allocated >= 100000 * 4 * 8


def test_chained_indexing_copies_column():
    process = run(
        "df = pd.frame(100000, 4)\ns = df['c0']\n", collect_ground_truth=True
    )
    assert copied_bytes(process) == 100000 * 8


def test_column_view_does_not_copy():
    process = run(
        "df = pd.frame(100000, 4)\ns = df.column_view('c0')\nn = len(s)\n",
        collect_ground_truth=True,
    )
    assert copied_bytes(process) == 0


def test_missing_column_raises():
    with pytest.raises(VMError, match="no such column"):
        run("df = pd.frame(10, 2)\ns = df['nope']\n")


def test_concat_copies_all_data():
    process = run(
        "a = pd.frame(50000, 4)\nb = pd.frame(50000, 4)\nc = pd.concat([a, b])\nn = len(c)\n",
        collect_ground_truth=True,
    )
    assert copied_bytes(process) == 2 * 50000 * 4 * 8
    # The concatenated frame has all rows.
    assert process.stdout == []


def test_groupby_copies_groups_but_restructured_does_not():
    chained = run(
        "df = pd.frame(200000, 4)\ng = pd.groupby_sum(df, 8)\n",
        collect_ground_truth=True,
    )
    fixed = run(
        "df = pd.frame(200000, 4)\ng = pd.groupby_sum_restructured(df, 8)\n",
        collect_ground_truth=True,
    )
    assert copied_bytes(chained) >= 200000 * 4 * 8
    assert copied_bytes(fixed) == 0
    assert chained.mem.peak_footprint > fixed.mem.peak_footprint


# -- simtorch ---------------------------------------------------------------


def test_tensor_uploads_to_device():
    process = run("t = torch.tensor(100000)\n", collect_ground_truth=True)
    assert copied_bytes(process) == 400_000  # float32 h2d
    # Device memory freed at teardown when the tensor is destroyed.
    assert process.gpu.memory_used() == 0


def test_tensor_ops_launch_kernels():
    process = run("t = torch.tensor(100000)\nu = t * 2.0\ntorch.synchronize()\n")
    assert process.gpu.kernels_launched >= 1
    assert process.gpu.busy_seconds_total > 0


def test_forward_backward_pipeline():
    process = run(
        "t = torch.tensor(50000)\n"
        "out = torch.forward(t)\n"
        "torch.backward(out)\n"
        "torch.synchronize()\n"
    )
    assert process.gpu.kernels_launched >= 4  # 3 layers + backward


def test_synchronize_accrues_system_time():
    process = run(
        "t = torch.tensor(500000)\nu = torch.forward(t)\ntorch.synchronize()\nx = 1\n",
        collect_ground_truth=True,
    )
    assert process.ground_truth.total_system_time > 0


def test_item_synchronizes_and_copies_back():
    process = run(
        "t = torch.tensor(1000)\nv = t.item()\n", collect_ground_truth=True
    )
    assert copied_bytes(process) >= 4004  # h2d + 4-byte d2h


def test_tensor_oom():
    with pytest.raises(Exception):
        run("t = torch.empty(10000000000)\n")


# -- simio ---------------------------------------------------------------


def test_io_wait_blocks_wall_only():
    process = run("io.wait(0.25)\n")
    assert process.clock.wall >= 0.25
    assert process.clock.cpu < 0.01


def test_io_read_models_throughput_and_copy():
    process = run("io.read(20000000)\n", collect_ground_truth=True)
    # 20 MB at 200 MB/s ≈ 0.1 s of wall time.
    assert process.clock.wall >= 0.09
    assert copied_bytes(process) == 20_000_000


def test_io_write():
    process = run("io.write(10000000)\n")
    assert process.clock.wall >= 0.04


def test_negative_io_rejected():
    with pytest.raises(VMError, match="negative"):
        run("io.wait(-1)\n")
    with pytest.raises(VMError, match="negative"):
        run("io.read(-1)\n")


def test_unknown_module_attribute():
    with pytest.raises(VMError, match="no attribute"):
        run("io.fly()\n")
