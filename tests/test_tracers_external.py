"""Tests for the tracer machinery and the external (out-of-process) sampler."""

import pytest

from repro import SimProcess
from repro.baselines import make_profiler
from repro.baselines.external import ExternalSampler
from repro.baselines.base import Capabilities
from repro.runtime import tracing

CALLS = (
    "def inner():\n"
    "    x = 1\n"
    "    return x\n"
    "def outer():\n"
    "    return inner() + inner()\n"
    "r = outer()\n"
    "n = len([1, 2])\n"
)


def test_function_tracer_nested_inclusive_times():
    process = SimProcess(CALLS, filename="t.py")
    profiler = make_profiler("cProfile", process)
    profiler.start()
    process.run()
    report = profiler.stop()
    inner = report.function_time("inner")
    outer = report.function_time("outer")
    assert inner > 0
    assert outer >= inner  # inclusive timing
    # Native builtins appear under their own names (c_call spans).
    assert report.function_time("len") > 0


def test_function_tracer_handles_module_return():
    """The module frame's return has no matching call entry; no crash,
    no bogus entries."""
    process = SimProcess("x = 1\n", filename="t.py")
    profiler = make_profiler("cProfile", process)
    profiler.start()
    process.run()
    report = profiler.stop()
    assert all(fn != "<module>" for _f, fn in report.function_times)


def test_line_tracer_attributes_hot_line():
    source = "s = 0\nfor i in range(500):\n    s = s + i\ny = 1\n"
    process = SimProcess(source, filename="t.py")
    profiler = make_profiler("line_profiler", process)
    profiler.start()
    process.run()
    report = profiler.stop()
    assert report.line_time(3) > 5 * report.line_time(4)


def test_line_tracer_scoping():
    """line_profiler only traces decorated (profiled-file) functions."""
    process = SimProcess("x = 1\n", filename="t.py")
    profiler = make_profiler("line_profiler", process)
    assert profiler.trace_all_files is False


def test_trace_manager_charges_costs():
    process = SimProcess("s = 0\nfor i in range(100):\n    s = s + 1\n", filename="t.py")

    class CountingTrace:
        cost_call = cost_return = cost_c_call = cost_c_return = 0.0
        cost_line = 1e-3
        events = 0

        def __call__(self, frame, event, arg):
            if event == tracing.EVENT_LINE:
                CountingTrace.events += 1

    process.trace.settrace(CountingTrace())
    process.run()
    # Each line event charged 1 ms of virtual CPU.
    assert CountingTrace.events > 50
    assert process.clock.cpu >= CountingTrace.events * 1e-3


def test_trace_restore_after_stop():
    process = SimProcess("x = 1\n", filename="t.py")
    profiler = make_profiler("pprofile_det", process)
    profiler.start()
    process.run()
    profiler.stop()
    assert process.trace.gettrace() is None


# -- external sampler -----------------------------------------------------


def test_external_sampler_counts_and_interval():
    source = "s = 0\nfor i in range(2000):\n    s = s + 1\n"
    process = SimProcess(source, filename="t.py")
    profiler = make_profiler("py_spy", process)
    profiler.start()
    process.run()
    report = profiler.stop()
    expected = process.clock.wall / 0.01
    assert report.total_samples == pytest.approx(expected, abs=2)
    # Total attributed time ≈ wall time.
    assert report.total_reported_time == pytest.approx(
        process.clock.wall, rel=0.1
    )


def test_external_sampler_sees_through_native_calls():
    """Out-of-process samplers read frames even during native execution
    (they don't depend on signal delivery)."""
    source = "native_work(1.0)\nx = 1\n"
    process = SimProcess(source, filename="t.py")
    profiler = make_profiler("py_spy", process)
    profiler.start()
    process.run()
    report = profiler.stop()
    # The native call's line received nearly all the samples — unlike
    # pprofile_stat, which reports ~zero for it.
    assert report.line_time(1) > 0.8


def test_austin_rss_mode_records_memory():
    source = "buf = py_buffer(50000000)\nsleep(0.1)\ndel buf\nsleep(0.05)\n"
    process = SimProcess(source, filename="t.py")
    profiler = make_profiler("austin_full", process)
    profiler.start()
    process.run()
    report = profiler.stop()
    assert report.peak_memory_mb is not None
    assert report.log_bytes > 0


def test_external_sampler_subclassing_guard():
    """A subclass without multiprocessing capability never registers a
    child observer."""

    class LocalSampler(ExternalSampler):
        name = "local"
        capabilities = Capabilities(granularity="lines", multiprocessing=False)
        interval = 0.01

    process = SimProcess("x = 1\n", filename="t.py")
    sampler = LocalSampler(process)
    sampler.start()
    assert process.child_observers == []
    process.run()
    sampler.stop()
