"""Dogfood: the linter runs clean over everything the repo ships.

Every registry workload and every mini-language example must lint
without crashing — the detectors have to survive real program shapes,
not just their unit-test plants. Several shipped sources intentionally
embody anti-patterns (that is their job), so the bar is "analyzes
without error", not "no findings"; the CI gate (`repro lint --fail-on`)
is exercised separately on the chatty/batched pair, where the expected
outcome is known.
"""

from pathlib import Path

import pytest

from repro.__main__ import main
from repro.staticcheck import boundary_findings_source, lint_source
from repro.workloads import get_workload, workload_names

MINI_EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples" / "mini").glob("*.py")
)


@pytest.mark.parametrize("name", workload_names())
def test_lint_analyzes_every_workload(name):
    source = get_workload(name).source(0.05)
    lint_source(source, f"{name}.py")
    boundary_findings_source(source, f"{name}.py")


@pytest.mark.parametrize(
    "path", MINI_EXAMPLES, ids=[p.stem for p in MINI_EXAMPLES]
)
def test_lint_analyzes_every_mini_example(path):
    source = path.read_text(encoding="utf-8")
    lint_source(source, path.name)
    boundary_findings_source(source, path.name)


def test_fail_on_gates_chatty(capsys):
    assert main(["lint", "--workload", "chatty", "--fail-on", "high"]) == 1
    assert "fail-on high" in capsys.readouterr().err


def test_fail_on_passes_batched(capsys):
    assert main(["lint", "--workload", "batched", "--fail-on", "low"]) == 0


def test_fail_on_threshold_respects_severity(capsys):
    # chatty also trips at medium/low; without the flag the exit is 0.
    assert main(["lint", "--workload", "chatty", "--fail-on", "low"]) == 1
    assert main(["lint", "--workload", "chatty"]) == 0
