"""Call-graph construction and native-reachability queries."""

from repro.interp.astcompile import compile_source
from repro.staticcheck import build_call_graph
from repro.staticcheck.callgraph import MODULE_NODE

SOURCE = (
    "def leaf(a, i):\n"
    "    return np.get(a, i)\n"
    "def middle(a, i):\n"
    "    return leaf(a, i) + 1\n"
    "def pure(x):\n"
    "    return x * 2\n"
    "a = np.arange(10)\n"
    "total = 0\n"
    "for i in range(10):\n"
    "    total = total + middle(a, i)\n"
    "print(pure(total))\n"
)


def graph():
    return build_call_graph(compile_source(SOURCE, "cg.py"))


def test_nodes_cover_functions_and_module():
    g = graph()
    assert set(g.nodes) == {"leaf", "middle", "pure", MODULE_NODE}


def test_direct_edges_resolved():
    g = graph()
    assert g.node("middle").calls == ["leaf"]
    assert g.node("pure").calls == []
    assert set(g.node(MODULE_NODE).calls) == {"middle", "pure"}


def test_native_sites_and_linenos():
    g = graph()
    assert g.node("leaf").native_sites == [("np", "get", 2)]
    assert g.node("middle").native_sites == []
    # The module body's own native site is the arange call.
    assert ("np", "arange", 7) in g.node(MODULE_NODE).native_sites


def test_transitive_reachability():
    g = graph()
    assert g.reachable_functions("middle") == frozenset({"middle", "leaf"})
    assert g.calls_native("middle")
    assert g.calls_native("leaf")
    assert not g.calls_native("pure")
    sites = g.transitive_native_sites("middle")
    assert ("np", "get", 2) in sites


def test_unknown_name_is_empty():
    g = graph()
    assert g.node("nope") is None
    assert g.reachable_functions("nope") == frozenset({"nope"})
    assert not g.calls_native("nope")


def test_recursive_functions_terminate():
    source = (
        "def ping(n):\n"
        "    if n > 0:\n"
        "        return pong(n - 1)\n"
        "    return np.arange(1)\n"
        "def pong(n):\n"
        "    return ping(n)\n"
        "print(ping(3).sum())\n"
    )
    g = build_call_graph(compile_source(source, "rec.py"))
    assert g.calls_native("ping")
    assert g.calls_native("pong")
    assert g.reachable_functions("ping") == frozenset({"ping", "pong"})
