"""Property-based tests of the streaming-aggregation sketches (DESIGN.md §12).

The scale-out serve plane answers ``/trend`` and ``/merge`` from bounded
sketches instead of replaying stored history, which is only sound if the
sketch algebra holds:

* :class:`RunningStats` is an exact, *mergeable* summary — merging
  per-shard stats must equal one stream's stats no matter how the stream
  was partitioned or in which order the parts fold (associativity and
  commutativity up to float rounding);
* :class:`ReservoirSample` keeps a fixed-capacity uniform sample whose
  weight invariants (``seen`` counts everything offered, merged ``seen``
  sums, retained values come from the union) survive any merge;
* a :class:`KeySketch` built from singleton sketches must reproduce the
  answers of :func:`repro.core.profile_data.merge_profiles` replaying the
  same profiles — per-line CPU shares to float precision, headline
  elapsed/peak statistics exactly;
* the schema-v6 ``sketch`` field round-trips through JSON, and schema-v5
  payloads (no such field) still load.

Hypothesis drives the inputs; the profile-backed properties scale one
real workload profile along elapsed/CPU/memory axes so every generated
history is a structurally valid profile set.
"""

import copy
import json
import math
import statistics

from hypothesis import given, settings, strategies as st
import pytest

from repro.core.profile_data import (
    ProfileData,
    SCHEMA_VERSION,
    merge_profiles,
)
from repro.errors import ProfileSchemaError
from repro.serve.jobs import execute_job
from repro.serve.streaming import (
    KeySketch,
    ReservoirSample,
    RunningStats,
    StreamingAggregator,
    sketch_of_profile,
)

values_st = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)

#: Per-profile scale factors: (elapsed, cpu time, allocation volume).
factor_st = st.tuples(
    st.floats(min_value=0.1, max_value=10.0),
    st.floats(min_value=0.1, max_value=10.0),
    st.floats(min_value=0.1, max_value=10.0),
)


def stats_of(values):
    stats = RunningStats()
    for value in values:
        stats.push(value)
    return stats


def close(a, b, rel=1e-9, abs_tol=1e-6):
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)


# -- RunningStats ----------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(values_st)
def test_running_stats_match_exact_statistics(values):
    """Welford's streaming update reproduces the batch formulas."""
    stats = stats_of(values)
    assert stats.count == len(values)
    assert close(stats.mean, statistics.fmean(values))
    assert close(stats.variance, statistics.pvariance(values), abs_tol=1e-3)
    assert stats.min == min(values)
    assert stats.max == max(values)


@settings(max_examples=100, deadline=None)
@given(values_st, values_st)
def test_running_stats_merge_is_commutative(a, b):
    ab = stats_of(a).merge(stats_of(b))
    ba = stats_of(b).merge(stats_of(a))
    assert ab.count == ba.count
    assert close(ab.mean, ba.mean)
    assert close(ab.variance, ba.variance, abs_tol=1e-3)
    assert (ab.min, ab.max) == (ba.min, ba.max)


@settings(max_examples=100, deadline=None)
@given(values_st, values_st, values_st)
def test_running_stats_merge_is_associative(a, b, c):
    left = stats_of(a).merge(stats_of(b)).merge(stats_of(c))
    right = stats_of(a).merge(stats_of(b).merge(stats_of(c)))
    assert left.count == right.count
    assert close(left.mean, right.mean)
    assert close(left.variance, right.variance, abs_tol=1e-3)
    assert (left.min, left.max) == (right.min, right.max)


@settings(max_examples=100, deadline=None)
@given(values_st, st.data())
def test_running_stats_partition_invariance(values, data):
    """Any sharding of the stream merges back to the single-stream stats
    — the property cross-shard ``/trend`` aggregation relies on."""
    cut_a = data.draw(st.integers(min_value=0, max_value=len(values)))
    cut_b = data.draw(st.integers(min_value=cut_a, max_value=len(values)))
    whole = stats_of(values)
    merged = (
        stats_of(values[:cut_a])
        .merge(stats_of(values[cut_a:cut_b]))
        .merge(stats_of(values[cut_b:]))
    )
    assert merged.count == whole.count
    assert close(merged.mean, whole.mean)
    assert close(merged.variance, whole.variance, abs_tol=1e-3)
    assert (merged.min, merged.max) == (whole.min, whole.max)


@settings(max_examples=60, deadline=None)
@given(values_st)
def test_running_stats_round_trip(values):
    stats = stats_of(values)
    again = RunningStats.from_dict(json.loads(json.dumps(stats.to_dict())))
    assert again.to_dict() == stats.to_dict()
    assert (again.count, again.mean, again.variance) == (
        stats.count,
        stats.mean,
        stats.variance,
    )


# -- ReservoirSample -------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    values_st,
    st.integers(min_value=1, max_value=32),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_reservoir_weight_invariants(values, capacity, seed):
    """``seen`` counts every offer; the sample never exceeds capacity and
    only ever holds offered values; a replay reproduces it exactly."""
    sample = ReservoirSample(capacity, seed=seed)
    for value in values:
        sample.push(value)
    assert sample.seen == len(values)
    assert len(sample.values) == min(len(values), capacity)
    pool = list(values)
    for kept in sample.values:
        assert kept in pool
        pool.remove(kept)  # multiset containment, not just membership
    replay = ReservoirSample(capacity, seed=seed)
    for value in values:
        replay.push(value)
    assert replay.values == sample.values


@settings(max_examples=100, deadline=None)
@given(
    values_st,
    values_st,
    st.integers(min_value=1, max_value=32),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_reservoir_merge_preserves_weights(a, b, capacity, seed):
    """Merged ``seen`` is the union count; the merged sample is as full
    as the inputs allow and drawn entirely from their union."""
    ra = ReservoirSample(capacity, seed=seed)
    rb = ReservoirSample(capacity, seed=seed + 1)
    for value in a:
        ra.push(value)
    for value in b:
        rb.push(value)
    kept_a, kept_b = len(ra.values), len(rb.values)
    merged = ra.merge(rb)
    assert merged.seen == len(a) + len(b)
    assert len(merged.values) == min(capacity, kept_a + kept_b)
    pool = a + b
    for kept in merged.values:
        assert kept in pool
        pool.remove(kept)


@settings(max_examples=60, deadline=None)
@given(
    values_st,
    st.integers(min_value=1, max_value=32),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_reservoir_quantiles_within_sample_range(values, capacity, seed):
    sample = ReservoirSample(capacity, seed=seed)
    for value in values:
        sample.push(value)
    for q in (0.0, 0.5, 0.9, 1.0):
        assert min(values) <= sample.quantile(q) <= max(values)


# -- sketches vs the exact merge ------------------------------------------


@pytest.fixture(scope="module")
def base_profile():
    """One real stored-profile payload the properties scale into histories."""
    return ProfileData.from_json(
        execute_job(
            {
                "id": "prop-base",
                "workload": "pprint",
                "profiler": "scalene",
                "mode": "full",
                "scale": 0.05,
                "config": {},
            }
        )
    )


def variant(base, index, elapsed_f, cpu_f, mem_f):
    """A structurally valid rescaling of the base profile (one 'run')."""
    profile = copy.deepcopy(base)
    profile.elapsed *= elapsed_f
    profile.cpu_python_time *= cpu_f
    profile.cpu_native_time *= cpu_f
    profile.cpu_system_time *= cpu_f
    profile.total_alloc_mb *= mem_f
    profile.peak_footprint_mb *= mem_f
    for line in profile.lines:
        line.mem_peak_mb *= mem_f
    profile.sketch = None
    return profile


@settings(max_examples=20, deadline=None)
@given(st.lists(factor_st, min_size=2, max_size=6))
def test_sketch_matches_exact_merge(base_profile, factors):
    """Folded singleton sketches reproduce ``merge_profiles``: per-line
    CPU shares to float precision, headline stats exactly."""
    profiles = [
        variant(base_profile, i, *f) for i, f in enumerate(factors)
    ]
    merged = merge_profiles(profiles)
    folded = sketch_of_profile(profiles[0], {"id": "p0"})
    for i, profile in enumerate(profiles[1:], start=1):
        folded.merge(sketch_of_profile(profile, {"id": f"p{i}"}))

    assert folded.runs == len(profiles)
    shares = {
        (row["filename"], row["lineno"]): row["cpu_percent"]
        for row in folded.line_table()
    }
    for line in merged.lines:
        assert close(
            shares[(line.filename, line.lineno)],
            line.cpu_total_percent,
            rel=1e-9,
            abs_tol=1e-9,
        )
    # Headline stats: the sketch keeps per-run statistics whose sum /
    # extremes must equal the exact merge's totals.
    assert close(folded.elapsed.mean * folded.runs, merged.elapsed)
    assert close(
        folded.elapsed.mean, statistics.fmean(p.elapsed for p in profiles)
    )
    assert folded.peak_mb.peak == max(p.peak_footprint_mb for p in profiles)
    assert close(
        folded.total_cpu_s,
        sum(
            p.cpu_python_time + p.cpu_native_time + p.cpu_system_time
            for p in profiles
        ),
    )


@settings(max_examples=15, deadline=None)
@given(st.lists(factor_st, min_size=3, max_size=6), st.randoms(use_true_random=False))
def test_key_sketch_merge_order_independent(base_profile, factors, rng):
    """Folding shard sketches in any order gives the same answers."""
    singletons = [
        sketch_of_profile(variant(base_profile, i, *f), {"id": f"p{i}"}).to_dict()
        for i, f in enumerate(factors)
    ]
    canonical = KeySketch.from_dict(singletons[0])
    for payload in singletons[1:]:
        canonical.merge(KeySketch.from_dict(payload))
    shuffled_payloads = list(singletons)
    rng.shuffle(shuffled_payloads)
    shuffled = KeySketch.from_dict(shuffled_payloads[0])
    for payload in shuffled_payloads[1:]:
        shuffled.merge(KeySketch.from_dict(payload))

    assert shuffled.runs == canonical.runs
    assert close(shuffled.total_cpu_s, canonical.total_cpu_s)
    assert close(shuffled.elapsed.mean, canonical.elapsed.mean)
    assert close(shuffled.elapsed.variance, canonical.elapsed.variance, abs_tol=1e-3)
    assert shuffled.peak_mb.peak == canonical.peak_mb.peak
    a = {(r["filename"], r["lineno"]): r["cpu_percent"] for r in shuffled.line_table()}
    b = {(r["filename"], r["lineno"]): r["cpu_percent"] for r in canonical.line_table()}
    assert a.keys() == b.keys()
    assert all(close(a[k], b[k]) for k in a)


@settings(max_examples=15, deadline=None)
@given(st.lists(factor_st, min_size=1, max_size=5))
def test_aggregator_state_round_trips(base_profile, factors):
    """The daemon's persisted sketch state restores bit-for-bit, and
    ingest stays exactly-once across the restore."""
    aggregator = StreamingAggregator()
    for i, f in enumerate(factors):
        entry = {
            "id": f"p{i}",
            "workload": "pprint",
            "profiler": "scalene",
            "config_hash": "c0",
            "created_at": float(i),
        }
        assert aggregator.ingest(entry, variant(base_profile, i, *f))
    state = json.loads(json.dumps(aggregator.to_dict()))
    restored = StreamingAggregator.from_dict(state)
    assert restored.to_dict() == aggregator.to_dict()
    # Exactly-once survives the restore: every id is already seen.
    assert not restored.ingest(
        {"id": "p0", "workload": "pprint", "profiler": "scalene", "config_hash": "c0"},
        variant(base_profile, 0, *factors[0]),
    )
    assert restored.sketch(workload="pprint").runs == len(factors)


# -- schema v6 -------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(st.lists(factor_st, min_size=2, max_size=5))
def test_schema_v6_sketch_round_trips(base_profile, factors):
    """A merged profile's sketch survives JSON serialization unchanged."""
    merged = merge_profiles(
        [variant(base_profile, i, *f) for i, f in enumerate(factors)]
    )
    assert merged.sketch is not None
    again = ProfileData.from_json(merged.to_json())
    assert again.sketch == merged.sketch
    assert again.to_dict() == merged.to_dict()
    assert KeySketch.from_dict(again.sketch).runs == len(factors)


@settings(max_examples=10, deadline=None)
@given(factor_st)
def test_schema_v5_payloads_still_load(base_profile, factors):
    """A v5 payload (no ``sketch`` key) loads with ``sketch=None``."""
    payload = variant(base_profile, 0, *factors).to_dict()
    assert payload["schema"] == SCHEMA_VERSION
    payload["schema"] = 5
    del payload["sketch"]
    old = ProfileData.from_dict(json.loads(json.dumps(payload)))
    assert old.sketch is None
    assert old.to_dict()["schema"] == SCHEMA_VERSION  # re-saves as v6


def test_unknown_schema_is_rejected(base_profile):
    payload = base_profile.to_dict()
    payload["schema"] = SCHEMA_VERSION + 1
    with pytest.raises(ProfileSchemaError, match="unsupported profile schema"):
        ProfileData.from_dict(payload)
