"""Integration tests: Scalene's CPU profiling on the simulated runtime (§2)."""

import pytest

from repro import SimProcess
from repro.core import Scalene
from repro.errors import ProfilerError


def profile(source, mode="cpu", **process_kwargs):
    process = SimProcess(source, filename="t.py", **process_kwargs)
    return Scalene.run(process, mode=mode), process


def test_python_vs_native_time_separation():
    """§2.1: pure-Python loops vs long native calls must be teased apart."""
    source = (
        "s = 0\n"
        "for i in range(8000):\n"
        "    s = s + i * 2\n"  # line 3: pure Python
        "native_work(2.0)\n"  # line 4: one long native call
    )
    prof, _ = profile(source)
    python_line = prof.line(3)
    native_line = prof.line(4)
    assert python_line is not None and native_line is not None
    # The hot Python line is overwhelmingly Python time.
    assert python_line.cpu_python_percent > 5 * python_line.cpu_native_percent
    # The native line is overwhelmingly native time.
    assert native_line.cpu_native_percent > 5 * native_line.cpu_python_percent
    # Rough magnitudes: both halves are substantial.
    assert python_line.cpu_python_percent > 20
    assert native_line.cpu_native_percent > 20


def test_system_time_for_blocking_io():
    source = (
        "s = 0\n"
        "for i in range(2000):\n"
        "    s = s + 1\n"
        "sleep(1.0)\n"  # line 4
    )
    prof, _ = profile(source)
    line = prof.line(4)
    assert line is not None
    assert line.cpu_system_percent > 30
    assert prof.cpu_system_time == pytest.approx(1.0, rel=0.3)


def test_cpu_accuracy_against_ground_truth():
    """Reported per-line shares should track the oracle within a few %."""
    source = (
        "def light():\n"
        "    t = 0\n"
        "    for i in range(300):\n"
        "        t = t + 1\n"
        "    return t\n"
        "def heavy():\n"
        "    t = 0\n"
        "    for i in range(2700):\n"
        "        t = t + 1\n"
        "    return t\n"
        "a = light()\n"
        "b = heavy()\n"
    )
    process = SimProcess(source, filename="t.py", collect_ground_truth=True)
    prof = Scalene.run(process, mode="cpu")
    gt = process.ground_truth
    gt_light = gt.function_time("light") / gt.total_time
    gt_heavy = gt.function_time("heavy") / gt.total_time

    def reported_share(lines):
        return sum(
            prof.line(lineno).cpu_total_percent / 100
            for lineno in lines
            if prof.line(lineno)
        )

    rep_light = reported_share(range(1, 6))
    rep_heavy = reported_share(range(6, 11))
    assert rep_heavy == pytest.approx(gt_heavy, abs=0.12)
    assert rep_light == pytest.approx(gt_light, abs=0.12)
    assert rep_heavy > 4 * rep_light


def test_sampling_overhead_is_low():
    """CPU-only Scalene should cost only a few percent (paper: ~1.02x)."""
    source = "s = 0\nfor i in range(20000):\n    s = s + 1\n"
    bare = SimProcess(source, filename="t.py")
    bare.run()
    base = bare.clock.wall

    process = SimProcess(source, filename="t.py")
    Scalene.run(process, mode="cpu")
    slowdown = process.clock.wall / base
    assert slowdown < 1.10
    assert slowdown >= 1.0


def test_start_stop_misuse_raises():
    process = SimProcess("x = 1\n", filename="t.py")
    scalene = Scalene(process, mode="cpu")
    with pytest.raises(ProfilerError):
        scalene.stop()
    scalene.start()
    with pytest.raises(ProfilerError):
        scalene.start()
    process.run()
    scalene.stop()
    with pytest.raises(ProfilerError):
        scalene.stop()


def test_timer_and_handler_restored_after_stop():
    process = SimProcess("x = 1\n", filename="t.py")
    scalene = Scalene(process, mode="cpu")
    scalene.start()
    process.run()
    scalene.stop()
    from repro.runtime.signals import SIGALRM, Timers

    assert process.signals.getitimer(Timers.ITIMER_REAL) == 0.0
    assert process.signals.get_handler(SIGALRM) is None
    assert not process.threading.join_impl.__name__.startswith("_patched")


def test_invalid_mode_rejected():
    process = SimProcess("x = 1\n", filename="t.py")
    with pytest.raises(ProfilerError):
        Scalene(process, mode="bogus")
