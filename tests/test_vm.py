"""Tests for the VM: semantics, memory modelling, refcounting."""

import pytest

from repro.errors import VMError
from repro.interp.vm import VMConfig
from repro.runtime.process import SimProcess


def run_and_capture(source, **kwargs):
    """Run a workload and return (process, final module globals)."""
    process = SimProcess(source, filename="t.py", **kwargs)
    captured = {}
    original = process._finalize

    def capture():
        captured.update(process.globals)
        # Keep heap-backed values alive through module teardown so tests
        # can inspect them after the run.
        from repro.interp.objects import incref

        for value in captured.values():
            incref(value)
        original()

    process._finalize = capture
    process.run()
    return process, captured


def test_arithmetic_and_control_flow():
    source = (
        "total = 0\n"
        "for i in range(10):\n"
        "    if i % 2 == 0:\n"
        "        total = total + i\n"
        "    else:\n"
        "        total = total - 1\n"
        "while total < 30:\n"
        "    total = total + 7\n"
    )
    _, g = run_and_capture(source)
    expected = 0
    for i in range(10):
        expected = expected + i if i % 2 == 0 else expected - 1
    while expected < 30:
        expected += 7
    assert g["total"] == expected


def test_function_calls_and_recursion():
    source = (
        "def fib(n):\n"
        "    if n < 2:\n"
        "        return n\n"
        "    return fib(n - 1) + fib(n - 2)\n"
        "r = fib(10)\n"
    )
    _, g = run_and_capture(source)
    assert g["r"] == 55


def test_bool_ops_and_ternary():
    source = (
        "a = 1 < 2 and 3 < 4\n"
        "b = 1 > 2 or 5\n"
        "c = 10 if a else 20\n"
        "d = not a\n"
    )
    _, g = run_and_capture(source)
    assert g["a"] is True
    assert g["b"] == 5
    assert g["c"] == 10
    assert g["d"] is False


def test_containers():
    source = (
        "xs = [1, 2, 3]\n"
        "xs.append(4)\n"
        "d = {'a': 1}\n"
        "d['b'] = 2\n"
        "n = len(xs) + len(d)\n"
        "first = xs[0]\n"
        "tail = xs[1:3]\n"
        "has = 'a' in d\n"
        "a, b = (10, 20)\n"
    )
    _, g = run_and_capture(source)
    assert g["xs"].items == [1, 2, 3, 4]
    assert g["d"].data == {"a": 1, "b": 2}
    assert g["n"] == 6
    assert g["first"] == 1
    assert g["tail"].items == [2, 3]
    assert g["has"] is True
    assert g["a"] == 10 and g["b"] == 20


def test_dict_iteration_and_methods():
    source = (
        "d = {'x': 1, 'y': 2}\n"
        "total = 0\n"
        "for k in d:\n"
        "    total = total + d[k]\n"
        "vals = d.values()\n"
    )
    _, g = run_and_capture(source)
    assert g["total"] == 3
    assert g["vals"] == [1, 2]


def test_globals_from_function():
    source = (
        "counter = 0\n"
        "def bump():\n"
        "    global counter\n"
        "    counter = counter + 1\n"
        "bump()\n"
        "bump()\n"
    )
    _, g = run_and_capture(source)
    assert g["counter"] == 2


def test_name_error():
    with pytest.raises(VMError, match="NameError"):
        SimProcess("x = missing\n", filename="t.py").run()


def test_arity_error():
    source = "def f(a, b):\n    return a\nf(1)\n"
    with pytest.raises(VMError, match="takes 2 arguments"):
        SimProcess(source, filename="t.py").run()


def test_python_time_ground_truth_attribution():
    source = (
        "x = 0\n"
        "for i in range(100):\n"
        "    x = x + 1\n"  # line 3: the hot line
        "y = 1\n"
    )
    process, _ = run_and_capture(source, collect_ground_truth=True)
    gt = process.ground_truth
    hot = gt.lines[("t.py", 3)]
    cold = gt.lines[("t.py", 4)]
    assert hot.python_time > cold.python_time * 10


def test_native_time_ground_truth():
    source = "native_work(0.5)\nx = 1\n"
    process, _ = run_and_capture(source, collect_ground_truth=True)
    line = process.ground_truth.lines[("t.py", 1)]
    assert line.native_time == pytest.approx(0.5, rel=1e-6)


def test_memory_footprint_lifecycle():
    source = (
        "buf = py_buffer(5000000)\n"
        "del buf\n"
    )
    process, _ = run_and_capture(source)
    assert process.mem.peak_footprint >= 5_000_000
    assert process.mem.logical_footprint() < 100_000  # churn residue only


def test_list_retains_and_releases_buffers():
    source = (
        "keep = []\n"
        "for i in range(5):\n"
        "    keep.append(py_buffer(1000000))\n"
        "keep.clear()\n"
    )
    process, _ = run_and_capture(source)
    assert process.mem.peak_footprint >= 5_000_000
    assert process.mem.logical_footprint() < 200_000


def test_rebinding_frees_old_object():
    source = (
        "x = py_buffer(3000000)\n"
        "x = py_buffer(1000)\n"  # rebinding frees the 3 MB buffer
        "y = 1\n"
    )
    process, _ = run_and_capture(source)
    # After rebinding, the big buffer is gone from the live footprint.
    assert process.mem.peak_footprint >= 3_000_000


def test_function_locals_released_on_return():
    source = (
        "def f():\n"
        "    tmp = py_buffer(2000000)\n"
        "    return 1\n"
        "r = f()\n"
    )
    process, _ = run_and_capture(source)
    assert process.mem.logical_footprint() < 200_000


def test_returned_object_survives_frame_teardown():
    source = (
        "def make():\n"
        "    b = py_buffer(1000000)\n"
        "    return b\n"
        "kept = make()\n"
        "n = len(kept)\n"
    )
    _, g = run_and_capture(source)
    assert g["n"] == 1_000_000


def test_pop_top_releases_floating_temporary():
    source = "py_buffer(4000000)\nx = 1\n"
    process, _ = run_and_capture(source)
    assert process.mem.logical_footprint() < 200_000


def test_churn_generates_allocation_volume_without_footprint():
    source = (
        "x = 0\n"
        "for i in range(200):\n"
        "    x = x + i * 2 - 1\n"
    )
    config = VMConfig()
    process, _ = run_and_capture(source, vm_config=config)
    pym = process.mem.pymalloc
    assert pym.total_bytes_allocated > 10_000  # plenty of churn volume
    assert process.mem.logical_footprint() < 50_000


def test_churn_can_be_disabled():
    source = "x = 1 + 2\n"
    config = VMConfig(churn_enabled=False)
    process, _ = run_and_capture(source, vm_config=config)
    # Only frame objects allocate.
    assert process.mem.pymalloc.total_allocs < 5


def test_stdout_capture():
    process, _ = run_and_capture("print('hello', 42)\n")
    assert process.stdout == ["hello 42"]


def test_process_runs_only_once():
    process = SimProcess("x = 1\n", filename="t.py")
    process.run()
    with pytest.raises(VMError):
        process.run()


def test_wall_time_advances_with_op_cost():
    config = VMConfig(op_cost=1e-3)
    process, _ = run_and_capture("x = 1\ny = 2\n", vm_config=config)
    # A handful of instructions at 1 ms each.
    assert process.clock.wall >= 4e-3
    assert process.clock.cpu == pytest.approx(process.clock.wall)
