"""Tests for region profiling (profile_start/stop) and the tracemalloc
baseline (§3.4's status quo)."""

import pytest

from repro import SimProcess
from repro.baselines import make_profiler
from repro.baselines.tracemalloc_like import TracemallocBaseline
from repro.core import Scalene
from repro.core.config import ScaleneConfig


# -- region profiling -----------------------------------------------------


def test_start_paused_profiles_only_the_region():
    source = (
        "s = 0\n"
        "for i in range(4000):\n"
        "    s = s + 1\n"  # line 3: OUTSIDE the profiled region
        "profile_start()\n"
        "t = 0\n"
        "for i in range(4000):\n"
        "    t = t + 1\n"  # line 7: INSIDE the region
        "profile_stop()\n"
        "u = 0\n"
        "for i in range(4000):\n"
        "    u = u + 1\n"  # line 11: outside again
    )
    process = SimProcess(source, filename="r.py")
    config = ScaleneConfig(mode="cpu", start_paused=True)
    scalene = Scalene(process, config=config)
    scalene.start()
    process.run()
    profile = scalene.stop()
    inside = profile.line(7)
    assert inside is not None
    assert inside.cpu_python_percent > 30
    outside = profile.line(3)
    outside_pct = outside.cpu_python_percent if outside else 0.0
    assert inside.cpu_python_percent > 5 * max(outside_pct, 1.0)


def test_memory_sampling_paused_region_excluded():
    source = (
        "profile_stop()\n"
        "a = py_buffer(50000000)\n"  # unprofiled allocation
        "del a\n"
        "profile_start()\n"
        "b = py_buffer(30000000)\n"  # profiled allocation (line 5)
        "del b\n"
    )
    process = SimProcess(source, filename="r.py")
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()
    assert profile.peak_footprint_mb == pytest.approx(30 * 1e6 / (1 << 20), rel=0.1)
    assert profile.line(2) is None or profile.line(2).mem_peak_mb == 0


def test_profile_toggles_are_noops_without_profiler():
    process = SimProcess("profile_start()\nprofile_stop()\nx = 1\n", filename="r.py")
    process.run()  # must not raise


def test_pause_resume_idempotent():
    process = SimProcess("x = 1\n", filename="r.py")
    scalene = Scalene(process, mode="cpu")
    scalene.start()
    scalene.pause()
    scalene.pause()
    scalene.resume()
    scalene.resume()
    process.run()
    scalene.stop()


# -- tracemalloc baseline -----------------------------------------------------


def test_tracemalloc_overhead_is_about_4x():
    """§3.4: 'just activating tracemalloc can slow applications by 4x'."""
    source = "s = 0\nfor i in range(8000):\n    s = s + i * 2\n"
    bare = SimProcess(source, filename="t.py")
    bare.run()
    process = SimProcess(source, filename="t.py")
    profiler = make_profiler("tracemalloc", process)
    profiler.start()
    process.run()
    profiler.stop()
    slowdown = process.clock.wall / bare.clock.wall
    assert 2.5 < slowdown < 6.5


def test_tracemalloc_snapshot_diff_finds_growth():
    source = (
        "cache = []\n"
        "snap()\n"
        "for i in range(10):\n"
        "    cache.append(py_buffer(1000000))\n"  # line 4: the grower
        "snap()\n"
    )
    process = SimProcess(source, filename="t.py")
    profiler = TracemallocBaseline(process)
    from repro.interp.objects import NativeFunction

    process.builtins["snap"] = NativeFunction(
        "snap", lambda ctx, a, k: profiler.take_snapshot()
    )
    profiler.start()
    process.run()
    diffs = profiler.compare_snapshots(0, 1)
    profiler.stop()
    assert diffs
    top = diffs[0]
    assert top.lineno == 4
    assert top.growth_bytes >= 10_000_000
    # 10 buffers plus incidental interpreter allocations (list growth).
    assert 10 <= top.count_growth <= 15


def test_tracemalloc_tracks_live_not_freed():
    source = (
        "keep = py_buffer(5000000)\n"
        "drop = py_buffer(7000000)\n"
        "del drop\n"
    )
    process = SimProcess(source, filename="t.py")
    profiler = TracemallocBaseline(process)
    profiler.start()
    process.run()
    # Snapshot semantics: freed allocations leave the live set; we check
    # via the per-event registry before teardown using event counts.
    report = profiler.stop()
    assert report.total_samples > 4  # saw the events


def test_scalene_leak_detection_is_far_cheaper_than_tracemalloc():
    """The headline of §3.4: leak detection piggybacks at ~Scalene-full
    cost (~1.3x) instead of tracemalloc's ~4x."""
    source = "s = 0\nfor i in range(8000):\n    s = s + i\n"
    bare = SimProcess(source, filename="t.py")
    bare.run()

    with_scalene = SimProcess(source, filename="t.py")
    Scalene.run(with_scalene, mode="full")
    scalene_slowdown = with_scalene.clock.wall / bare.clock.wall

    with_tm = SimProcess(source, filename="t.py")
    profiler = make_profiler("tracemalloc", with_tm)
    profiler.start()
    with_tm.run()
    profiler.stop()
    tm_slowdown = with_tm.clock.wall / bare.clock.wall

    assert scalene_slowdown < 2.0
    assert tm_slowdown > 1.6 * scalene_slowdown
