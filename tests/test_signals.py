"""Tests for interval timers and signal-delivery semantics (paper §2)."""

import pytest

from repro.errors import SignalError
from repro.runtime.clock import VirtualClock
from repro.runtime.signals import (
    SIGALRM,
    SIGVTALRM,
    SignalManager,
    Timers,
)


class FakeThread:
    def __init__(self, is_main=True):
        self.is_main = is_main
        self.ident = 1 if is_main else 2


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def signals(clock):
    return SignalManager(clock)


def test_virtual_timer_fires_on_cpu_time(clock, signals):
    signals.setitimer(Timers.ITIMER_VIRTUAL, 0.01)
    clock.advance_wall(1.0)  # wall-only time must NOT fire a virtual timer
    assert not signals.has_pending
    clock.advance_cpu(0.011)
    assert signals.has_pending


def test_real_timer_fires_on_wall_time(clock, signals):
    signals.setitimer(Timers.ITIMER_REAL, 0.01)
    clock.advance_wall(0.02)
    assert signals.has_pending


def test_multiple_expirations_collapse(clock, signals):
    signals.setitimer(Timers.ITIMER_REAL, 0.01)
    clock.advance_wall(0.10)  # ten intervals at once
    delivered = []
    signals.set_handler(SIGALRM, lambda s: delivered.append(s))
    count = signals.deliver_pending(FakeThread())
    assert count == 1
    assert delivered == [SIGALRM]
    assert signals.collapsed_count >= 9


def test_timer_rearms_after_delivery(clock, signals):
    signals.setitimer(Timers.ITIMER_REAL, 0.01)
    delivered = []
    signals.set_handler(SIGALRM, lambda s: delivered.append(clock.wall))
    for _ in range(5):
        clock.advance_wall(0.01)
        signals.deliver_pending(FakeThread())
    assert len(delivered) == 5


def test_delivery_refused_for_subthread(clock, signals):
    signals.setitimer(Timers.ITIMER_REAL, 0.01)
    clock.advance_wall(0.02)
    with pytest.raises(SignalError):
        signals.deliver_pending(FakeThread(is_main=False))


def test_no_handler_means_signal_dropped(clock, signals):
    signals.setitimer(Timers.ITIMER_REAL, 0.01)
    clock.advance_wall(0.02)
    assert signals.deliver_pending(FakeThread()) == 0
    assert not signals.has_pending


def test_disarm_with_zero_interval(clock, signals):
    signals.setitimer(Timers.ITIMER_REAL, 0.01)
    signals.setitimer(Timers.ITIMER_REAL, 0)
    clock.advance_wall(1.0)
    assert not signals.has_pending
    assert signals.getitimer(Timers.ITIMER_REAL) == 0.0


def test_getitimer_reports_interval(signals):
    signals.setitimer(Timers.ITIMER_VIRTUAL, 0.5)
    assert signals.getitimer(Timers.ITIMER_VIRTUAL) == 0.5


def test_invalid_timer_kind_rejected(signals):
    with pytest.raises(SignalError):
        signals.setitimer("bogus", 0.1)
    with pytest.raises(SignalError):
        signals.setitimer(Timers.ITIMER_REAL, -1.0)


def test_raise_signal_directly(signals):
    signals.raise_signal(SIGVTALRM)
    got = []
    signals.set_handler(SIGVTALRM, lambda s: got.append(s))
    signals.deliver_pending(FakeThread())
    assert got == [SIGVTALRM]


def test_handler_removal(signals):
    signals.set_handler(SIGALRM, lambda s: None)
    assert signals.get_handler(SIGALRM) is not None
    signals.set_handler(SIGALRM, None)
    assert signals.get_handler(SIGALRM) is None


def test_deferred_delivery_measures_delay(clock, signals):
    """The core of §2.1: a signal that fires during 'native' execution is
    observed late; the delay equals the native execution time beyond q."""
    q = 0.01
    signals.setitimer(Timers.ITIMER_VIRTUAL, q)
    observed = []
    last_cpu = [0.0]

    def handler(signum):
        elapsed = clock.cpu - last_cpu[0]
        last_cpu[0] = clock.cpu
        observed.append(elapsed)

    signals.set_handler(SIGVTALRM, handler)
    # Simulate a 50 ms native call: CPU advances with no delivery chances.
    clock.advance_cpu(0.05)
    # Interpreter regains control: deliver at the next opcode boundary.
    signals.deliver_pending(FakeThread())
    assert observed and observed[0] == pytest.approx(0.05)
    # Scalene's inference: python += q, native += T - q.
    native = observed[0] - q
    assert native == pytest.approx(0.04)


def test_timer_firing_during_native_call_observed_exactly_once(clock, signals):
    """A timer that fires mid-native-call is seen once, T − q late — even
    when the native call spans a *second* expiry while the first is still
    pending (the pending-collapse edge of §2.1)."""
    q = 0.01
    signals.setitimer(Timers.ITIMER_VIRTUAL, q)
    observed_at = []
    signals.set_handler(SIGVTALRM, lambda s: observed_at.append(clock.cpu))
    # A 25 ms native call: the timer expires at 10 ms and AGAIN at 20 ms
    # while the first signal is still pending — the second must collapse.
    collapsed_before = signals.collapsed_count
    clock.advance_cpu(0.025)
    assert signals.has_pending
    assert signals.collapsed_count == collapsed_before + 1
    assert signals.deliver_pending(FakeThread()) == 1
    assert observed_at == [pytest.approx(0.025)]
    # The observable delay is T − q: 25 ms since arming, not the 10 ms q.
    assert observed_at[0] - q == pytest.approx(0.015)
    # No ghost second delivery at the next boundary.
    assert signals.deliver_pending(FakeThread()) == 0
    # The timer re-armed from its own schedule: the third expiry (30 ms
    # of CPU) delivers exactly once more.
    clock.advance_cpu(0.005)
    assert signals.deliver_pending(FakeThread()) == 1
    assert len(observed_at) == 2


# -- injected signal faults (repro.faults) ---------------------------------


def test_drop_fault_loses_expirations(clock, signals):
    from repro.faults import FaultInjector

    signals.faults = FaultInjector(signal_drop_rate=1.0, seed=1)
    signals.setitimer(Timers.ITIMER_REAL, 0.01)
    clock.advance_wall(0.1)
    assert not signals.has_pending  # every expiry was lost in the kernel
    assert signals.faults.counters["signals_dropped"] == 10


def test_coalesce_fault_merges_expirations(clock, signals):
    from repro.faults import FaultInjector

    signals.faults = FaultInjector(signal_coalesce_rate=1.0, seed=1)
    signals.setitimer(Timers.ITIMER_REAL, 0.01)
    collapsed_before = signals.collapsed_count
    clock.advance_wall(0.05)
    # Coalesced expiries count as collapse but never become pending.
    assert not signals.has_pending
    assert signals.collapsed_count - collapsed_before == 5
    assert signals.faults.counters["signals_coalesced"] == 5


def test_delay_fault_embargoes_delivery(clock, signals):
    """A delayed signal stays pending past its natural boundary and is
    still delivered exactly once — with a measurably larger delay."""
    from repro.faults import FaultInjector

    signals.faults = FaultInjector(signal_delay_rate=1.0, signal_delay_s=0.03, seed=1)
    signals.setitimer(Timers.ITIMER_REAL, 0.01)
    delivered = []
    signals.set_handler(SIGALRM, lambda s: delivered.append(clock.wall))
    clock.advance_wall(0.01)
    assert signals.has_pending
    # The natural boundary: the embargo holds the signal back.
    assert signals.deliver_pending(FakeThread()) == 0
    assert signals.has_pending
    # A second expiry while the first is embargoed collapses into it
    # (and re-extends the embargo to 0.02 + 0.03).
    clock.advance_wall(0.01)
    assert signals.deliver_pending(FakeThread()) == 0
    # Disarm so further expiries stop extending the embargo, then wait
    # it out: exactly one delivery, measurably late.
    signals.setitimer(Timers.ITIMER_REAL, 0)
    clock.advance_wall(0.035)
    assert signals.deliver_pending(FakeThread()) == 1
    assert len(delivered) == 1
    assert delivered[0] >= 0.02 + 0.03
    assert signals.faults.counters["signals_delayed"] == 2


def test_clear_resets_embargo(clock, signals):
    from repro.faults import FaultInjector

    signals.faults = FaultInjector(signal_delay_rate=1.0, signal_delay_s=10.0, seed=1)
    signals.setitimer(Timers.ITIMER_REAL, 0.01)
    clock.advance_wall(0.01)
    signals.clear()
    assert not signals.has_pending
    assert not signals._embargo
