"""Unit tests for profiler internals: attribution, tracers, samplers."""

import pytest

from repro import SimProcess
from repro.core.attribution import profiled_location, thread_location
from repro.core.config import ScaleneConfig
from repro.core.copy_volume import CopyVolumeProfiler
from repro.core.memory_profiler import MemoryProfiler
from repro.core.stats import ScaleneStats
from repro.errors import ProfilerError
from repro.interp.code import CodeObject, Frame


def frame_for(filename: str, lineno: int, back=None, name="fn"):
    code = CodeObject(name=name, filename=filename)
    frame = Frame(code, {})
    frame.lineno = lineno
    frame.back = back
    return frame


# -- attribution -----------------------------------------------------------


def test_profiled_location_skips_library_frames():
    app_frame = frame_for("app.py", 10, name="caller")
    lib_frame = frame_for("<native>", 99, back=app_frame, name="lib_fn")
    location = profiled_location(lib_frame, {"app.py"})
    assert location == ("app.py", 10, "caller")


def test_profiled_location_none_outside_profiled_code():
    lib_frame = frame_for("lib.py", 5)
    assert profiled_location(lib_frame, {"app.py"}) is None


def test_thread_location_without_frame():
    class T:
        frame = None

    assert thread_location(T(), {"app.py"}) is None
    assert thread_location(None, {"app.py"}) is None


# -- memory profiler unit behaviour -----------------------------------------


def make_mem_profiler(threshold=10 * 1024 * 1024):
    process = SimProcess("x = 1\n", filename="m.py")
    config = ScaleneConfig(memory_threshold=threshold)
    profiler = MemoryProfiler(process, config, ScaleneStats())
    profiler.install()
    return process, profiler


def test_memory_profiler_double_install_rejected():
    process, profiler = make_mem_profiler()
    with pytest.raises(ProfilerError):
        profiler.install()
    profiler.uninstall()
    profiler.uninstall()  # idempotent


def test_threshold_crossing_in_both_directions():
    process, profiler = make_mem_profiler(threshold=1000)
    thread = process.main_thread
    profiler.observe(1500, "python", 0x1, thread)
    assert profiler.sample_count == 1  # growth crossing
    profiler.observe(-1500, "python", 0x1, thread)
    assert profiler.sample_count == 2  # decline crossing
    profiler.uninstall()


def test_sub_threshold_oscillation_never_samples():
    process, profiler = make_mem_profiler(threshold=1000)
    thread = process.main_thread
    for i in range(100):
        profiler.observe(600, "python", i, thread)
        profiler.observe(-600, "python", i, thread)
    assert profiler.sample_count == 0
    assert profiler.event_count == 200
    profiler.uninstall()


def test_python_fraction_reflects_window_mix():
    process, profiler = make_mem_profiler(threshold=1000)
    stats = profiler._stats
    thread = process.main_thread
    profiler.observe(300, "python", 1, thread)
    profiler.observe(900, "native", 2, thread)  # crossing: 25% python
    assert profiler.sample_count == 1
    record = profiler.samplefile.all_records()[-1]
    assert ",0.250," in record
    profiler.uninstall()


def test_observe_charges_overhead():
    process, profiler = make_mem_profiler()
    before = process.clock.cpu
    profiler.observe(10, "python", 1, process.main_thread)
    assert process.clock.cpu > before
    profiler.uninstall()


# -- copy volume unit behaviour -----------------------------------------


class _Memcpy:
    def __init__(self, nbytes, thread):
        self.nbytes = nbytes
        self.thread = thread
        self.direction = "host"


def test_copy_volume_rate_sampling():
    process = SimProcess("x = 1\n", filename="m.py")
    config = ScaleneConfig(copy_sampling_rate=1000)
    stats = ScaleneStats()
    profiler = CopyVolumeProfiler(process, config, stats)
    profiler.install()
    thread = process.main_thread
    profiler.on_memcpy(_Memcpy(2500, thread))
    assert profiler.sample_count == 2  # two full 1000-byte units
    profiler.on_memcpy(_Memcpy(500, thread))
    assert profiler.sample_count == 3  # the residue carried over
    profiler.uninstall()
    assert stats.total_copy_mb > 0


def test_copy_volume_double_install_rejected():
    process = SimProcess("x = 1\n", filename="m.py")
    profiler = CopyVolumeProfiler(process, ScaleneConfig(), ScaleneStats())
    profiler.install()
    with pytest.raises(ProfilerError):
        profiler.install()
    profiler.uninstall()


# -- config validation -----------------------------------------


def test_config_validation():
    with pytest.raises(ProfilerError):
        ScaleneConfig(mode="turbo")
    with pytest.raises(ProfilerError):
        ScaleneConfig(cpu_sampling_interval=0)
    with pytest.raises(ProfilerError):
        ScaleneConfig(memory_threshold=-1)
    with pytest.raises(ProfilerError):
        ScaleneConfig(copy_sampling_rate=0)


def test_config_mode_properties():
    assert not ScaleneConfig(mode="cpu").profiles_memory
    assert not ScaleneConfig(mode="cpu").profiles_gpu
    assert ScaleneConfig(mode="cpu+gpu").profiles_gpu
    assert ScaleneConfig(mode="full").profiles_memory
    assert ScaleneConfig(mode="full").profiles_gpu


def test_scalene_config_mode_conflict():
    from repro.core import Scalene

    process = SimProcess("x = 1\n", filename="m.py")
    with pytest.raises(ProfilerError):
        Scalene(process, config=ScaleneConfig(mode="cpu"), mode="full")
