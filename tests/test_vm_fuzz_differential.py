"""Seeded differential fuzzing: the simulated VM vs. host CPython.

``tests/conftest.py`` hosts the generator (``generate_program``); each
seed deterministically produces one program in the supported subset,
which is executed by both the simulated interpreter and host ``exec``.
The printed output — the only observable channel the two share exactly —
must match line for line.

A failure's test id contains the seed; reproduce the program with::

    python -c "from tests.conftest import generate_program; print(generate_program(<seed>))"
"""

from __future__ import annotations

import os

import pytest

from repro.runtime.process import SimProcess

from .conftest import generate_program, generate_threaded_program

#: Number of fuzz seeds; override with REPRO_FUZZ_SEEDS (e.g. for a long
#: nightly run). The acceptance floor for this suite is 200.
NUM_SEEDS = max(1, int(os.environ.get("REPRO_FUZZ_SEEDS", "200")))

#: Fixed base so seed k means the same program in every environment.
SEED_BASE = 77_000


def run_simulated(source: str) -> list:
    process = SimProcess(source, filename="fuzz.py")
    process.run()
    return list(process.stdout)


def run_host(source: str) -> list:
    captured: list = []

    def host_print(*args):
        # Mirrors the simulated print builtin: space-joined str() of args.
        captured.append(" ".join(str(a) for a in args))

    namespace = {
        "print": host_print,
        "range": range,
        "len": len,
        "sum": sum,
    }
    exec(source, namespace)  # noqa: S102 - differential oracle
    return captured


@pytest.mark.parametrize("seed", range(SEED_BASE, SEED_BASE + NUM_SEEDS))
def test_fuzzed_program_matches_host(seed):
    source = generate_program(seed)
    sim_out = run_simulated(source)
    host_out = run_host(source)
    assert sim_out == host_out, (
        f"divergence at seed {seed}\n"
        f"--- program ---\n{source}\n"
        f"--- simulated ---\n" + "\n".join(sim_out) + "\n"
        f"--- host ---\n" + "\n".join(host_out)
    )


# ---------------------------------------------------------------------------
# Tier equivalence: interpreter vs trace-JIT, bit-identical observables
# ---------------------------------------------------------------------------

#: Seeds for the three-tier equivalence sweep; override with
#: REPRO_JIT_FUZZ_SEEDS (CI smoke runs a subset, the acceptance floor
#: for the full suite is 200).
NUM_JIT_SEEDS = max(1, int(os.environ.get("REPRO_JIT_FUZZ_SEEDS", "200")))

#: The three tier configurations: JIT off, default threshold, and every
#: loop forced hot immediately (threshold 0 maximizes trace coverage).
TIER_ENVS = {
    "off": {"REPRO_JIT": "0", "REPRO_JIT_THRESHOLD": None},
    "default": {"REPRO_JIT": "1", "REPRO_JIT_THRESHOLD": None},
    "forced": {"REPRO_JIT": "1", "REPRO_JIT_THRESHOLD": "0"},
}


def run_tier(source: str, env: dict, *, threaded: bool = False, mode: str = "cpu"):
    """Run ``source`` under one tier config with a profiler attached.

    Returns every cross-tier observable the equivalence contract covers:
    program stdout, the scheduler's context-switch count, the canonical
    profile JSON, and the final simulated cpu/wall clocks (compared as
    exact floats — the tiers must charge the clock identically, not just
    approximately).
    """
    from repro.core.scalene import Scalene

    saved = {key: os.environ.get(key) for key in env}
    try:
        for key, value in env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        process = SimProcess(source, filename="fuzz.py")
        if threaded:
            from repro.interp.libs import install_standard_libraries

            install_standard_libraries(process)
        profiler = Scalene(process, mode=mode)
        profiler.start()
        process.run()
        profile = profiler.stop()
        return (
            list(process.stdout),
            process.scheduler.switch_count,
            profile.to_json(),
            process.clock.cpu,
            process.clock.wall,
        )
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def assert_tiers_identical(source: str, *, threaded: bool = False, mode: str = "cpu"):
    results = {
        name: run_tier(source, env, threaded=threaded, mode=mode)
        for name, env in TIER_ENVS.items()
    }
    baseline = results["off"]
    for name, result in results.items():
        assert result == baseline, (
            f"tier {name!r} diverged from interpreter tier\n"
            f"--- program ---\n{source}\n"
            f"off:  switches={baseline[1]} cpu={baseline[3]!r} wall={baseline[4]!r}\n"
            f"{name}: switches={result[1]} cpu={result[3]!r} wall={result[4]!r}\n"
            f"stdout equal: {result[0] == baseline[0]}  "
            f"profile equal: {result[2] == baseline[2]}"
        )


@pytest.mark.jit
@pytest.mark.parametrize("seed", range(SEED_BASE, SEED_BASE + NUM_JIT_SEEDS))
def test_tier_equivalence(seed):
    """JIT off / default / forced produce bit-identical stdout, schedule,
    profile JSON, and clocks on every fuzzed program."""
    assert_tiers_identical(generate_program(seed))


@pytest.mark.jit
@pytest.mark.parametrize("seed", range(12))
def test_tier_equivalence_threaded(seed):
    """The threaded/async grammar stays tier-invariant: preemption points
    and the deterministic schedule are unchanged by trace execution."""
    assert_tiers_identical(generate_threaded_program(seed), threaded=True)


@pytest.mark.jit
@pytest.mark.parametrize("seed", range(SEED_BASE, SEED_BASE + 10))
def test_tier_equivalence_full_mode(seed):
    """With memory hooks installed (mode=full) traces take the loud
    allocation path — per-line memory attribution must still be
    bit-identical across tiers."""
    assert_tiers_identical(generate_program(seed), mode="full")


def test_generator_is_deterministic():
    assert generate_program(SEED_BASE) == generate_program(SEED_BASE)


def test_generator_covers_features():
    """Across the seed range the generator exercises every advertised
    construct (guards against silent generator regressions that would
    hollow out the differential coverage)."""
    corpus = "\n".join(generate_program(s) for s in range(SEED_BASE, SEED_BASE + 60))
    for token in ("if ", "while ", "for ", "try:", "except:", "def fn0",
                  ".append(", ".get(", "//", "%", "print("):
        assert token in corpus, f"generator never produced {token!r}"
