"""Seeded differential fuzzing: the simulated VM vs. host CPython.

``tests/conftest.py`` hosts the generator (``generate_program``); each
seed deterministically produces one program in the supported subset,
which is executed by both the simulated interpreter and host ``exec``.
The printed output — the only observable channel the two share exactly —
must match line for line.

A failure's test id contains the seed; reproduce the program with::

    python -c "from tests.conftest import generate_program; print(generate_program(<seed>))"
"""

from __future__ import annotations

import os

import pytest

from repro.runtime.process import SimProcess

from .conftest import generate_program

#: Number of fuzz seeds; override with REPRO_FUZZ_SEEDS (e.g. for a long
#: nightly run). The acceptance floor for this suite is 200.
NUM_SEEDS = max(1, int(os.environ.get("REPRO_FUZZ_SEEDS", "200")))

#: Fixed base so seed k means the same program in every environment.
SEED_BASE = 77_000


def run_simulated(source: str) -> list:
    process = SimProcess(source, filename="fuzz.py")
    process.run()
    return list(process.stdout)


def run_host(source: str) -> list:
    captured: list = []

    def host_print(*args):
        # Mirrors the simulated print builtin: space-joined str() of args.
        captured.append(" ".join(str(a) for a in args))

    namespace = {
        "print": host_print,
        "range": range,
        "len": len,
        "sum": sum,
    }
    exec(source, namespace)  # noqa: S102 - differential oracle
    return captured


@pytest.mark.parametrize("seed", range(SEED_BASE, SEED_BASE + NUM_SEEDS))
def test_fuzzed_program_matches_host(seed):
    source = generate_program(seed)
    sim_out = run_simulated(source)
    host_out = run_host(source)
    assert sim_out == host_out, (
        f"divergence at seed {seed}\n"
        f"--- program ---\n{source}\n"
        f"--- simulated ---\n" + "\n".join(sim_out) + "\n"
        f"--- host ---\n" + "\n".join(host_out)
    )


def test_generator_is_deterministic():
    assert generate_program(SEED_BASE) == generate_program(SEED_BASE)


def test_generator_covers_features():
    """Across the seed range the generator exercises every advertised
    construct (guards against silent generator regressions that would
    hollow out the differential coverage)."""
    corpus = "\n".join(generate_program(s) for s in range(SEED_BASE, SEED_BASE + 60))
    for token in ("if ", "while ", "for ", "try:", "except:", "def fn0",
                  ".append(", ".get(", "//", "%", "print("):
        assert token in corpus, f"generator never produced {token!r}"
