"""Tests for the heap-backed runtime value model and refcounting."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import VMError
from repro.interp.objects import (
    PyBuffer,
    SimDict,
    SimList,
    decref,
    incref,
    release_temp,
)
from repro.runtime.clock import VirtualClock
from repro.runtime.memsys import MemSubsystem


@pytest.fixture
def mem():
    return MemSubsystem(VirtualClock())


def test_pybuffer_lifecycle(mem):
    buf = PyBuffer(mem, 1_000_000)
    assert mem.logical_footprint() >= 1_000_000
    buf.incref()
    buf.decref()
    assert mem.logical_footprint() == 0
    assert mem.live_object_count == 0


def test_release_temp_only_frees_floating(mem):
    buf = PyBuffer(mem, 1000)
    buf.incref()
    release_temp(buf)  # rc == 1: not floating, must survive
    assert mem.logical_footprint() >= 1000
    buf.decref()
    assert mem.logical_footprint() == 0


def test_double_destroy_is_safe(mem):
    buf = PyBuffer(mem, 1000)
    buf.destroy()
    buf.destroy()  # idempotent
    assert mem.live_object_count == 0


def test_incref_decref_on_scalars_is_noop():
    incref(42)
    decref("hello")
    release_temp(3.14)


def test_simlist_growth_reallocates(mem):
    lst = SimList(mem)
    lst.incref()
    allocs_before = mem.pymalloc.total_allocs
    for i in range(100):
        lst.append(i)
    # Geometric growth: allocations happen, but far fewer than appends.
    growth_allocs = mem.pymalloc.total_allocs - allocs_before
    assert 1 <= growth_allocs < 30
    lst.decref()


def test_simlist_holds_children_alive(mem):
    lst = SimList(mem)
    lst.incref()
    child = PyBuffer(mem, 50_000)
    lst.append(child)
    release_temp(child)  # floating? no — the list holds it
    assert mem.logical_footprint() >= 50_000
    lst.pop()
    assert mem.logical_footprint() < 50_000
    lst.decref()


def test_simlist_clear_releases_children(mem):
    lst = SimList(mem)
    lst.incref()
    for _ in range(3):
        lst.append(PyBuffer(mem, 10_000))
    lst.clear()
    assert mem.logical_footprint() < 10_000
    lst.decref()
    assert mem.live_object_count == 0


def test_simlist_setitem_swaps_references(mem):
    lst = SimList(mem)
    lst.incref()
    a = PyBuffer(mem, 20_000)
    lst.append(a)
    b = PyBuffer(mem, 30_000)
    lst.setitem(0, b)
    # a was released, b retained.
    assert a.rc < 0 or a.rc == 0  # destroyed
    assert b.rc == 1
    lst.decref()


def test_simlist_slice_returns_new_list(mem):
    lst = SimList(mem, [1, 2, 3, 4])
    lst.incref()
    sub = lst.getitem(slice(1, 3))
    assert sub.items == [2, 3]
    sub.release_if_floating()
    lst.decref()


def test_simlist_errors(mem):
    lst = SimList(mem)
    lst.incref()
    with pytest.raises(VMError):
        lst.pop()
    with pytest.raises(VMError):
        lst.setitem(5, 1)
    with pytest.raises(VMError):
        lst.getitem(99)
    lst.decref()


def test_simdict_set_get_delete(mem):
    d = SimDict(mem)
    d.incref()
    d.setitem("k", 1)
    assert d.getitem("k") == 1
    assert d.contains("k")
    d.delitem("k")
    assert not d.contains("k")
    with pytest.raises(VMError):
        d.getitem("k")
    with pytest.raises(VMError):
        d.delitem("k")
    d.decref()


def test_simdict_value_refcounting(mem):
    d = SimDict(mem)
    d.incref()
    buf = PyBuffer(mem, 40_000)
    d.setitem("x", buf)
    assert buf.rc == 1
    d.setitem("x", 0)  # overwrite releases the buffer
    assert mem.logical_footprint() < 40_000
    d.decref()


def test_simdict_growth(mem):
    d = SimDict(mem)
    d.incref()
    allocs_before = mem.pymalloc.total_allocs
    for i in range(100):
        d.setitem(i, i)
    assert mem.pymalloc.total_allocs - allocs_before >= 1  # table regrew
    d.decref()
    assert mem.live_object_count == 0


def test_unknown_method_raises(mem):
    lst = SimList(mem)
    lst.incref()
    with pytest.raises(VMError, match="no attribute"):
        lst.sim_getattr("frobnicate")
    lst.decref()


@given(st.lists(st.sampled_from(["append", "pop", "clear"]), max_size=60))
def test_simlist_footprint_property(operations):
    """Property: after destroying the list, nothing remains allocated."""
    mem = MemSubsystem(VirtualClock())
    lst = SimList(mem)
    lst.incref()
    for op in operations:
        if op == "append":
            lst.append(PyBuffer(mem, 1000))
        elif op == "pop" and len(lst.items):
            lst.pop()
        elif op == "clear":
            lst.clear()
    lst.decref()
    assert mem.logical_footprint() == 0
    assert mem.live_object_count == 0
