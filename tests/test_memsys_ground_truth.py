"""Tests for the memory-subsystem facade and the ground-truth oracle."""

import pytest

from repro.runtime.clock import VirtualClock
from repro.runtime.ground_truth import GroundTruth
from repro.runtime.memsys import MemSubsystem


class FakeFrame:
    def __init__(self, filename="gt.py", lineno=7, name="fn"):
        self._loc = (filename, lineno, name)
        self.back = None

    def location(self):
        return self._loc


class FakeThread:
    def __init__(self, frame=None):
        self.frame = frame or FakeFrame()
        self.ident = 1
        self.is_main = True


def test_logical_footprint_tracks_both_domains():
    mem = MemSubsystem(VirtualClock())
    py = mem.py_alloc(1000)
    native = mem.native_alloc(2000)
    assert mem.logical_footprint() == 3000
    mem.py_free(py)
    assert mem.logical_footprint() == 2000
    mem.native_free(native)
    assert mem.logical_footprint() == 0


def test_peak_footprint_updates():
    mem = MemSubsystem(VirtualClock())
    a = mem.py_alloc(5000)
    mem.py_free(a)
    b = mem.py_alloc(3000)
    assert mem.peak_footprint >= 5000
    mem.py_free(b)


def test_scratch_is_footprint_neutral():
    mem = MemSubsystem(VirtualClock())
    mem.py_scratch(10_000_000)
    assert mem.logical_footprint() == 0
    assert mem.pymalloc.total_bytes_allocated >= 10_000_000


def test_rss_reflects_native_touch_only():
    mem = MemSubsystem(VirtualClock(), base_rss_bytes=0)
    mem.native_alloc(1_000_000, touch=False)
    untouched_rss = mem.rss()
    mem.native_alloc(1_000_000, touch=True)
    assert mem.rss() > untouched_rss


def test_ground_truth_time_attribution():
    gt = GroundTruth()
    thread = FakeThread()
    gt.record_python_time(thread, 0.5)
    gt.record_native_time(thread, 0.25)
    gt.record_system_time(thread, 0.1)
    line = gt.lines[("gt.py", 7)]
    assert line.python_time == 0.5
    assert line.native_time == 0.25
    assert line.system_time == 0.1
    assert line.total_time == pytest.approx(0.85)
    assert gt.total_time == pytest.approx(0.85)
    assert gt.function_time("fn") == pytest.approx(0.75)  # cpu only


def test_ground_truth_memory_attribution():
    gt = GroundTruth()
    thread = FakeThread()
    gt.record_alloc(thread, 1000, "python")
    gt.record_alloc(thread, 2000, "native")
    gt.record_free(thread, 400, "python")
    line = gt.lines[("gt.py", 7)]
    assert line.python_alloc_bytes == 1000
    assert line.native_alloc_bytes == 2000
    assert line.net_bytes == 2600


def test_ground_truth_handles_threadless_events():
    gt = GroundTruth()
    gt.record_python_time(None, 1.0)
    gt.record_alloc(None, 100, "python")
    assert gt.total_python_time == 1.0
    assert gt.lines == {}


def test_ground_truth_explicit_location_for_system_time():
    gt = GroundTruth()
    gt.record_system_time(None, 2.0, location=("io.py", 3, "wait"))
    assert gt.lines[("io.py", 3)].system_time == 2.0


def test_ground_truth_overhead_bucket():
    gt = GroundTruth()
    gt.record_overhead(0.125)
    assert gt.profiler_overhead == 0.125


def test_ground_truth_footprint_series():
    gt = GroundTruth()
    gt.record_footprint(0.0, 100)
    gt.record_footprint(1.0, 500)
    gt.record_footprint(2.0, 200)
    assert gt.peak_footprint == 500
    assert len(gt.footprint_series) == 3
