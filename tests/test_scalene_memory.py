"""Integration tests: Scalene's memory profiling (§3)."""

import pytest

from repro import SimProcess
from repro.core import Scalene
from repro.core.config import ScaleneConfig
from repro.interp.libs import install_standard_libraries
from repro.units import MiB


def run_full(source, config=None):
    process = SimProcess(source, filename="t.py")
    install_standard_libraries(process)
    scalene = Scalene(process, config=config, mode=None if config else "full")
    scalene.start()
    process.run()
    return scalene, scalene.stop(), process


def test_threshold_sampling_captures_significant_growth():
    source = (
        "keep = []\n"
        "for i in range(6):\n"
        "    keep.append(py_buffer(12000000))\n"  # each append crosses T
        "keep.clear()\n"
    )
    scalene, prof, _ = run_full(source)
    assert scalene.memory_profiler.sample_count >= 6
    line = prof.line(3)
    assert line is not None
    assert line.mem_peak_mb >= 60
    assert prof.peak_footprint_mb >= 68


def test_footprint_neutral_churn_takes_no_samples():
    """§3.2: allocation volume with no footprint change → ~zero samples."""
    source = (
        "for i in range(300):\n"
        "    scratch(1000000)\n"  # 300 MB of volume, footprint flat
    )
    scalene, prof, _ = run_full(source)
    assert scalene.memory_profiler.event_count > 600
    assert scalene.memory_profiler.sample_count <= 1


def test_python_vs_native_memory_attribution():
    source = (
        "a = py_buffer(40000000)\n"  # line 1: Python-domain
        "b = np.zeros(5000000)\n"  # line 2: native-domain (40 MB)
        "del a\n"
        "del b\n"
    )
    _, prof, _ = run_full(source)
    py_line = prof.line(1)
    native_line = prof.line(2)
    assert py_line is not None and native_line is not None
    assert py_line.mem_python_percent > 90
    assert native_line.mem_python_percent < 10


def test_memory_timeline_records_rise_and_fall():
    source = (
        "a = py_buffer(50000000)\n"
        "b = py_buffer(50000000)\n"
        "del a\n"
        "del b\n"
        "c = py_buffer(15000000)\n"
        "del c\n"
    )
    _, prof, _ = run_full(source)
    timeline = prof.memory_timeline
    assert len(timeline) >= 4
    peaks = max(mb for _t, mb in timeline)
    assert peaks >= 90
    assert timeline[-1][1] < 20  # returned close to zero at the end


def test_interposition_reports_allocated_not_resident():
    """§6.3: Scalene reports allocation, not RSS — untouched memory counts."""
    source = "a = np.empty(67108864)\ndel a\n"  # 512 MiB, untouched
    _, prof, process = run_full(source)
    assert prof.peak_footprint_mb == pytest.approx(512, rel=0.02)
    # While RSS barely moved (the pages were never written).
    assert process.rss() < 100 * MiB


def test_leak_detection_end_to_end():
    config = ScaleneConfig()
    source = (
        "leaky = []\n"
        "junk = 0\n"
        "def grow():\n"
        "    global junk\n"
        "    leaky.append(py_buffer(11000000))\n"  # line 5: never freed
        "    junk = junk + 1\n"
        "for i in range(25):\n"
        "    grow()\n"
    )
    scalene, prof, _ = run_full(source, config=config)
    assert prof.leaks, "expected the leaking line to be reported"
    leak = prof.leaks[0]
    assert leak.lineno == 5
    assert leak.likelihood >= 0.95
    assert leak.leak_rate_mb_s > 0


def test_no_leak_reported_for_balanced_allocation():
    source = (
        "for i in range(25):\n"
        "    tmp = py_buffer(11000000)\n"
        "    del tmp\n"
    )
    _, prof, _ = run_full(source)
    assert prof.leaks == []


def test_sample_log_is_small():
    """§6.5: Scalene's sampling log stays tiny (KBs, not MBs)."""
    source = (
        "keep = []\n"
        "for i in range(10):\n"
        "    keep.append(py_buffer(12000000))\n"
        "keep.clear()\n"
    )
    scalene, prof, _ = run_full(source)
    assert 0 < prof.sample_log_bytes < 64 * 1024


def test_allocator_hooks_restored_after_stop():
    source = "x = py_buffer(1000)\ndel x\n"
    process = SimProcess(source, filename="t.py")
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    scalene.stop()
    assert process.mem.hooks.get_allocator() is process.mem.pymalloc
    assert not process.mem.shim.has_listeners


def test_memory_mode_overhead_is_moderate():
    """Full mode costs more than CPU mode but far less than tracing (§6.5)."""
    source = "s = 0\nfor i in range(15000):\n    s = s + i\n"
    bare = SimProcess(source, filename="t.py")
    bare.run()
    base = bare.clock.wall

    process = SimProcess(source, filename="t.py")
    Scalene.run(process, mode="full")
    slowdown = process.clock.wall / base
    assert 1.0 <= slowdown < 2.5
