"""Tests for the simnp (NumPy-like) native library."""

import pytest

from repro.errors import VMError
from repro.interp.libs import install_standard_libraries
from repro.runtime.process import SimProcess
from repro.units import MiB


def run(source, **kwargs):
    process = SimProcess(source, filename="np.py", **kwargs)
    install_standard_libraries(process)
    process.run()
    return process


def test_zeros_allocates_native_touched():
    process = run("a = np.zeros(1000000)\ndel a\n")
    sysalloc = process.mem.sysalloc
    assert sysalloc.total_bytes_allocated >= 8_000_000
    assert process.mem.native_live_bytes == 0  # freed by del


def test_empty_is_untouched_until_written():
    process = run("a = np.empty(10000000)\nhold = len(a)\ndel a\n")
    # 80 MB mapped but RSS stays near baseline.
    assert process.rss() < 40 * MiB


def test_touch_fraction_raises_rss():
    source = "a = np.empty(10000000)\nnp.touch(a, 0.5)\nx = 1\n"
    process = SimProcess(source, filename="np.py")
    install_standard_libraries(process)
    base_rss = process.rss()
    process.run()
    # ~40 MB of the 80 MB buffer became resident (measured pre-teardown is
    # not possible here, but peak pages persist in the counter history via
    # sysalloc totals). Run again keeping the array alive:
    process2 = SimProcess("a = np.empty(10000000)\nnp.touch(a, 0.5)\nprobe()\n", filename="np.py")
    install_standard_libraries(process2)
    from repro.interp.objects import NativeFunction

    seen = {}
    process2.builtins["probe"] = NativeFunction(
        "probe", lambda ctx, a, k: seen.update(rss=ctx.process.rss())
    )
    process2.run()
    assert seen["rss"] - base_rss >= 38 * MiB


def test_elementwise_ops_consume_native_time():
    process = run(
        "a = np.zeros(500000)\nb = a + a\nc = b * 2.0\n",
        collect_ground_truth=True,
    )
    gt = process.ground_truth
    assert gt.total_native_time > 0.1
    # Elementwise results are fresh arrays; all freed at teardown.
    assert process.mem.native_live_bytes == 0


def test_scalar_array_ops_commute():
    run("a = np.zeros(1000)\nb = 2.0 * a\nc = a * 2.0\n")


def test_length_mismatch_raises():
    with pytest.raises(VMError, match="mismatch"):
        run("a = np.zeros(10)\nb = np.zeros(20)\nc = a + b\n")


def test_copy_emits_memcpy():
    process = run("a = np.zeros(1000000)\nb = np.copy(a)\n", collect_ground_truth=True)
    copied = sum(l.copy_bytes for l in process.ground_truth.lines.values())
    assert copied == 8_000_000


def test_slice_returns_view_without_copy():
    process = run(
        "a = np.zeros(1000000)\nv = a[0:1000]\nn = len(v)\n",
        collect_ground_truth=True,
    )
    copied = sum(l.copy_bytes for l in process.ground_truth.lines.values())
    assert copied == 0
    # No second 8 MB buffer was allocated for the view.
    assert process.mem.sysalloc.total_bytes_allocated < 12_000_000


def test_view_keeps_parent_alive():
    source = (
        "def make_view():\n"
        "    a = np.zeros(1000000)\n"
        "    return a[0:500]\n"
        "v = make_view()\n"
        "n = len(v)\n"
    )
    process = SimProcess(source, filename="np.py")
    install_standard_libraries(process)
    captured = {}
    original = process._finalize

    def capture():
        captured["live"] = process.mem.native_live_bytes
        original()

    process._finalize = capture
    process.run()
    # The parent buffer must still be live while the view exists.
    assert captured["live"] >= 8_000_000
    assert process.mem.native_live_bytes == 0  # and freed at teardown


def test_tolist_crosses_the_boundary():
    process = run(
        "a = np.zeros(10000)\nxs = a.tolist()\nn = len(xs)\n",
        collect_ground_truth=True,
    )
    copied = sum(l.copy_bytes for l in process.ground_truth.lines.values())
    assert copied == 80_000


def test_array_attributes():
    process = SimProcess("a = np.zeros(100)\nnb = a.nbytes\nsz = a.size\n", filename="np.py")
    install_standard_libraries(process)
    captured = {}
    original = process._finalize

    def capture():
        captured.update(nb=process.globals["nb"], sz=process.globals["sz"])
        original()

    process._finalize = capture
    process.run()
    assert captured["nb"] == 800
    assert captured["sz"] == 100


def test_index_out_of_range():
    with pytest.raises(VMError, match="out of range"):
        run("a = np.zeros(10)\nx = a[10]\n")


def test_negative_size_rejected():
    with pytest.raises(VMError, match="negative"):
        run("a = np.zeros(-1)\n")


# -- element/batch boundary natives (the chatty/batched pair's API) ----------


def test_get_and_put_roundtrip():
    process = run(
        "a = np.arange(10)\n"
        "b = np.zeros(10)\n"
        "for i in range(10):\n"
        "    np.put(b, i, np.get(a, i) * 2.0)\n"
        "total = b.sum()\nprint(total)\n"
    )
    # 10 gets + 10 puts + arange + zeros + sum: all crossings recorded.
    assert process.crossings.total_crossings == 23


def test_get_bounds_checked():
    with pytest.raises(VMError, match="out of range"):
        run("a = np.zeros(5)\nv = np.get(a, 5)\n")
    with pytest.raises(VMError, match="out of range"):
        run("a = np.zeros(5)\nnp.put(a, -6, 0.0)\n")


def test_add_vectorized_and_scalar():
    process = run(
        "a = np.arange(100)\n"
        "b = np.arange(100)\n"
        "c = np.add(a, b)\n"
        "s = np.add(2.0, 3.0)\n"
        "print(c.sum())\nprint(s)\n"
    )
    assert process.stdout[-1].strip() == "5.0"


def test_add_length_mismatch():
    with pytest.raises(VMError, match="length"):
        run("a = np.zeros(5)\nb = np.zeros(6)\nc = np.add(a, b)\n")


def test_asarray_marshals_to_native():
    process = run(
        "items = []\n"
        "for i in range(100):\n"
        "    items.append(i)\n"
        "a = np.asarray(items)\n"
        "print(a.size)\n"
    )
    assert process.crossings.total_bytes_to_native == 800
    assert process.stdout[-1].strip() == "100"
