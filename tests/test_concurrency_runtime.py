"""Unit tests for the concurrency planes the profiler observes.

Three planes, three contracts:

* ``aio`` (cooperative event loop): run-until-await semantics, exact
  per-task CPU/idle accounting, and loud errors for misuse;
* lock contention: the always-on recorder measures every contended
  acquisition (including abandoned timed waits) at the acquiring line
  and attributes the edge to the holder;
* fork lineage: every child gets a unique pid and a correct parent link
  no matter how many worker pools the program runs.
"""

from __future__ import annotations

import pytest

from repro.errors import VMError
from repro.interp.libs import install_standard_libraries
from repro.runtime.process import SimProcess


def run_program(source: str, filename: str = "conc.py") -> SimProcess:
    process = SimProcess(source, filename=filename)
    install_standard_libraries(process)
    process.run()
    return process


# -- aio: the cooperative event loop ----------------------------------------


ASYNC_SOURCE = (
    "def handler(wid):\n"
    "    total = 0\n"
    "    i = 0\n"
    "    while i < 50:\n"
    "        total = total + i\n"
    "        i = i + 1\n"
    "    aio.sleep(0.01)\n"
    "    return total\n"
    "def main():\n"
    "    t1 = aio.spawn(handler, 1)\n"
    "    t2 = aio.spawn(handler, 2)\n"
    "    aio.gather_all()\n"
    "    return 0\n"
    "aio.run(main)\n"
    "print('done')\n"
)


def test_aio_run_drains_the_loop_and_records_tasks():
    process = run_program(ASYNC_SOURCE)
    assert process.stdout[-1] == "done"
    records = process.async_runtime.task_records()
    assert [r.name for r in records] == ["main-0", "handler-1", "handler-2"]
    assert all(r.done for r in records)
    handlers = records[1:]
    for record in handlers:
        # Exact accounting: the while loop burned CPU, the sleep idled.
        assert record.cpu_s > 0
        assert record.wait_s > 0
        assert record.switches > 0
        assert record.await_location is not None
        assert record.await_location[1] == 7  # the aio.sleep line
        assert record.spawn_location is not None
    # Per-task CPU is a partition of thread time: it can never exceed the
    # process total.
    assert sum(r.cpu_s for r in records) <= process.clock.cpu + 1e-9
    assert process.async_runtime.total_task_switches >= 3


def test_aio_tasks_run_until_await():
    # Cooperative semantics: greedy is spawned first and never awaits, so
    # it runs to completion before polite executes a single opcode — even
    # though polite is far shorter. (Preemptive threads would interleave.)
    source = (
        "def greedy(wid):\n"
        "    i = 0\n"
        "    while i < 300:\n"
        "        i = i + 1\n"
        "    print('greedy done')\n"
        "    return i\n"
        "def polite(wid):\n"
        "    print('polite ran')\n"
        "    return 1\n"
        "def main():\n"
        "    g = aio.spawn(greedy, 0)\n"
        "    p = aio.spawn(polite, 1)\n"
        "    aio.gather_all()\n"
        "    return 0\n"
        "aio.run(main)\n"
    )
    process = run_program(source)
    assert process.stdout.index("greedy done") < process.stdout.index("polite ran")
    greedy = process.async_runtime.task_records()[1]
    assert greedy.name.startswith("greedy")
    assert greedy.wait_s == 0.0  # never awaited


def test_aio_calls_outside_a_task_raise():
    for call in ("aio.spawn(print)", "aio.sleep(0.1)", "aio.gather_all()"):
        with pytest.raises(VMError, match="only valid inside a task"):
            run_program(f"{call}\n")


def test_aio_rejects_bad_arguments():
    with pytest.raises(VMError, match="needs a function"):
        run_program("aio.run()\n")
    with pytest.raises(VMError, match="argument"):
        run_program(
            "def f(a, b):\n    return a\n"
            "def main():\n    aio.spawn(f, 1)\n    return 0\n"
            "aio.run(main)\n"
        )


# -- lock contention recorder ------------------------------------------------


CONTENDED_SOURCE = (
    "def worker(wid):\n"
    "    i = 0\n"
    "    while i < 4:\n"
    "        lock_acquire(lk)\n"
    "        native_work(0.02)\n"
    "        lock_release(lk)\n"
    "        i = i + 1\n"
    "    return i\n"
    "lk = make_lock('shared')\n"
    "t0 = spawn(worker, 0)\n"
    "t1 = spawn(worker, 1)\n"
    "join(t0)\n"
    "join(t1)\n"
    "print('ok')\n"
)


def test_contended_lock_records_blocked_time_at_the_acquiring_line():
    process = run_program(CONTENDED_SOURCE)
    recorder = process.lock_contention
    assert recorder.total_acquisitions == 8  # 2 workers x 4 iterations
    assert recorder.total_contentions > 0
    assert recorder.total_blocked_s > 0
    # All blocking happened at the lock_acquire line (line 4).
    line = recorder.lines[("conc.py", 4)]
    assert line.blocked_s == pytest.approx(recorder.total_blocked_s)
    assert line.acquisitions == 8
    # Edges name real threads on both sides, never self-edges.
    assert recorder.edges
    for (waiter, holder, lock_name), edge in recorder.edges.items():
        assert lock_name == "shared"
        assert waiter != holder
        assert edge.count > 0
        assert edge.blocked_s > 0


def test_uncontended_lock_records_acquisitions_only():
    source = (
        "lk = make_lock('solo')\n"
        "i = 0\n"
        "while i < 5:\n"
        "    lock_acquire(lk)\n"
        "    lock_release(lk)\n"
        "    i = i + 1\n"
        "print('ok')\n"
    )
    process = run_program(source)
    recorder = process.lock_contention
    assert recorder.total_acquisitions == 5
    assert recorder.total_contentions == 0
    assert recorder.total_blocked_s == 0.0
    assert recorder.edges == {}
    assert recorder.lines[("conc.py", 4)].acquisitions == 5


def test_timed_out_acquire_still_counts_as_contention():
    source = (
        "def hog(wid):\n"
        "    lock_acquire(lk)\n"
        "    sleep(0.5)\n"
        "    lock_release(lk)\n"
        "    return wid\n"
        "def impatient(wid):\n"
        "    lock_acquire(lk, 0.05)\n"
        "    print('gave up')\n"
        "    return wid\n"
        "lk = make_lock('held')\n"
        "t0 = spawn(hog, 0)\n"
        "sleep(0.01)\n"
        "t1 = spawn(impatient, 1)\n"
        "join(t0)\n"
        "join(t1)\n"
        "print('ok')\n"
    )
    process = run_program(source)
    recorder = process.lock_contention
    assert "gave up" in process.stdout
    assert process.stdout[-1] == "ok"
    # The abandoned wait is real blocked time: ~0.05 s at the acquire line,
    # but only one *successful* acquisition there ever happened (the hog's).
    assert recorder.total_contentions >= 1
    assert recorder.total_blocked_s >= 0.04
    line = recorder.lines[("conc.py", 7)]
    assert line.contentions == 1
    assert line.acquisitions == 0
    assert line.blocked_s == pytest.approx(0.05, rel=0.25)


def test_semaphore_contention_is_recorded_too():
    source = (
        "def worker(wid):\n"
        "    sem_acquire(sem)\n"
        "    native_work(0.05)\n"
        "    sem_release(sem)\n"
        "    return wid\n"
        "sem = make_semaphore('pool', 1)\n"
        "t0 = spawn(worker, 0)\n"
        "t1 = spawn(worker, 1)\n"
        "t2 = spawn(worker, 2)\n"
        "join(t0)\n"
        "join(t1)\n"
        "join(t2)\n"
        "print('ok')\n"
    )
    process = run_program(source)
    recorder = process.lock_contention
    assert recorder.total_acquisitions == 3
    assert recorder.total_contentions >= 2
    assert any(key[2] == "pool" for key in recorder.edges)


# -- fork lineage -------------------------------------------------------------


def test_pids_stay_unique_across_multiple_worker_pools():
    source = (
        "def worker(wid):\n"
        "    i = 0\n"
        "    while i < 20:\n"
        "        i = i + 1\n"
        "    return i\n"
        "if is_main():\n"
        "    mp.run_workers(worker, 2)\n"
        "    mp.run_workers(worker, 3)\n"
        "    print('done')\n"
    )
    process = run_program(source, filename="pools.py")
    tree = process.process_tree()
    assert len(tree) == 6  # parent + 2 + 3
    pids = [p.pid for p in tree]
    assert len(set(pids)) == len(pids)
    assert tree[0] is process
    assert process.parent_pid is None
    for child in tree[1:]:
        assert child.parent_pid == process.pid
        assert child.clock.cpu > 0
