"""Bytecode verifier tests: every workload verifies; corruption is rejected."""

import pytest

from repro.interp.astcompile import compile_source
from repro.interp.code import CodeObject, Instruction
from repro.interp import opcodes as op
from repro.staticcheck import (
    VerificationError,
    build_cfg,
    verify_code,
)
from repro.workloads import get_workload, workload_names


def _instr(opcode, arg=None, lineno=1):
    return Instruction(opcode, arg, lineno)


def _make_code(instructions, constants=(), name="f"):
    return CodeObject(
        name=name,
        filename="<test>",
        params=[],
        instructions=list(instructions),
        constants=list(constants),
    )


# -- every workload (including the pyperf suite) verifies cleanly ------------


@pytest.mark.parametrize("name", workload_names())
def test_workload_bytecode_verifies(name):
    workload = get_workload(name)
    code = compile_source(workload.source(0.05), f"{name}.py", verify=True)
    report = verify_code(code)
    # Depth bound is a real number for every code object.
    for sub in report.all_reports():
        assert sub.max_stack_depth >= 0


def test_compile_source_env_toggle(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "0")
    compile_source("x = 1\n")  # no verification, still compiles
    monkeypatch.setenv("REPRO_VERIFY", "1")
    compile_source("x = 1\n")


# -- corrupted code objects are rejected with precise diagnostics ------------


def test_bad_jump_target_rejected():
    code = _make_code(
        [
            _instr(op.LOAD_CONST, 0),
            _instr(op.POP_JUMP_IF_FALSE, 99),
            _instr(op.LOAD_CONST, 0),
            _instr(op.RETURN_VALUE),
        ],
        constants=[None],
    )
    with pytest.raises(VerificationError) as excinfo:
        verify_code(code)
    assert "target 99" in str(excinfo.value)
    assert "out of range" in str(excinfo.value)
    assert "f@1" in str(excinfo.value)


def test_const_index_out_of_bounds_rejected():
    code = _make_code(
        [_instr(op.LOAD_CONST, 5), _instr(op.RETURN_VALUE)],
        constants=[None],
    )
    with pytest.raises(VerificationError) as excinfo:
        verify_code(code)
    assert "const index 5 out of range" in str(excinfo.value)


def test_stack_underflow_rejected():
    code = _make_code(
        [_instr(op.BINARY_OP, "+"), _instr(op.RETURN_VALUE)],
        constants=[],
    )
    with pytest.raises(VerificationError) as excinfo:
        verify_code(code)
    assert "underflow" in str(excinfo.value)


def test_unbalanced_merge_rejected():
    # One branch pushes an extra value before the merge point.
    code = _make_code(
        [
            _instr(op.LOAD_CONST, 0),         # 0: depth 1
            _instr(op.POP_JUMP_IF_FALSE, 4),  # 1: depth 0 on both edges
            _instr(op.LOAD_CONST, 0),         # 2: depth 1
            _instr(op.LOAD_CONST, 0),         # 3: depth 2 -> falls into 4
            _instr(op.LOAD_CONST, 0),         # 4: merge: depth 0 vs 2
            _instr(op.RETURN_VALUE),
        ],
        constants=[None],
    )
    with pytest.raises(VerificationError) as excinfo:
        verify_code(code)
    assert "depth" in str(excinfo.value)


def test_falls_off_end_rejected():
    code = _make_code([_instr(op.LOAD_CONST, 0)], constants=[None])
    with pytest.raises(VerificationError) as excinfo:
        verify_code(code)
    assert "falls off" in str(excinfo.value)


def test_make_function_requires_code_constant():
    code = _make_code(
        [
            _instr(op.MAKE_FUNCTION, 0),
            _instr(op.STORE_NAME, "g"),
            _instr(op.LOAD_CONST, 0),
            _instr(op.RETURN_VALUE),
        ],
        constants=["not-a-code-object"],
    )
    with pytest.raises(VerificationError) as excinfo:
        verify_code(code)
    assert "MAKE_FUNCTION" in str(excinfo.value)


def test_nested_code_objects_verified_recursively():
    bad_inner = _make_code(
        [_instr(op.BINARY_OP, "+"), _instr(op.RETURN_VALUE)], name="inner"
    )
    outer = _make_code(
        [
            _instr(op.MAKE_FUNCTION, 0),
            _instr(op.STORE_NAME, "inner"),
            _instr(op.LOAD_CONST, 1),
            _instr(op.RETURN_VALUE),
        ],
        constants=[bad_inner, None],
        name="outer",
    )
    with pytest.raises(VerificationError) as excinfo:
        verify_code(outer)
    assert "inner" in str(excinfo.value)
    # Without recursion the outer object alone is fine.
    verify_code(outer, recurse=False)


# -- dead code is a warning, not an error ------------------------------------


def test_dead_code_reported_as_warning():
    source = (
        "def f():\n"
        "    for i in range(3):\n"
        "        if i > 1:\n"
        "            break\n"
        "            continue\n"
        "    return i\n"
        "print(f())\n"
    )
    code = compile_source(source, verify=True)
    report = verify_code(code)
    assert report.warning_count > 0
    dead = [d for sub in report.all_reports() for d in sub.dead_code]
    assert dead, "the continue-after-break should be unreachable"


def test_explicit_return_dead_tail_is_tolerated():
    # The compiler emits an implicit `return None` after an explicit
    # return; that tail is dead but legal.
    code = compile_source("def f():\n    return 1\nprint(f())\n", verify=True)
    report = verify_code(code)
    assert all(
        isinstance(d.start, int) for sub in report.all_reports() for d in sub.dead_code
    )


# -- for-loop break leaves a clean stack (the bug the verifier surfaced) -----


def test_break_in_for_loop_pops_iterator():
    source = (
        "total = 0\n"
        "for i in range(10):\n"
        "    if i == 3:\n"
        "        break\n"
        "    total = total + i\n"
        "print(total)\n"
    )
    code = compile_source(source, verify=True)
    report = verify_code(code)
    assert report.max_stack_depth >= 1


def test_nested_break_verifies():
    source = (
        "hits = 0\n"
        "for i in range(4):\n"
        "    for j in range(4):\n"
        "        if j == 2:\n"
        "            break\n"
        "        hits = hits + 1\n"
        "print(hits)\n"
    )
    compile_source(source, verify=True)


def test_break_in_while_loop_verifies():
    source = (
        "i = 0\n"
        "while True:\n"
        "    i = i + 1\n"
        "    if i == 5:\n"
        "        break\n"
        "print(i)\n"
    )
    compile_source(source, verify=True)


# -- CFG structure sanity ----------------------------------------------------


def test_cfg_loop_detection():
    code = compile_source(
        "total = 0\nfor i in range(5):\n    total = total + i\nprint(total)\n"
    )
    cfg = build_cfg(code)
    loops = cfg.natural_loops()
    assert len(loops) == 1
    loop = loops[0]
    assert loop.header in {b.index for b in cfg.blocks}
    assert cfg.blocks[loop.header].index in loop.blocks


def test_cfg_dominators_entry_dominates_all():
    code = compile_source(
        "x = 0\nif x:\n    y = 1\nelse:\n    y = 2\nprint(y)\n"
    )
    cfg = build_cfg(code)
    doms = cfg.dominators()
    for block_index in cfg.reachable_blocks():
        assert 0 in doms[block_index]
