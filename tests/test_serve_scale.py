"""Unit tests for the scale-out serve plane (DESIGN.md §12).

Covers the pieces the chaos and property suites exercise only end to
end: the consistent-hash router's placement and failover policy, the
ServeClient's bounded retry-with-backoff (idempotent requests retry,
job submission never does), server-side pagination of ``/profiles`` and
``/trend``, and the batching gateway's routed reads.

The router and retry tests are pure/socket-level and fast; the daemon
and gateway fixtures are module-scoped so the process boots happen
once.
"""

import copy
import json
import socket
import threading
import time

import pytest

from repro.core.profile_data import ProfileData
from repro.errors import ServeError
from repro.serve.client import ServeClient
from repro.serve.daemon import ProfileDaemon
from repro.serve.frontend import ServeFrontend
from repro.serve.healing import RetryPolicy
from repro.serve.jobs import execute_job
from repro.serve.router import DEFAULT_VNODES, HashRing, ShardRouter, shard_key
from repro.serve.shard import ShardPlane
from repro.serve.store import ProfileStore

SHARDS = ["shard-00", "shard-01", "shard-02"]
KEYS = [shard_key(f"workload-{i}", f"cfg-{i % 7}") for i in range(400)]


# -- consistent-hash ring ----------------------------------------------


def test_ring_rejects_empty_and_duplicate_shards():
    with pytest.raises(ServeError, match="at least one shard"):
        HashRing([])
    with pytest.raises(ServeError, match="duplicate shard names"):
        HashRing(["a", "a", "b"])


def test_owners_cover_every_shard_once_and_are_stable():
    ring = HashRing(SHARDS)
    again = HashRing(list(SHARDS))
    for key in KEYS[:50]:
        owners = ring.owners(key)
        assert sorted(owners) == sorted(SHARDS)
        # SHA-256-based ring positions are process-independent.
        assert owners == again.owners(key)


def test_primary_spread_is_balanced():
    counts = HashRing(SHARDS).spread(KEYS)
    assert sum(counts.values()) == len(KEYS)
    expected = len(KEYS) / len(SHARDS)
    for shard, count in counts.items():
        assert count > expected * 0.5, (shard, counts)
        assert count < expected * 1.5, (shard, counts)


def test_removing_a_shard_only_moves_its_keys():
    before = HashRing(SHARDS)
    after = HashRing(SHARDS[:-1])
    moved = 0
    for key in KEYS:
        old = before.primary(key)
        if old == SHARDS[-1]:
            moved += 1
        else:
            # Keys not owned by the removed shard must not move.
            assert after.primary(key) == old
    # ~1/N of the key space remaps, and nothing else.
    assert 0 < moved < len(KEYS)


def test_replica_is_the_next_distinct_owner():
    router = ShardRouter({s: f"http://127.0.0.1:{i}" for i, s in enumerate(SHARDS)})
    for i in range(20):
        workload, cfg = f"w{i}", "c"
        owners = router.ring.owners(shard_key(workload, cfg))
        assert router.primary(workload, cfg) == owners[0]
        assert router.replica(workload, cfg) == owners[1]
        assert router.replica(workload, cfg) != router.primary(workload, cfg)


# -- router failover policy --------------------------------------------


@pytest.fixture()
def router():
    return ShardRouter({s: f"http://127.0.0.1:{i}" for i, s in enumerate(SHARDS)})


def test_route_prefers_primary_then_degrades_to_replica(router):
    primary = router.primary("pprint", "cfg")
    assert router.route("pprint", "cfg") == (primary, False)

    router.mark_down(primary)
    shard, degraded = router.route("pprint", "cfg")
    assert degraded is True
    assert shard == router.ring.owners(shard_key("pprint", "cfg"))[1]

    router.mark_up(primary)
    assert router.route("pprint", "cfg") == (primary, False)


def test_route_raises_when_every_owner_is_down(router):
    for shard in SHARDS:
        router.mark_down(shard)
    assert router.live_shards() == []
    with pytest.raises(ServeError, match="all down"):
        router.route("pprint", "cfg")


def test_router_health_bookkeeping(router):
    with pytest.raises(ServeError, match="unknown shard"):
        router.mark_down("shard-99")
    with pytest.raises(ServeError, match="unknown shard"):
        router.url("shard-99")
    router.mark_down("shard-01")
    assert router.is_down("shard-01")
    assert router.down_shards() == ["shard-01"]
    assert router.live_shards() == ["shard-00", "shard-02"]
    described = router.describe()
    assert described["vnodes"] == DEFAULT_VNODES
    by_name = {entry["name"]: entry for entry in described["shards"]}
    assert by_name["shard-01"]["down"] is True
    assert by_name["shard-00"]["down"] is False
    assert by_name["shard-00"]["replica"] in SHARDS[1:]


# -- client retry / timeouts -------------------------------------------


class _FlakyServer(threading.Thread):
    """Closes the first ``failures`` connections without answering, then
    serves ``body`` as JSON on every later one (one request per
    connection). Stands in for a daemon with a flapping transport."""

    def __init__(self, body, *, failures):
        super().__init__(daemon=True)
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(16)
        self.url = f"http://127.0.0.1:{self.sock.getsockname()[1]}"
        self.body = json.dumps(body).encode("utf-8")
        self.failures = failures
        self.connections = 0
        self._halt = threading.Event()

    def run(self):
        self.sock.settimeout(0.1)
        while not self._halt.is_set():
            try:
                conn, _ = self.sock.accept()
            except socket.timeout:
                continue
            self.connections += 1
            if self.connections <= self.failures:
                conn.close()
                continue
            try:
                conn.settimeout(2.0)
                buf = b""
                while b"\r\n\r\n" not in buf:
                    data = conn.recv(65536)
                    if not data:
                        break
                    buf += data
                head, _, rest = buf.partition(b"\r\n\r\n")
                length = 0
                for line in head.decode("latin-1").split("\r\n")[1:]:
                    name, _, value = line.partition(":")
                    if name.strip().lower() == "content-length":
                        length = int(value.strip())
                while len(rest) < length:
                    data = conn.recv(65536)
                    if not data:
                        break
                    rest += data
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: " + str(len(self.body)).encode() + b"\r\n"
                    b"Connection: close\r\n\r\n" + self.body
                )
            except OSError:
                pass
            finally:
                conn.close()

    def stop(self):
        self._halt.set()
        self.join(timeout=2.0)
        self.sock.close()


@pytest.fixture()
def flaky_server(request):
    body, failures = request.param
    server = _FlakyServer(body, failures=failures)
    server.start()
    yield server
    server.stop()


def _client(server, *, attempts):
    # connect_timeout_s=None skips the connect probe so each transport
    # attempt costs the fake server exactly one connection.
    return ServeClient(
        server.url,
        timeout=5.0,
        connect_timeout_s=None,
        retry=RetryPolicy(attempts, base_delay_s=0.01, max_delay_s=0.05),
    )


@pytest.mark.parametrize(
    "flaky_server", [({"status": "ok"}, 2)], indirect=True
)
def test_idempotent_get_retries_past_transport_faults(flaky_server):
    assert _client(flaky_server, attempts=3).health() == {"status": "ok"}
    assert flaky_server.connections == 3


@pytest.mark.parametrize(
    "flaky_server", [({"id": "abc", "profile": {}}, 1)], indirect=True
)
def test_idempotent_post_merge_retries(flaky_server):
    # POST /merge is content-addressed, hence safe to resend.
    result = _client(flaky_server, attempts=3).merge(["a", "b"])
    assert result["id"] == "abc"
    assert flaky_server.connections == 2


@pytest.mark.parametrize(
    "flaky_server", [({"job": {"id": "never"}}, 100)], indirect=True
)
def test_job_submission_is_never_retried(flaky_server):
    # A lost /jobs response may still have been accepted; a retry would
    # double-run the job, so the client must fail after one attempt.
    with pytest.raises(ServeError, match="after 1 attempt"):
        _client(flaky_server, attempts=5).submit("pprint", scale=0.01)
    time.sleep(0.05)
    assert flaky_server.connections == 1


@pytest.mark.parametrize(
    "flaky_server", [({"status": "ok"}, 100)], indirect=True
)
def test_retry_budget_is_bounded(flaky_server):
    with pytest.raises(ServeError, match="after 2 attempt"):
        _client(flaky_server, attempts=2).health()
    assert flaky_server.connections == 2


def test_dead_host_fails_within_the_connect_timeout():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()  # nothing listens here any more
    client = ServeClient(
        f"http://127.0.0.1:{port}",
        timeout=30.0,
        connect_timeout_s=0.5,
        retry=RetryPolicy(1),
    )
    started = time.monotonic()
    with pytest.raises(ServeError, match="cannot reach daemon"):
        client.health()
    # Refused/timed-out connect must not consume the 30s read budget.
    assert time.monotonic() - started < 5.0


# -- pagination --------------------------------------------------------

STORED = 12


@pytest.fixture(scope="module")
def base_profile():
    return ProfileData.from_json(
        execute_job(
            {
                "id": "scale-base",
                "workload": "pprint",
                "profiler": "scalene",
                "mode": "cpu",
                "scale": 0.05,
                "config": {},
            }
        )
    )


@pytest.fixture(scope="module")
def paged_client(tmp_path_factory, base_profile):
    root = tmp_path_factory.mktemp("paged-store")
    store = ProfileStore(root)
    for index in range(STORED):
        variant = copy.deepcopy(base_profile)
        variant.elapsed *= 1.0 + index * 1e-4  # distinct content ids
        store.put(
            variant,
            workload="pprint",
            profiler="scalene",
            config={"mode": "cpu", "scale": 0.05, "overrides": {}},
            created_at=float(index),
        )
    daemon = ProfileDaemon(store, workers=1)
    daemon.start()
    yield ServeClient(daemon.url)
    daemon.stop()


def test_profiles_listing_pages(paged_client):
    page = paged_client.profiles_page(workload="pprint", limit=5)
    assert page["total"] == STORED
    assert page["limit"] == 5 and page["offset"] == 0
    assert len(page["profiles"]) == 5

    rest = paged_client.profiles_page(workload="pprint", limit=5, offset=5)
    assert rest["offset"] == 5
    first_ids = {entry["id"] for entry in page["profiles"]}
    rest_ids = {entry["id"] for entry in rest["profiles"]}
    assert not first_ids & rest_ids

    everything = paged_client.profiles_page(workload="pprint", limit=0)
    assert len(everything["profiles"]) == STORED


def test_profiles_pages_tile_the_full_listing(paged_client):
    everything = paged_client.profiles_page(workload="pprint", limit=0)["profiles"]
    paged = []
    for offset in range(0, STORED, 4):
        paged.extend(
            paged_client.profiles_page(workload="pprint", limit=4, offset=offset)[
                "profiles"
            ]
        )
    assert [e["id"] for e in paged] == [e["id"] for e in everything]


def test_trend_pages_in_both_sketch_and_exact_modes(paged_client):
    for exact in (None, 1):
        page = paged_client.trend(workload="pprint", limit=5, exact=exact)
        assert page["limit"] == 5 and page["offset"] == 0
        assert len(page["trend"]) == 5
        rest = paged_client.trend(workload="pprint", limit=5, offset=5, exact=exact)
        assert page["trend"] != rest["trend"]


def test_bad_page_params_are_rejected(paged_client):
    with pytest.raises(ServeError, match="limit/offset"):
        paged_client.profiles_page(workload="pprint", limit=-1)
    with pytest.raises(ServeError, match="limit/offset"):
        paged_client.trend(workload="pprint", offset=-3)


# -- gateway routed reads ----------------------------------------------


@pytest.fixture(scope="module")
def gateway_plane(tmp_path_factory):
    plane = ShardPlane(tmp_path_factory.mktemp("gw-plane"), shards=2, workers=1)
    router = plane.start()
    gateway = ServeFrontend(router, batch_window_s=0.02, poll_interval_s=0.1)
    gateway.start()
    yield plane, ServeClient(gateway.url)
    gateway.stop()
    plane.stop()


def test_gateway_accepts_batches_and_completes_jobs(gateway_plane):
    plane, client = gateway_plane
    jobs = [
        client.submit("pprint", mode="cpu", scale=0.02),
        client.submit("fannkuch", mode="cpu", scale=0.02),
    ]
    assert all(job["id"].startswith("gw-") for job in jobs)
    done = [client.wait(job["id"], timeout=120.0) for job in jobs]
    assert all(job["status"] == "done" and job["profile_id"] for job in done)

    # Routed read: the profile is fetched from the key's primary shard.
    envelope = client.profile(done[0]["profile_id"])
    assert envelope["id"] == done[0]["profile_id"]
    trend = client.trend(workload="pprint")
    assert trend.get("degraded") in (None, False)
    assert len(trend["trend"]) >= 1

    health = client.health()
    assert health["role"] == "gateway"
    assert health["jobs"]["done"] >= 2
    assert sorted(health["shards"]["live"]) == sorted(plane.daemons)


def test_gateway_rejects_malformed_submissions(gateway_plane):
    _, client = gateway_plane
    with pytest.raises(ServeError):
        client._request("/jobs", body={"scale": 0.01})  # no workload
    with pytest.raises(ServeError):
        client._request("/no-such-endpoint")
