"""Tests for the simulated GPU device and NVML query facade (paper §4)."""

import pytest

from repro.errors import GpuError
from repro.gpu.device import GpuDevice, NvmlQuery
from repro.units import GiB, MiB


def test_kernel_utilization_within_window():
    gpu = GpuDevice(utilization_window=1.0)
    gpu.launch_kernel(pid=1, start=0.0, duration=0.5)
    # Query at t=1.0 over [0,1]: busy 0.5 of 1.0.
    assert gpu.utilization(1.0) == pytest.approx(0.5)


def test_utilization_is_clamped_to_one():
    gpu = GpuDevice(utilization_window=1.0)
    gpu.launch_kernel(pid=1, start=0.0, duration=2.0)
    assert gpu.utilization(1.0) == 1.0


def test_utilization_per_pid():
    gpu = GpuDevice(utilization_window=1.0)
    gpu.launch_kernel(pid=1, start=0.0, duration=0.25)
    gpu.launch_kernel(pid=2, start=0.25, duration=0.5)
    assert gpu.utilization(1.0, pid=1) == pytest.approx(0.25)
    assert gpu.utilization(1.0, pid=2) == pytest.approx(0.5)
    assert gpu.utilization(1.0) == pytest.approx(0.75)


def test_utilization_window_excludes_old_kernels():
    gpu = GpuDevice(utilization_window=0.5)
    gpu.launch_kernel(pid=1, start=0.0, duration=0.1)
    assert gpu.utilization(10.0) == 0.0


def test_memory_accounting_per_pid():
    gpu = GpuDevice()
    a = gpu.alloc(pid=1, nbytes=100 * MiB)
    gpu.alloc(pid=2, nbytes=50 * MiB)
    assert gpu.memory_used(1) == 100 * MiB
    assert gpu.memory_used() == 150 * MiB
    gpu.free(a)
    assert gpu.memory_used(1) == 0


def test_oom_raises():
    gpu = GpuDevice(memory_total=1 * GiB)
    gpu.alloc(pid=1, nbytes=1 * GiB)
    with pytest.raises(GpuError):
        gpu.alloc(pid=1, nbytes=1)


def test_free_unknown_address_raises():
    gpu = GpuDevice()
    with pytest.raises(GpuError):
        gpu.free(0xDEAD)


def test_negative_values_rejected():
    gpu = GpuDevice()
    with pytest.raises(GpuError):
        gpu.alloc(1, -1)
    with pytest.raises(GpuError):
        gpu.launch_kernel(1, 0.0, -0.5)
    with pytest.raises(GpuError):
        gpu.utilization(1.0, window=0.0)


def test_nvml_snapshot_respects_accounting_mode():
    """Without per-PID accounting the query aggregates all tenants (§4)."""
    gpu = GpuDevice(utilization_window=1.0)
    nvml = NvmlQuery(gpu)
    gpu.alloc(pid=1, nbytes=10 * MiB)
    gpu.alloc(pid=99, nbytes=30 * MiB)  # another tenant
    gpu.launch_kernel(pid=99, start=0.0, duration=1.0)

    util, mem = nvml.snapshot(now=1.0, pid=1)
    assert util == 1.0  # sees the other tenant's kernels
    assert mem == 40 * MiB

    gpu.enable_per_pid_accounting()
    util, mem = nvml.snapshot(now=1.0, pid=1)
    assert util == 0.0
    assert mem == 10 * MiB


def test_prune_drops_old_kernels():
    gpu = GpuDevice()
    gpu.launch_kernel(1, 0.0, 0.1)
    gpu.launch_kernel(1, 5.0, 0.1)
    gpu.prune(before=1.0)
    assert len(gpu._kernels) == 1
