"""Tests for the units helpers and the exception hierarchy."""

import pytest
from hypothesis import given, strategies as st

from repro import errors
from repro.units import (
    GiB,
    KiB,
    MiB,
    PAGE_SIZE,
    SCALENE_THRESHOLD,
    format_bytes,
    format_seconds,
    pages_for,
)


def test_format_bytes():
    assert format_bytes(532) == "532B"
    assert format_bytes(10 * MiB) == "10.0MB"
    assert format_bytes(2 * GiB) == "2.00GB"
    assert format_bytes(1536) == "1.5KB"
    assert format_bytes(-10 * MiB) == "-10.0MB"


def test_format_seconds():
    assert format_seconds(2e-6) == "2.0us"
    assert format_seconds(12.5) == "12.50s"
    assert format_seconds(5e-9) == "5ns"
    assert format_seconds(0.25) == "250.0ms"


def test_pages_for():
    assert pages_for(0) == 0
    assert pages_for(-5) == 0
    assert pages_for(1) == 1
    assert pages_for(PAGE_SIZE) == 1
    assert pages_for(PAGE_SIZE + 1) == 2


@given(st.integers(min_value=0, max_value=1 << 40))
def test_pages_for_bounds(n):
    pages = pages_for(n)
    assert pages * PAGE_SIZE >= n
    assert (pages - 1) * PAGE_SIZE < n or pages == 0


def test_scalene_threshold_is_prime_above_10mb():
    """§3.2: 'a prime number slightly above 10MB'."""
    assert SCALENE_THRESHOLD > 10 * 1000 * 1000
    assert SCALENE_THRESHOLD < 11 * MiB
    n = SCALENE_THRESHOLD
    factor = 2
    while factor * factor <= n:
        assert n % factor != 0, f"{n} divisible by {factor}"
        factor += 1


def test_exception_hierarchy():
    for exc_type in (
        errors.CompileError,
        errors.VMError,
        errors.HeapError,
        errors.SchedulerError,
        errors.SignalError,
        errors.ProfilerError,
        errors.GpuError,
        errors.WorkloadError,
    ):
        assert issubclass(exc_type, errors.ReproError)


def test_compile_error_carries_line():
    err = errors.CompileError("bad thing", lineno=42)
    assert err.lineno == 42
    assert "line 42" in str(err)
    err = errors.CompileError("no location")
    assert err.lineno is None


def test_units_relationships():
    assert KiB == 1024
    assert MiB == 1024 * KiB
    assert GiB == 1024 * MiB
