"""Tests for the analysis drivers (overhead, accuracy, feature matrix)."""

import pytest

from repro.analysis.accuracy import cpu_accuracy_experiment, memory_accuracy_experiment
from repro.analysis.comparison import feature_matrix
from repro.analysis.overhead import (
    OverheadResult,
    format_overhead_table,
    measure_overhead,
    overhead_table,
)
from repro.workloads import get_workload


def test_measure_overhead_external_sampler_is_free():
    workload = get_workload("raytrace")
    slowdown = measure_overhead(workload, "py_spy", scale=0.05)
    assert slowdown == pytest.approx(1.0, abs=0.02)


def test_measure_overhead_tracer_costs():
    workload = get_workload("raytrace")
    slowdown = measure_overhead(workload, "pprofile_det", scale=0.05)
    assert slowdown > 5.0


def test_overhead_table_and_median():
    workloads = [get_workload("raytrace"), get_workload("docutils")]
    results = overhead_table(workloads, ["py_spy", "cProfile"], scale=0.05)
    assert [r.profiler for r in results] == ["py_spy", "cProfile"]
    for result in results:
        assert set(result.slowdowns) == {"raytrace", "docutils"}
    table = format_overhead_table(results)
    assert "cProfile" in table and "Median" in table


def test_overhead_result_median():
    result = OverheadResult("x", {"a": 1.0, "b": 3.0, "c": 2.0})
    assert result.median == 2.0
    result = OverheadResult("x", {"a": 1.0, "b": 3.0})
    assert result.median == 2.0
    assert OverheadResult("x", {}).median == 0.0


def test_format_empty_table():
    assert format_overhead_table([]) == "(no results)"


def test_cpu_accuracy_sampler_on_diagonal():
    results = cpu_accuracy_experiment(
        ["py_spy", "cProfile"], call_fractions=(0.5,), scale=0.3
    )
    pyspy_point = results["py_spy"][0]
    cprofile_point = results["cProfile"][0]
    assert abs(pyspy_point.relative_error) < 0.2
    assert cprofile_point.relative_error > 1.0  # the function bias


def test_memory_accuracy_shapes():
    results = memory_accuracy_experiment(
        ["scalene_full", "memory_profiler"], touch_fractions=(0.0, 1.0)
    )
    scalene_points = {p.touch_fraction: p.reported_mb for p in results["scalene_full"]}
    rss_points = {p.touch_fraction: p.reported_mb for p in results["memory_profiler"]}
    assert scalene_points[0.0] == pytest.approx(512, rel=0.02)
    assert rss_points[0.0] < 50
    assert rss_points[1.0] > 400


def test_feature_matrix_renders():
    text = feature_matrix({"scalene_full": 1.32})
    assert "scalene_full" in text
    assert "1.32x" in text
    assert "rate_sampler" not in text  # not a Figure 1 row
    assert "Copy vol" in text
