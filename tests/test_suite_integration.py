"""Integration: every suite workload profiles cleanly under every mode."""

import pytest

from repro.core import Scalene
from repro.workloads import pyperf_suite


@pytest.mark.parametrize("name", list(pyperf_suite()))
def test_workload_profiles_under_full_mode(name):
    workload = pyperf_suite()[name]
    process = workload.make_process(scale=0.05)
    profile = Scalene.run(process, mode="full")
    # Sanity of the produced profile.
    assert profile.elapsed > 0
    assert profile.cpu_samples >= 0
    assert len(profile.lines) <= 300
    total = (
        profile.cpu_python_time + profile.cpu_native_time + profile.cpu_system_time
    )
    assert total <= process.clock.wall * 1.05
    # Hooks fully removed afterwards.
    assert not process.mem.shim.has_listeners
    assert process.mem.hooks.get_allocator() is process.mem.pymalloc
    assert process.trace.gettrace() is None


@pytest.mark.parametrize("mode", ["cpu", "cpu+gpu", "full"])
def test_modes_on_one_workload(mode):
    workload = pyperf_suite()["raytrace"]
    process = workload.make_process(scale=0.05)
    profile = Scalene.run(process, mode=mode)
    assert profile.mode == mode
    if mode == "cpu":
        assert profile.mem_samples == 0
    if mode == "full":
        assert profile.mem_samples >= 0


def test_profile_totals_are_consistent():
    workload = pyperf_suite()["pprint"]
    process = workload.make_process(scale=0.1)
    profile = Scalene.run(process, mode="full")
    # Per-line CPU percentages never exceed 100 and sum to <= ~100.
    for line in profile.lines:
        assert 0 <= line.cpu_total_percent <= 100.01
    assert sum(l.cpu_total_percent for l in profile.lines) <= 101.0
    # Timeline points are time-ordered.
    times = [t for t, _mb in profile.memory_timeline]
    assert times == sorted(times)
