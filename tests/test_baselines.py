"""Tests for the baseline profiler suite (Figure 1 rows)."""

import pytest

from repro import SimProcess
from repro.baselines import make_profiler, profiler_names
from repro.baselines.registry import cpu_profilers, memory_profilers
from repro.errors import ProfilerError
from repro.units import MiB

CALL_HEAVY = (
    "def hot(n):\n"
    "    s = 0\n"
    "    for i in range(n):\n"
    "        s = s + i\n"
    "    return s\n"
    "def caller(n):\n"
    "    t = 0\n"
    "    for i in range(n):\n"
    "        t = t + hot(20)\n"
    "    return t\n"
    "x = caller(120)\n"
)

MEMORY_HEAVY = (
    "keep = []\n"
    "for i in range(4):\n"
    "    keep.append(py_buffer(12000000))\n"
    "tmp = py_buffer(30000000)\n"
    "del tmp\n"
    "keep.clear()\n"
)


def run_with(name, source, **kwargs):
    process = SimProcess(source, filename="w.py", **kwargs)
    profiler = make_profiler(name, process)
    profiler.start()
    process.run()
    return profiler.stop(), process


def baseline_wall(source):
    process = SimProcess(source, filename="w.py")
    process.run()
    return process.clock.wall


def test_registry_contains_all_figure1_rows():
    names = profiler_names()
    for expected in (
        "py_spy", "cProfile", "yappi_wall", "yappi_cpu", "pprofile_stat",
        "pprofile_det", "line_profiler", "profile", "pyinstrument",
        "austin_cpu", "austin_full", "memray", "fil", "memory_profiler",
        "rate_sampler", "scalene_cpu", "scalene_cpu_gpu", "scalene_full",
    ):
        assert expected in names
    assert set(cpu_profilers()) <= set(names)
    assert set(memory_profilers()) <= set(names)


def test_unknown_profiler_rejected():
    process = SimProcess("x = 1\n", filename="w.py")
    with pytest.raises(ProfilerError):
        make_profiler("nonexistent", process)


@pytest.mark.parametrize("name", profiler_names())
def test_every_profiler_runs_cleanly(name):
    report, _process = run_with(name, CALL_HEAVY)
    assert report.profiler == name


def test_external_samplers_impose_no_overhead():
    base = baseline_wall(CALL_HEAVY)
    for name in ("py_spy", "austin_cpu"):
        _report, process = run_with(name, CALL_HEAVY)
        assert process.clock.wall / base == pytest.approx(1.0, abs=0.01)


def test_deterministic_tracers_impose_probe_overhead():
    base = baseline_wall(CALL_HEAVY)
    _report, process = run_with("pprofile_det", CALL_HEAVY)
    slow_det = process.clock.wall / base
    _report, process = run_with("cProfile", CALL_HEAVY)
    slow_cprof = process.clock.wall / base
    assert slow_det > 10          # pure-Python line tracing is brutal
    assert 1.02 < slow_cprof < 4  # C function tracing is mild
    assert slow_det > 5 * slow_cprof


def test_cprofile_reports_function_times():
    report, process = run_with("cProfile", CALL_HEAVY)
    hot = report.function_time("hot")
    caller = report.function_time("caller")
    assert hot > 0
    # caller's inclusive time includes hot.
    assert caller >= hot


def test_pprofile_stat_misses_native_time():
    """The §2 failure mode: signal-starved sampling reports ~zero native."""
    source = (
        "s = 0\n"
        "for i in range(3000):\n"
        "    s = s + 1\n"
        "native_work(1.5)\n"  # line 4
    )
    report, _ = run_with("pprofile_stat", source)
    native_line = report.line_time(4)
    python_line = report.line_time(3)
    # The single deferred signal charges at most ~one interval to line 4,
    # although it consumed the majority of the runtime.
    assert python_line > 0
    assert native_line < 0.1


def test_pprofile_stat_misses_subthread_time():
    source = (
        "def worker():\n"
        "    s = 0\n"
        "    for i in range(5000):\n"
        "        s = s + 1\n"
        "t = spawn(worker)\n"
        "join(t)\n"
    )
    report, _ = run_with("pprofile_stat", source)
    assert report.line_time(4) == 0.0  # the worker's hot line: invisible


def test_pyspy_sees_subthreads():
    source = (
        "def worker():\n"
        "    s = 0\n"
        "    for i in range(5000):\n"
        "        s = s + 1\n"
        "t = spawn(worker)\n"
        "join(t)\n"
    )
    report, _ = run_with("py_spy", source)
    assert report.line_time(4) > 0


def test_memory_profiler_reports_rss_deltas():
    report, _ = run_with("memory_profiler", MEMORY_HEAVY)
    assert report.peak_memory_mb is not None
    assert report.line_memory_mb  # some deltas recorded


def test_fil_and_memray_report_accurate_peak():
    for name, tolerance in (("fil", 0.02), ("memray", 0.07)):
        report, _ = run_with(name, MEMORY_HEAVY)
        # True peak: 4 x 12 MB retained + 30 MB transient (plus churn noise).
        expected = (4 * 12_000_000 + 30_000_000) / MiB
        assert report.peak_memory_mb == pytest.approx(expected, rel=tolerance + 0.05)


def test_fil_peak_snapshot_contains_retaining_line():
    report, _ = run_with("fil", MEMORY_HEAVY)
    assert any(line == 3 for (_f, line) in report.line_memory_mb)


def test_memray_log_grows_with_every_event():
    # CALL_HEAVY produces thousands of churn allocation events.
    report, _ = run_with("memray", CALL_HEAVY)
    assert report.total_samples > 1000
    assert report.log_bytes >= report.total_samples * 40


def test_austin_log_grows_with_samples():
    report, _ = run_with("austin_cpu", CALL_HEAVY)
    assert report.log_bytes > 0
    assert report.log_bytes >= report.total_samples * 100


def test_rate_sampler_counts_allocation_volume():
    # 200 x 2 MB transients: ~0.8 GB of alloc+free volume, but each stays
    # below the 10 MB threshold, so the footprint never moves far enough
    # for threshold sampling to fire — while rate sampling fires ~once per
    # 10 MB of volume.
    source = "for i in range(200):\n    scratch(2000000)\n"
    report, process = run_with("rate_sampler", source)
    assert report.total_samples >= 30

    from repro.core import Scalene

    process2 = SimProcess(source, filename="w.py")
    scalene = Scalene(process2, mode="full")
    scalene.start()
    process2.run()
    scalene.stop()
    assert scalene.memory_profiler.sample_count <= 2
    assert report.total_samples > 10 * max(scalene.memory_profiler.sample_count, 1)


def test_rate_sampler_rejects_bad_rate():
    process = SimProcess("x = 1\n", filename="w.py")
    from repro.baselines.rate_sampler import RateBasedSampler

    with pytest.raises(ValueError):
        RateBasedSampler(process, rate=0)


def test_profiler_lifecycle_misuse():
    process = SimProcess("x = 1\n", filename="w.py")
    profiler = make_profiler("cProfile", process)
    with pytest.raises(ProfilerError):
        profiler.stop()
    profiler.start()
    with pytest.raises(ProfilerError):
        profiler.start()


def test_capabilities_match_figure1_key_facts():
    from repro.baselines import all_profilers

    caps = {name: cls.capabilities for name, cls in all_profilers().items()}
    # Scalene (all) is the only row with copy volume and leak detection.
    assert caps["scalene_full"].copy_volume
    assert caps["scalene_full"].detects_leaks
    assert not any(
        c.copy_volume for n, c in caps.items() if n != "scalene_full"
    )
    # RSS-based profilers are marked as such.
    assert caps["memory_profiler"].memory_kind == "rss"
    assert caps["austin_full"].memory_kind == "rss"
    # Peak-only profilers.
    assert caps["fil"].memory_kind == "peak"
    assert caps["memray"].memory_kind == "peak"
    # line_profiler and memory_profiler need modified code.
    assert not caps["line_profiler"].unmodified_code
    assert not caps["memory_profiler"].unmodified_code
