"""Tests for the content-addressed profile store and aggregation engine."""

import json

import pytest

from repro import SimProcess
from repro.core import Scalene
from repro.errors import StoreError
from repro.serve import (
    ProfileStore,
    config_hash,
    diff_stored,
    find_regressions,
    merge_stored,
    trend,
)

SOURCE_A = (
    "total = 0\n"
    "for i in range(3000):\n"
    "    total = total + i\n"
    "print(total)\n"
)
SOURCE_B = (
    "bufs = []\n"
    "for j in range(12):\n"
    "    bufs.append(py_buffer(1048576))\n"
    "native_work(0.5)\n"
)


def run_profile(source, filename="store_test.py"):
    return Scalene.run(SimProcess(source, filename=filename), mode="full")


@pytest.fixture()
def store(tmp_path):
    return ProfileStore(tmp_path / "store")


def test_put_get_round_trip(store):
    profile = run_profile(SOURCE_A)
    profile_id = store.put(profile, workload="wl-a", profiler="scalene")
    restored = store.get(profile_id)
    assert restored.to_dict() == profile.to_dict()


def test_content_addressing_dedupes_identical_profiles(store):
    profile = run_profile(SOURCE_A)
    first = store.put(profile, workload="wl-a")
    second = store.put(profile, workload="wl-a")
    assert first == second
    assert len(store) == 1


def test_distinct_profiles_get_distinct_ids(store):
    id_a = store.put(run_profile(SOURCE_A), workload="wl-a")
    id_b = store.put(run_profile(SOURCE_B), workload="wl-b")
    assert id_a != id_b
    assert len(store) == 2


def test_prefix_resolution(store):
    id_a = store.put(run_profile(SOURCE_A), workload="wl-a")
    assert store.resolve(id_a[:12]) == id_a
    assert id_a[:12] in store
    with pytest.raises(StoreError, match="unknown profile id"):
        store.get("0" * 64 if id_a[0] != "0" else "f" * 64)


def test_index_filtering(store):
    id_a = store.put(run_profile(SOURCE_A), workload="wl-a", tree_hash="t1")
    id_b = store.put(run_profile(SOURCE_B), workload="wl-b", tree_hash="t2")
    assert [e["id"] for e in store.find(workload="wl-a")] == [id_a]
    assert [e["id"] for e in store.find(tree_hash="t2")] == [id_b]
    assert store.find(workload="wl-a", tree_hash="t2") == []
    assert {e["id"] for e in store.find()} == {id_a, id_b}


def test_corrupt_object_detected(store):
    profile_id = store.put(run_profile(SOURCE_A), workload="wl-a")
    path = store._object_path(profile_id)
    blob = json.loads(path.read_text())
    blob["profile"]["cpu"]["samples"] += 1  # tamper
    path.write_text(json.dumps(blob))
    with pytest.raises(StoreError, match="corrupt"):
        store.get(profile_id)


def test_merge_stored_records_parents(store):
    id_a = store.put(run_profile(SOURCE_A), workload="wl", tree_hash="t")
    id_b = store.put(run_profile(SOURCE_B), workload="wl", tree_hash="t")
    merged_id, merged = merge_stored(store, [id_a, id_b])
    entry = store.entry(merged_id)
    assert sorted(entry["parents"]) == sorted([id_a, id_b])
    assert entry["workload"] == "wl"
    assert entry["tree_hash"] == "t"
    a, b = store.get(id_a), store.get(id_b)
    assert merged.cpu_samples == a.cpu_samples + b.cpu_samples
    assert merged.peak_footprint_mb == max(a.peak_footprint_mb, b.peak_footprint_mb)
    with pytest.raises(StoreError, match="at least two"):
        merge_stored(store, [id_a])


def test_diff_stored(store):
    id_a = store.put(run_profile(SOURCE_A), workload="wl")
    id_b = store.put(run_profile(SOURCE_B), workload="wl")
    diff = diff_stored(store, id_a, id_b)
    payload = diff.to_dict()
    assert payload["elapsed_before_s"] == store.get(id_a).elapsed
    assert payload["lines"]  # disjoint programs still produce deltas


def test_trend_orders_by_time_and_skips_merged(store):
    id_a = store.put(run_profile(SOURCE_A), workload="wl", created_at=100.0)
    id_b = store.put(run_profile(SOURCE_B), workload="wl", created_at=200.0)
    merge_stored(store, [id_a, id_b])
    points = trend(store, workload="wl")
    assert [p["id"] for p in points] == [id_a, id_b]
    all_points = trend(store, workload="wl", include_merged=True)
    assert len(all_points) == 3


def test_find_regressions_flags_consecutive_jumps():
    points = [
        {"id": "a", "workload": "wl", "elapsed_s": 1.0, "peak_mb": 10.0},
        {"id": "b", "workload": "wl", "elapsed_s": 1.05, "peak_mb": 10.0},
        {"id": "c", "workload": "wl", "elapsed_s": 2.5, "peak_mb": 30.0},
    ]
    flags = find_regressions(points)
    assert len(flags) == 1
    assert flags[0]["before"] == "b" and flags[0]["after"] == "c"
    assert len(flags[0]["reasons"]) == 2


def test_config_hash_stability_and_sensitivity():
    from repro.core.config import ScaleneConfig

    assert config_hash(None) == ""
    assert config_hash({"a": 1}) == config_hash({"a": 1})
    assert config_hash({"a": 1}) != config_hash({"a": 2})
    assert config_hash(ScaleneConfig()) == config_hash(ScaleneConfig())
    assert config_hash(ScaleneConfig()) != config_hash(ScaleneConfig(mode="cpu"))


def test_store_reopens_from_disk(tmp_path):
    first = ProfileStore(tmp_path / "store")
    profile = run_profile(SOURCE_A)
    profile_id = first.put(profile, workload="wl-a")
    reopened = ProfileStore(tmp_path / "store")
    assert reopened.get(profile_id).to_dict() == profile.to_dict()
    assert reopened.entry(profile_id)["workload"] == "wl-a"


# -- crash safety and recovery (DESIGN.md §8) -------------------------------


def test_missing_index_rebuilds_from_blob_scan(tmp_path):
    store = ProfileStore(tmp_path / "store")
    id_a = store.put(run_profile(SOURCE_A), workload="wl-a")
    id_b = store.put(run_profile(SOURCE_B), workload="wl-b")
    store.index_path.unlink()
    reopened = ProfileStore(tmp_path / "store")
    assert reopened.last_recovery["index_rebuilt"] == 1
    assert reopened.last_recovery["objects_quarantined"] == 0
    assert {e["id"] for e in reopened.entries()} == {id_a, id_b}
    # The sidecars carried the full query key through the rebuild.
    assert reopened.entry(id_a)["workload"] == "wl-a"
    assert reopened.entry(id_b)["workload"] == "wl-b"


def test_corrupt_index_heals_in_place(store):
    profile_id = store.put(run_profile(SOURCE_A), workload="wl-a")
    store.index_path.write_text("{ not json", encoding="utf-8")
    # Any read path heals the torn index by rebuilding from the blobs.
    assert [e["id"] for e in store.entries()] == [profile_id]
    assert json.loads(store.index_path.read_text())["entries"]


def test_interrupted_write_temp_files_swept_on_open(tmp_path):
    store = ProfileStore(tmp_path / "store")
    store.put(run_profile(SOURCE_A), workload="wl-a")
    leftover = store.objects_dir / "de" / "deadbeef.json.tmp.12345"
    leftover.parent.mkdir(parents=True, exist_ok=True)
    leftover.write_text("partial", encoding="utf-8")
    reopened = ProfileStore(tmp_path / "store")
    assert reopened.last_recovery["tmp_swept"] == 1
    assert not leftover.exists()


def test_corrupt_blob_quarantined_during_rebuild(tmp_path):
    store = ProfileStore(tmp_path / "store")
    id_a = store.put(run_profile(SOURCE_A), workload="wl-a")
    id_b = store.put(run_profile(SOURCE_B), workload="wl-b")
    path = store._object_path(id_a)
    path.write_text(path.read_text()[: 100], encoding="utf-8")  # torn blob
    store.index_path.unlink()
    reopened = ProfileStore(tmp_path / "store")
    assert reopened.last_recovery["index_rebuilt"] == 1
    assert reopened.last_recovery["objects_quarantined"] == 1
    assert [e["id"] for e in reopened.entries()] == [id_b]
    # Evidence preserved, not deleted.
    assert list(reopened.quarantine_dir.iterdir())
    assert not path.exists()


def test_rebuild_without_sidecar_keeps_blob_listed(tmp_path):
    store = ProfileStore(tmp_path / "store")
    profile = run_profile(SOURCE_A)
    profile_id = store.put(profile, workload="wl-a")
    store._meta_path(profile_id).unlink()
    store.index_path.unlink()
    reopened = ProfileStore(tmp_path / "store")
    entry = reopened.entry(profile_id)
    assert entry["workload"] == ""  # the key lived only in the sidecar
    assert entry["elapsed_s"] == pytest.approx(profile.elapsed)
    assert entry["cpu_samples"] == profile.cpu_samples
    assert reopened.get(profile_id).to_dict() == profile.to_dict()


def test_torn_write_fault_heals_on_retry(tmp_path):
    from repro.faults import FaultInjector

    store = ProfileStore(tmp_path / "store")
    store.faults = FaultInjector(torn_writes=1)
    profile = run_profile(SOURCE_A)
    with pytest.raises(StoreError, match="torn write"):
        store.put(profile, workload="wl-a")
    # The tear left truncated bytes in the destination; the retry
    # detects the corrupt object and rewrites it.
    profile_id = store.put(profile, workload="wl-a")
    assert store.get(profile_id).to_dict() == profile.to_dict()
    assert store.entry(profile_id)["workload"] == "wl-a"
    assert store.faults.counters["torn_writes"] == 1
