"""Deoptimization paths of the trace-JIT tier.

Every way a compiled trace can give control back to the interpreter —
type-instability guard failures, inline-cache invalidation, signal
deadlines, fault injection, the ``REPRO_VERIFY`` compile toggle — must
fall back with exact per-line attribution: same stdout, same profile,
same ground-truth line table (so churn is never double-counted), while
the tier counters prove the scenario actually exercised the path it
claims to.
"""

from __future__ import annotations

import os

import pytest

from repro.core.scalene import Scalene
from repro.faults import FaultInjector, FaultSpec
from repro.interp.jit import jit_stats
from repro.runtime.process import SimProcess

pytestmark = pytest.mark.jit

#: Hot loop with a type flip: element 35 is a string, so the traced
#: ``xs[j] + 1`` passes its int-guard 39 times per round and fails it
#: once — a genuine deopt mid-trace, recovered by the except handler.
TYPE_FLIP = """
xs = []
i = 0
while i < 40:
    if i == 35:
        xs.append("s")
    else:
        xs.append(i)
    i = i + 1
hits = 0
errs = 0
r = 0
while r < 25:
    j = 0
    while j < 40:
        try:
            hits = hits + (xs[j] + 1)
        except:
            errs = errs + 1
        j = j + 1
    r = r + 1
print(hits, errs)
"""

#: Bound-method load with an alternating receiver: the LOAD_ATTR inline
#: cache is monomorphic (identity-keyed), so every iteration invalidates
#: it for the other list and the trace deopts for re-resolution.
ATTR_FLIP = """
xs = []
ys = []
i = 0
while i < 300:
    if i % 2 == 0:
        o = xs
    else:
        o = ys
    m = o.append
    i = i + 1
print(i)
"""

#: Plain hot loop: compiles, enters thousands of times, never deopts.
HOT_LOOP = """
i = 0
acc = 0
while i < 8000:
    acc = acc + i * 3 - (i // 7)
    i = i + 1
print(acc)
"""

#: Allocation-heavy loop: a fresh list plus churn every iteration, so
#: per-line alloc/free ground truth is sensitive to any double-charge.
CHURN_LOOP = """
r = 0
total = 0
while r < 400:
    row = [r, r + 1, r + 2]
    total = total + row[0] + row[2]
    r = r + 1
print(total)
"""


def _run(source, jit, threshold=None, *, faults=None, mode=None,
         ground_truth=False, verify=None):
    env = {
        "REPRO_JIT": jit,
        "REPRO_JIT_THRESHOLD": threshold,
        "REPRO_VERIFY": verify,
        "REPRO_CODE_CACHE": "0",
    }
    saved = {key: os.environ.get(key) for key in env}
    try:
        for key, value in env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        process = SimProcess(
            source, filename="deopt.py", collect_ground_truth=ground_truth
        )
        if faults is not None:
            process.install_faults(FaultInjector(faults))
        profiler = None
        if mode:
            profiler = Scalene(process, mode=mode)
            profiler.start()
        process.run()
        profile_json = profiler.stop().to_json() if profiler else None
        return {
            "stdout": list(process.stdout),
            "stats": jit_stats(process.code),
            "profile": profile_json,
            "gt": process.ground_truth,
        }
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _gt_lines(result):
    """Per-line ground truth as comparable tuples (attribution contract)."""
    return {
        key: (
            truth.python_time,
            truth.python_alloc_bytes,
            truth.python_free_bytes,
        )
        for key, truth in result["gt"].lines.items()
    }


def test_type_instability_deopts_with_exact_attribution():
    off = _run(TYPE_FLIP, "0", ground_truth=True)
    on = _run(TYPE_FLIP, "1", "0", ground_truth=True)
    assert on["stdout"] == off["stdout"] == ["19600 25"]
    assert on["stats"]["enters"] > 0, "trace never entered"
    assert on["stats"]["deopts"] > 0, "type flip never failed a guard"
    assert _gt_lines(on) == _gt_lines(off), "per-line attribution diverged"


def test_inline_cache_invalidation_deopts():
    off = _run(ATTR_FLIP, "0", ground_truth=True)
    on = _run(ATTR_FLIP, "1", "0", ground_truth=True)
    assert on["stdout"] == off["stdout"] == ["300"]
    assert on["stats"]["enters"] > 0
    # Every alternate receiver misses the identity-keyed cache.
    assert on["stats"]["deopts"] > 0
    assert _gt_lines(on) == _gt_lines(off)


def test_signal_deadlines_respected_mid_trace():
    """With the CPU profiler attached, traces still run (entry guard
    proves each pass fits before the next deadline) and the sampled
    profile is bit-identical to the interpreter tier's."""
    off = _run(HOT_LOOP, "0", mode="cpu")
    on = _run(HOT_LOOP, "1", "0", mode="cpu")
    assert on["stdout"] == off["stdout"]
    assert on["stats"]["enters"] > 0, "profiler attached must not disable the tier"
    assert on["profile"] == off["profile"]


def test_memory_hooks_loud_path_bit_identical():
    """Full mode attaches allocation hooks, so traces run every churn
    site through the loud writeback/reload safepoint. Hook overhead
    advances the clock by amounts the per-op budget cannot predict, so
    the safepoint check must keep the margin_ops slack — otherwise a
    signal deadline crossed between a safepoint and the backward jump is
    delivered an op boundary late and the sampled split diverges."""
    off = _run(HOT_LOOP, "0", mode="full")
    on = _run(HOT_LOOP, "1", "0", mode="full")
    assert on["stdout"] == off["stdout"]
    assert on["stats"]["enters"] > 0, "memory hooks must not disable the tier"
    assert on["profile"] == off["profile"]


def test_fault_plane_disables_trace_entry():
    """A scheduled fault spec forces the observation-rich interpreter
    path: zero trace enters, and the faulted run stays bit-identical to
    the interpreter tier under the same spec."""
    spec = FaultSpec(seed=1, signal_drop_rate=0.3)
    off = _run(HOT_LOOP, "0", faults=spec, mode="cpu")
    on = _run(HOT_LOOP, "1", "0", faults=spec, mode="cpu")
    assert on["stats"]["enters"] == 0
    assert on["stdout"] == off["stdout"]
    assert on["profile"] == off["profile"]


def test_repro_verify_composes_with_jit():
    off = _run(HOT_LOOP, "0", verify="1")
    on = _run(HOT_LOOP, "1", "0", verify="1")
    assert on["stdout"] == off["stdout"]
    assert on["stats"]["enters"] > 0


def test_churn_is_not_double_counted():
    """Alloc/free ground truth per line must match exactly: a trace that
    flushed churn both inside the trace and at the deopt boundary would
    show doubled alloc bytes here."""
    off = _run(CHURN_LOOP, "0", ground_truth=True)
    on = _run(CHURN_LOOP, "1", "0", ground_truth=True)
    assert on["stdout"] == off["stdout"]
    assert on["stats"]["enters"] > 0
    assert _gt_lines(on) == _gt_lines(off)


def test_jit_stats_surface_on_scalene():
    """Scalene.jit_stats: the observation-point contract's test surface."""
    os_env = os.environ.get("REPRO_JIT_THRESHOLD")
    try:
        os.environ["REPRO_JIT_THRESHOLD"] = "0"
        os.environ["REPRO_JIT"] = "1"
        os.environ["REPRO_CODE_CACHE"] = "0"
        process = SimProcess(HOT_LOOP, filename="deopt.py")
        scalene = Scalene(process, mode="cpu")
        scalene.start()
        process.run()
        scalene.stop()
        stats = scalene.jit_stats()
        assert stats["compiled"] >= 1
        assert stats["enters"] > 0
    finally:
        if os_env is None:
            os.environ.pop("REPRO_JIT_THRESHOLD", None)
        else:
            os.environ["REPRO_JIT_THRESHOLD"] = os_env
