"""Tests for comprehension and subscript-augassign support."""

import pytest

from repro.errors import CompileError, VMError
from repro.interp.astcompile import compile_source
from repro.runtime.process import SimProcess


def run_and_capture(source):
    process = SimProcess(source, filename="comp.py")
    captured = {}
    original = process._finalize

    def capture():
        captured.update(process.globals)
        from repro.interp.objects import incref

        for value in captured.values():
            incref(value)
        original()

    process._finalize = capture
    process.run()
    return process, captured


def test_list_comprehension():
    _, g = run_and_capture("xs = [i * 2 for i in range(5)]\n")
    assert g["xs"].items == [0, 2, 4, 6, 8]


def test_list_comprehension_with_filter():
    _, g = run_and_capture("xs = [i for i in range(10) if i % 3 == 0]\n")
    assert g["xs"].items == [0, 3, 6, 9]


def test_list_comprehension_over_simlist():
    _, g = run_and_capture("src = [1, 2, 3]\nxs = [v + 10 for v in src]\n")
    assert g["xs"].items == [11, 12, 13]


def test_generator_expression_materializes():
    _, g = run_and_capture("total = sum(i * i for i in range(5))\n")
    assert g["total"] == 30


def test_nested_usage_in_call():
    _, g = run_and_capture("n = len([i for i in range(7) if i > 2])\n")
    assert g["n"] == 4


def test_comprehension_result_is_heap_backed():
    process, _ = run_and_capture("xs = [i for i in range(100)]\ndel xs\n")
    assert process.mem.logical_footprint() == 0


def test_multi_generator_rejected():
    with pytest.raises(CompileError):
        compile_source("x = [i + j for i in a for j in b]\n")


def test_augassign_on_dict_subscript():
    _, g = run_and_capture(
        "d = {'a': 1}\n"
        "d['a'] += 5\n"
        "d['a'] *= 2\n"
        "v = d['a']\n"
    )
    assert g["v"] == 12


def test_augassign_on_list_subscript():
    _, g = run_and_capture("xs = [1, 2, 3]\nxs[1] += 10\n")
    assert g["xs"].items == [1, 12, 3]


def test_augassign_subscript_missing_key_raises():
    with pytest.raises(VMError, match="KeyError"):
        SimProcess("d = {}\nd['missing'] += 1\n", filename="c.py").run()


def test_augassign_on_attribute_still_rejected():
    with pytest.raises(CompileError):
        compile_source("obj.field += 1\n")


def test_comprehension_matches_host_semantics():
    source = "xs = [i * 3 - 1 for i in range(20) if i % 2 == 1]\n"
    _, g = run_and_capture(source)
    namespace = {}
    exec(source, {"range": range}, namespace)  # noqa: S102 - oracle
    assert g["xs"].items == namespace["xs"]
