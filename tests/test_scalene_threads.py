"""Integration tests: Scalene's subthread attribution (§2.2)."""

import pytest

from repro import SimProcess
from repro.core import Scalene
from repro.core.thread_attrib import ThreadStatusTable, is_in_native_call


def test_monkey_patched_join_keeps_signals_flowing():
    """With Scalene attached, a main-thread join no longer starves signals."""
    source = (
        "def worker():\n"
        "    s = 0\n"
        "    for i in range(6000):\n"
        "        s = s + 1\n"
        "t = spawn(worker)\n"
        "join(t)\n"
    )
    process = SimProcess(source, filename="t.py")
    prof = Scalene.run(process, mode="cpu")
    duration = process.clock.wall
    expected_samples = duration / 0.01
    # Without the patches the count collapses to a handful (see
    # test_threads_scheduler.py); with them we get most of the samples.
    assert prof.cpu_samples >= expected_samples * 0.5


def test_subthread_python_time_is_attributed():
    """pprofile(stat.)-style profilers see nothing in subthreads; Scalene
    attributes their Python execution to the right line."""
    source = (
        "def worker():\n"
        "    s = 0\n"
        "    for i in range(8000):\n"
        "        s = s + 1\n"  # line 4: hot loop inside the subthread
        "t = spawn(worker)\n"
        "join(t)\n"
    )
    process = SimProcess(source, filename="t.py")
    prof = Scalene.run(process, mode="cpu")
    hot = prof.line(4)
    assert hot is not None
    assert hot.cpu_python_percent > 25
    assert hot.cpu_python_percent > hot.cpu_native_percent


def test_subthread_native_time_uses_call_opcode_heuristic():
    source = (
        "def worker():\n"
        "    native_work(2.0)\n"  # line 2: long native call in a subthread
        "t = spawn(worker)\n"
        "join(t)\n"
    )
    process = SimProcess(source, filename="t.py")
    prof = Scalene.run(process, mode="cpu")
    line = prof.line(2)
    assert line is not None
    assert line.cpu_native_percent > 30
    assert line.cpu_native_percent > 5 * max(line.cpu_python_percent, 0.1)


def test_sleeping_main_thread_not_charged():
    """While main joins (patched → flagged sleeping), the worker gets the
    CPU attribution, not the join line."""
    source = (
        "def worker():\n"
        "    s = 0\n"
        "    for i in range(8000):\n"
        "        s = s + 1\n"
        "t = spawn(worker)\n"
        "join(t)\n"  # line 6
    )
    process = SimProcess(source, filename="t.py")
    prof = Scalene.run(process, mode="cpu")
    join_line = prof.line(6)
    worker_line = prof.line(4)
    assert worker_line is not None
    worker_cpu = worker_line.cpu_python_percent + worker_line.cpu_native_percent
    join_cpu = 0.0
    if join_line is not None:
        join_cpu = join_line.cpu_python_percent + join_line.cpu_native_percent
    assert worker_cpu > 5 * max(join_cpu, 1.0)


def test_status_table_defaults_to_executing():
    table = ThreadStatusTable()

    class T:
        ident = 77

    thread = T()
    assert table.is_executing(thread)
    table.set_sleeping(thread)
    assert not table.is_executing(thread)
    table.set_executing(thread)
    assert table.is_executing(thread)


def test_is_in_native_call_heuristic():
    source = "def f():\n    pass\nx = 1\n"
    process = SimProcess(source, filename="t.py")
    thread = process.main_thread
    # Park the frame's lasti on a CALL instruction artificially.
    frame = thread.frame
    from repro.interp.opcodes import CALL_OPCODES

    call_indices = [
        i for i, ins in enumerate(frame.code.instructions) if ins.opcode in CALL_OPCODES
    ]
    non_call_indices = [
        i
        for i, ins in enumerate(frame.code.instructions)
        if ins.opcode not in CALL_OPCODES
    ]
    if call_indices:
        frame.lasti = call_indices[0]
        assert is_in_native_call(thread, process.call_opcode_map)
    frame.lasti = non_call_indices[0]
    assert not is_in_native_call(thread, process.call_opcode_map)


def test_patches_restore_cleanly():
    source = "x = 1\n"
    process = SimProcess(source, filename="t.py")
    original_join = process.threading.join_impl
    original_acquire = process.threading.acquire_impl
    scalene = Scalene(process, mode="cpu")
    scalene.start()
    assert process.threading.join_impl is not original_join
    process.run()
    scalene.stop()
    assert process.threading.join_impl is original_join
    assert process.threading.acquire_impl is original_acquire
