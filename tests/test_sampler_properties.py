"""Property-based tests of the threshold sampler's core invariants (§3.2)."""

from hypothesis import given, settings, strategies as st

from repro import SimProcess
from repro.core.config import ScaleneConfig
from repro.core.memory_profiler import MemoryProfiler
from repro.core.stats import ScaleneStats

THRESHOLD = 1_000_000


def run_events(events):
    """Feed signed byte deltas through a fresh sampler.

    Returns (profiler, baseline_footprint) — the process has a small
    pre-existing footprint (the module frame) at install time.
    """
    process = SimProcess("x = 1\n", filename="p.py")
    config = ScaleneConfig(memory_threshold=THRESHOLD)
    profiler = MemoryProfiler(process, config, ScaleneStats())
    profiler.install()
    baseline = profiler.footprint
    thread = process.main_thread
    for i, delta in enumerate(events):
        profiler.observe(delta, "python", i, thread)
    profiler.uninstall()
    return profiler, baseline


deltas = st.lists(
    st.integers(min_value=-400_000, max_value=400_000), max_size=200
)


@settings(max_examples=80, deadline=None)
@given(deltas)
def test_footprint_tracking_is_exact(events):
    """The sampler's footprint equals the sum of all observed deltas."""
    profiler, baseline = run_events(events)
    assert profiler.footprint == baseline + sum(events)


@settings(max_examples=80, deadline=None)
@given(deltas)
def test_sample_count_bounded_by_path_length(events):
    """Samples fire at most once per T bytes of |footprint| movement."""
    profiler, _ = run_events(events)
    path_length = sum(abs(d) for d in events)
    assert profiler.sample_count <= path_length // THRESHOLD + 1


@settings(max_examples=80, deadline=None)
@given(deltas)
def test_residual_always_below_threshold(events):
    """Between samples, the un-sampled drift stays strictly below T."""
    profiler, _ = run_events(events)
    residual = abs(profiler.footprint - profiler._footprint_at_last_sample)
    # A single event can overshoot by at most one event's size; with our
    # event bound of 400 KB < T the residual is always < T.
    assert residual < THRESHOLD


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=30))
def test_monotone_growth_samples_once_per_threshold(steps):
    """Pure growth of N*T bytes produces exactly N samples."""
    events = [THRESHOLD] * steps
    profiler, _ = run_events(events)
    assert profiler.sample_count == steps


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=THRESHOLD - 1), max_size=100))
def test_balanced_transients_never_sample(sizes):
    """alloc+free pairs below T never move the footprint far enough."""
    events = []
    for size in sizes:
        events.extend((size, -size))
    profiler, _ = run_events(events)
    assert profiler.sample_count == 0
