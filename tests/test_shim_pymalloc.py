"""Tests for the allocator shim (in-allocator flag) and pymalloc layering."""

import pytest

from repro.errors import HeapError
from repro.memory.pymalloc import ARENA_SIZE, SMALL_THRESHOLD, PyMalloc
from repro.memory.shim import DOMAIN_NATIVE, DOMAIN_PYTHON, AllocatorShim, AllocEvent, ShimListener
from repro.memory.sysalloc import SystemAllocator
from repro.runtime.clock import VirtualClock


class Recorder(ShimListener):
    def __init__(self):
        self.mallocs = []
        self.frees = []
        self.memcpys = []

    def on_malloc(self, event):
        self.mallocs.append(event)

    def on_free(self, event):
        self.frees.append(event)

    def on_memcpy(self, event):
        self.memcpys.append(event)


@pytest.fixture
def shim():
    return AllocatorShim(SystemAllocator(base_rss_bytes=0), VirtualClock())


def test_listener_sees_malloc_and_free(shim):
    recorder = Recorder()
    shim.add_listener(recorder)
    a = shim.malloc(1000)
    shim.free(a)
    assert len(recorder.mallocs) == 1
    assert recorder.mallocs[0].nbytes == 1000
    assert recorder.mallocs[0].domain == DOMAIN_NATIVE
    assert len(recorder.frees) == 1
    assert recorder.frees[0].address == a.address


def test_in_allocator_flag_suppresses_events(shim):
    """§3.1: traffic from inside an allocator must not be double counted."""
    recorder = Recorder()
    shim.add_listener(recorder)
    with shim.allocator_guard():
        a = shim.malloc(1000)
        shim.free(a)
    assert recorder.mallocs == []
    assert recorder.frees == []
    assert shim.suppressed_events == 2


def test_guard_is_per_thread(shim):
    class T:
        def __init__(self, ident):
            self.ident = ident

    recorder = Recorder()
    shim.add_listener(recorder)
    t1, t2 = T(1), T(2)
    with shim.allocator_guard(t1):
        shim.malloc(10, thread=t2)  # other thread: still published
        shim.malloc(10, thread=t1)  # guarded thread: suppressed
    assert len(recorder.mallocs) == 1


def test_guard_nesting(shim):
    with shim.allocator_guard():
        with shim.allocator_guard():
            assert shim.in_allocator()
        assert shim.in_allocator()  # outer guard still active
    assert not shim.in_allocator()


def test_memcpy_event(shim):
    recorder = Recorder()
    shim.add_listener(recorder)
    shim.memcpy(4096, direction="h2d")
    assert recorder.memcpys[0].nbytes == 4096
    assert recorder.memcpys[0].direction == "h2d"


def test_publish_python_event(shim):
    recorder = Recorder()
    shim.add_listener(recorder)
    shim.publish_python_event(
        AllocEvent("malloc", 28, 0x1, DOMAIN_PYTHON, None, 0.0, 0.0)
    )
    assert recorder.mallocs[0].domain == DOMAIN_PYTHON


def test_remove_listener(shim):
    recorder = Recorder()
    shim.add_listener(recorder)
    shim.remove_listener(recorder)
    shim.malloc(10)
    assert recorder.mallocs == []
    shim.remove_listener(recorder)  # idempotent


# -- pymalloc -----------------------------------------------------------------


def test_small_allocations_come_from_arenas():
    sysalloc = SystemAllocator(base_rss_bytes=0)
    shim = AllocatorShim(sysalloc)
    pym = PyMalloc(shim)
    handles = [pym.alloc(64) for _ in range(100)]
    # 100 * 64 bytes fits in one arena.
    assert pym.arena_count == 1
    assert sysalloc.mapped_bytes() == ARENA_SIZE
    for h in handles:
        pym.free(h)
    assert pym.live_bytes == 0


def test_large_allocation_falls_through_to_system():
    sysalloc = SystemAllocator(base_rss_bytes=0)
    shim = AllocatorShim(sysalloc)
    pym = PyMalloc(shim)
    h = pym.alloc(SMALL_THRESHOLD + 1)
    assert h.kind == "large"
    assert sysalloc.mapped_bytes() >= SMALL_THRESHOLD + 1
    pym.free(h)
    assert sysalloc.mapped_bytes() == 0


def test_arena_requests_are_suppressed_from_listeners():
    """Arena mappings are internal work, invisible to shim listeners."""
    sysalloc = SystemAllocator(base_rss_bytes=0)
    shim = AllocatorShim(sysalloc)
    recorder = Recorder()
    shim.add_listener(recorder)
    pym = PyMalloc(shim)
    pym.alloc(64)
    assert recorder.mallocs == []  # the arena malloc was guarded


def test_arena_growth_and_release():
    sysalloc = SystemAllocator(base_rss_bytes=0)
    shim = AllocatorShim(sysalloc)
    pym = PyMalloc(shim)
    handles = [pym.alloc(512) for _ in range(2000)]  # ~1 MB of smalls
    grown = pym.arena_count
    assert grown >= 4
    for h in handles:
        pym.free(h)
    assert pym.arena_count < grown


def test_pymalloc_double_free_raises():
    pym = PyMalloc(AllocatorShim(SystemAllocator()))
    h = pym.alloc(64)
    pym.free(h)
    with pytest.raises(HeapError):
        pym.free(h)


def test_pymalloc_negative_alloc_raises():
    pym = PyMalloc(AllocatorShim(SystemAllocator()))
    with pytest.raises(HeapError):
        pym.alloc(-5)


def test_live_bytes_accounting():
    pym = PyMalloc(AllocatorShim(SystemAllocator()))
    h1 = pym.alloc(100)
    h2 = pym.alloc(10_000)
    assert pym.live_bytes == 10_100
    pym.free(h1)
    assert pym.live_bytes == 10_000
    pym.free(h2)
    assert pym.live_bytes == 0
