"""The compiled-code cache: hits, keying, and the REPRO_VERIFY regression.

The regression this file pins down: the cache key must include the
*resolved* verify flag. Toggling ``REPRO_VERIFY`` between two runs of the
same source must recompile (distinct cache entries), never serve a code
object compiled under the other verification setting.
"""

from __future__ import annotations

import pytest

from repro.interp.astcompile import (
    clear_code_cache,
    code_cache_stats,
    compile_source,
)

SOURCE = "a = 1\nb = a + 2\nprint(b)\n"


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_code_cache()
    yield
    clear_code_cache()


def test_repeat_compile_hits_cache():
    first = compile_source(SOURCE, "cache.py")
    second = compile_source(SOURCE, "cache.py")
    assert second is first  # shared immutable code object
    stats = code_cache_stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["size"] == 1


def test_distinct_sources_do_not_collide():
    first = compile_source(SOURCE, "cache.py")
    other = compile_source(SOURCE + "c = 9\n", "cache.py")
    assert other is not first
    assert code_cache_stats()["size"] == 2


def test_filename_is_part_of_the_key():
    first = compile_source(SOURCE, "one.py")
    second = compile_source(SOURCE, "two.py")
    assert second is not first
    assert second.filename == "two.py"


def test_verify_toggle_bypasses_cache(monkeypatch):
    """Regression: REPRO_VERIFY toggled between runs must recompile."""
    monkeypatch.setenv("REPRO_VERIFY", "0")
    unverified = compile_source(SOURCE, "toggle.py")
    monkeypatch.setenv("REPRO_VERIFY", "1")
    verified = compile_source(SOURCE, "toggle.py")
    assert verified is not unverified  # distinct entries, not a stale hit
    stats = code_cache_stats()
    assert stats["misses"] == 2
    assert stats["hits"] == 0
    assert stats["size"] == 2
    # Each setting now hits its own entry.
    assert compile_source(SOURCE, "toggle.py") is verified
    monkeypatch.setenv("REPRO_VERIFY", "0")
    assert compile_source(SOURCE, "toggle.py") is unverified
    assert code_cache_stats()["hits"] == 2


def test_explicit_verify_argument_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "1")
    explicit = compile_source(SOURCE, "explicit.py", verify=False)
    env_resolved = compile_source(SOURCE, "explicit.py")
    assert explicit is not env_resolved


def test_cache_can_be_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_CACHE", "0")
    first = compile_source(SOURCE, "off.py")
    second = compile_source(SOURCE, "off.py")
    assert second is not first
    stats = code_cache_stats()
    assert stats["size"] == 0
    assert stats["hits"] == 0


def test_cache_is_bounded_lru():
    for index in range(200):
        compile_source(f"x = {index}\n", "lru.py")
    stats = code_cache_stats()
    assert stats["size"] <= 128
    # The most recent entry is still cached, the oldest evicted.
    before = code_cache_stats()["hits"]
    compile_source("x = 199\n", "lru.py")
    assert code_cache_stats()["hits"] == before + 1
    compile_source("x = 0\n", "lru.py")
    assert code_cache_stats()["hits"] == before + 1  # miss: was evicted
