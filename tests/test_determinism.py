"""Seeded determinism under faults: same seed + same FaultSpec ⇒ same run.

The whole simulation — scheduler picks, signal delivery, fault
decisions, virtual clocks — is driven by seeded PRNGs and a virtual
clock, so two runs of the same threaded program with identical fault
specs must agree *bit for bit*: same stdout, same context-switch count,
same serialized profile. Any hidden dependence on host state (wall
clock, dict order, object ids) breaks this property immediately.
"""

from __future__ import annotations

import pytest

from repro.core.scalene import Scalene
from repro.faults import FaultInjector, FaultSpec
from repro.interp.libs import install_standard_libraries
from repro.runtime.process import SimProcess

from tests.conftest import generate_threaded_program

SEEDS = list(range(12))


def _run(seed: int, spec: FaultSpec):
    source = generate_threaded_program(seed)
    process = SimProcess(source, filename=f"det_{seed}.py")
    install_standard_libraries(process)
    process.install_faults(FaultInjector(spec))
    scalene = Scalene(process, mode="cpu")
    scalene.start()
    process.run()
    profile = scalene.stop()
    return (
        list(process.stdout),
        process.scheduler.switch_count,
        profile.to_json(),
    )


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_same_faults_bit_identical(seed):
    spec = FaultSpec(seed=seed, signal_drop_rate=0.3)
    first = _run(seed, spec)
    second = _run(seed, spec)
    assert first[0] == second[0], "stdout diverged between identical runs"
    assert first[1] == second[1], "schedule (switch count) diverged"
    assert first[2] == second[2], "serialized profile diverged"


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS[:6])
def test_clean_runs_are_also_deterministic(seed):
    spec = FaultSpec(seed=seed)
    assert _run(seed, spec) == _run(seed, spec)


@pytest.mark.chaos
def test_different_fault_seeds_may_diverge_but_never_crash():
    # Different injector seeds reschedule signals; the program must still
    # complete and profile cleanly under every one of them.
    program_seed = 3
    for fault_seed in range(5):
        spec = FaultSpec(seed=fault_seed, signal_drop_rate=0.5)
        stdout, switches, payload = _run(program_seed, spec)
        assert stdout[-1].startswith("joined")
        assert switches > 0
        assert payload
