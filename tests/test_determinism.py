"""Seeded determinism under faults: same seed + same FaultSpec ⇒ same run.

The whole simulation — scheduler picks, signal delivery, fault
decisions, virtual clocks — is driven by seeded PRNGs and a virtual
clock, so two runs of the same threaded program with identical fault
specs must agree *bit for bit*: same stdout, same context-switch count,
same serialized profile. Any hidden dependence on host state (wall
clock, dict order, object ids) breaks this property immediately.
"""

from __future__ import annotations

import pytest

from repro.core.scalene import Scalene
from repro.faults import FaultInjector, FaultSpec
from repro.interp.libs import install_standard_libraries
from repro.runtime.process import SimProcess

from tests.conftest import generate_threaded_program

SEEDS = list(range(12))


def _run(seed: int, spec: FaultSpec):
    source = generate_threaded_program(seed)
    process = SimProcess(source, filename=f"det_{seed}.py")
    install_standard_libraries(process)
    process.install_faults(FaultInjector(spec))
    scalene = Scalene(process, mode="cpu")
    scalene.start()
    process.run()
    profile = scalene.stop()
    return (
        list(process.stdout),
        process.scheduler.switch_count,
        profile.to_json(),
    )


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_same_faults_bit_identical(seed):
    spec = FaultSpec(seed=seed, signal_drop_rate=0.3)
    first = _run(seed, spec)
    second = _run(seed, spec)
    assert first[0] == second[0], "stdout diverged between identical runs"
    assert first[1] == second[1], "schedule (switch count) diverged"
    assert first[2] == second[2], "serialized profile diverged"


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS[:6])
def test_clean_runs_are_also_deterministic(seed):
    spec = FaultSpec(seed=seed)
    assert _run(seed, spec) == _run(seed, spec)


# ---------------------------------------------------------------------------
# Trace-JIT tier: determinism must survive the second execution tier
# ---------------------------------------------------------------------------


def _run_tier(seed: int, spec: FaultSpec, jit_env: dict):
    import os

    saved = {key: os.environ.get(key) for key in jit_env}
    try:
        for key, value in jit_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        os.environ["REPRO_CODE_CACHE"] = "0"
        return _run(seed, spec)
    finally:
        os.environ.pop("REPRO_CODE_CACHE", None)
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@pytest.mark.chaos
@pytest.mark.jit
@pytest.mark.parametrize("seed", SEEDS[:6])
def test_jit_runs_bit_identical_under_faults(seed):
    """Same seed + same FaultSpec + JIT enabled ⇒ bit-identical runs:
    the tier adds no hidden host-state dependence."""
    spec = FaultSpec(seed=seed, signal_drop_rate=0.3)
    env = {"REPRO_JIT": "1", "REPRO_JIT_THRESHOLD": "0"}
    first = _run_tier(seed, spec, env)
    second = _run_tier(seed, spec, env)
    assert first == second


@pytest.mark.chaos
@pytest.mark.jit
@pytest.mark.parametrize("seed", SEEDS[:6])
def test_jit_profile_counters_match_interpreter_under_faults(seed):
    """On chaos workloads the JIT tier's profile counters equal the
    interpreter tier's — faults force deopt-to-interpreter, so the two
    tiers observe the exact same schedule and attribution."""
    spec = FaultSpec(seed=seed, signal_drop_rate=0.3, clock_jump_rate=0.1)
    interp = _run_tier(seed, spec, {"REPRO_JIT": "0", "REPRO_JIT_THRESHOLD": None})
    jit = _run_tier(seed, spec, {"REPRO_JIT": "1", "REPRO_JIT_THRESHOLD": "0"})
    assert jit[0] == interp[0], "stdout diverged across tiers"
    assert jit[1] == interp[1], "schedule diverged across tiers"
    assert jit[2] == interp[2], "profile counters diverged across tiers"


@pytest.mark.chaos
def test_different_fault_seeds_may_diverge_but_never_crash():
    # Different injector seeds reschedule signals; the program must still
    # complete and profile cleanly under every one of them.
    program_seed = 3
    for fault_seed in range(5):
        spec = FaultSpec(seed=fault_seed, signal_drop_rate=0.5)
        stdout, switches, payload = _run(program_seed, spec)
        assert stdout[-1].startswith("joined")
        assert switches > 0
        assert payload
