"""Smoke tests: every example script runs cleanly and says what it should.

Examples are the public face of the library; a broken example is a broken
deliverable, so each is executed in-process (fast path where possible).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p.stem for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)

#: A phrase each example's stdout must contain (proves the scenario ran).
EXPECTED_PHRASES = {
    "quickstart": "What to look for",
    "leak_hunt": "Leak detector verdict",
    "gpu_training": "mean GPU utilization",
    "copy_volume_pandas": "speedup",
    "vectorization": "speedup from vectorizing",
    "compare_profilers": "scalene (full)",
    "multiprocess_pool": "parent wall time",
    "lint_demo": "Triangulation verdict",
    "optimize_loop": "verification diff",
    "model_cost_triage": "Triage",
}


def test_every_example_has_an_expectation():
    assert set(EXAMPLES) == set(EXPECTED_PHRASES)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    path = Path(__file__).parent.parent / "examples" / f"{name}.py"
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert EXPECTED_PHRASES[name] in out
