"""Property-based tests for the durable control plane (DESIGN.md §13).

Two invariant families back the crash-recovery and live-resharding
proofs, driven by Hypothesis:

* **WAL replay** — for any record sequence and any crash point, replay
  of the (possibly torn) log is an exact *prefix* of what was appended:
  order-preserving, idempotent across repeated replays, and complete
  whenever the log is intact. A crash is modeled the way one actually
  manifests — the file truncated at an arbitrary byte offset — so the
  property covers clean boundaries, mid-frame tears, and mid-checksum
  tears alike.

* **Ring epochs** — for any membership change, every key has exactly
  one primary per epoch; mid-migration, the old-or-new read-owner union
  contains both the outgoing and incoming primary pair (so a read
  served from the list is served from a data-complete or
  being-filled owner); finalize collapses it back to the new ring.
"""

from hypothesis import given, settings, strategies as st

from repro.serve.router import ShardRouter, shard_key
from repro.serve.wal import WriteAheadLog, _frame

#: JSON-safe scalar payload values for generated WAL records.
_scalars = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=8),
    st.booleans(),
    st.none(),
)

_records = st.lists(
    st.dictionaries(st.text(min_size=1, max_size=6), _scalars, max_size=4),
    min_size=1,
    max_size=12,
)


@settings(max_examples=60, deadline=None)
@given(records=_records, data=st.data())
def test_replay_of_a_torn_log_is_an_exact_prefix(tmp_path_factory, records, data):
    root = tmp_path_factory.mktemp("wal-prop")
    wal = WriteAheadLog(root)
    frames = [_frame(r) for r in records]
    offsets = [0]
    for record in records:
        wal.append(record)
        offsets.append(sum(map(len, frames[: len(offsets)])))
    wal.close()
    log = root / "wal.log"
    size = log.stat().st_size
    assert size == sum(map(len, frames))

    # Crash at an arbitrary byte: keep only the first `cut` bytes.
    cut = data.draw(st.integers(min_value=0, max_value=size), label="cut")
    log.write_bytes(log.read_bytes()[:cut])

    reopened = WriteAheadLog(root)
    replayed = reopened.replay()
    # Exactly the records whose full frame survived the cut, in order.
    # Losing only the trailing newline leaves a record parseable — the
    # newline is a terminator, not part of the checksummed body.
    intact = max(i for i in range(len(offsets)) if offsets[i] <= cut)
    if intact < len(records) and offsets[intact + 1] - 1 == cut:
        intact += 1
    assert replayed == records[:intact]
    # Idempotent: replaying again changes nothing (the log included).
    assert reopened.replay() == replayed
    assert log.stat().st_size == cut
    reopened.close()


@settings(max_examples=60, deadline=None)
@given(records=_records, junk=st.binary(min_size=1, max_size=40))
def test_replay_survives_arbitrary_junk_tails(tmp_path_factory, records, junk):
    root = tmp_path_factory.mktemp("wal-junk")
    wal = WriteAheadLog(root)
    for record in records:
        wal.append(record)
    wal.close()
    log = root / "wal.log"
    with open(log, "ab") as fh:
        fh.write(junk)
    replayed = WriteAheadLog(root).replay()
    # Junk can only cost records from its own (glued) line onward —
    # never reorder, duplicate, or invent records.
    if junk.startswith(b"\n"):
        assert replayed[: len(records)] == records or replayed == records
    assert replayed == records[: len(replayed)]


def _urls(n):
    return {f"s{i}": f"http://127.0.0.1:{41000 + i}" for i in range(n)}


_keys = st.lists(
    st.tuples(st.sampled_from(["pprint", "mdp", "raytrace", "sympy", "leaky"]),
              st.text(alphabet="0123456789abcdef", max_size=6)),
    min_size=1,
    max_size=10,
    unique=True,
)


@settings(max_examples=60, deadline=None)
@given(
    before=st.integers(min_value=1, max_value=5),
    grow=st.booleans(),
    keys=_keys,
)
def test_every_key_has_exactly_one_primary_per_epoch(before, grow, keys):
    if not grow and before == 1:
        before = 2  # removals need a survivor
    router = ShardRouter(_urls(before))
    old_primary = {
        key: router.primary(*key) for key in keys
    }
    if grow:
        members = [f"s{i}" for i in range(before + 1)]
        router.urls[f"s{before}"] = f"http://127.0.0.1:{41000 + before}"
    else:
        members = [f"s{i}" for i in range(before - 1)]
    epoch = router.begin_epoch(members)
    assert epoch == 2 and router.migrating

    for key in keys:
        # One primary per epoch: the outgoing ring and the incoming ring
        # each name exactly one first owner for the key.
        assert router.prev_ring.primary(shard_key(*key)) == old_primary[key]
        new_primary = router.ring.primary(shard_key(*key))
        assert new_primary in members

        # Mid-migration reads: the union covers both primary pairs, old
        # owners first (only they are guaranteed data-complete).
        owners = router.read_owners(*key)
        assert len(owners) == len(set(owners))  # no duplicates
        old_pair = router.prev_ring.owners(shard_key(*key))[:2]
        new_pair = router.ring.owners(shard_key(*key))[:2]
        assert owners[: len(old_pair)] == old_pair
        assert set(old_pair) | set(new_pair) <= set(owners)

    router.finalize_epoch()
    assert not router.migrating
    for key in keys:
        assert router.read_owners(*key) == router.ring.owners(shard_key(*key))


@settings(max_examples=40, deadline=None)
@given(before=st.integers(min_value=2, max_value=5), keys=_keys)
def test_abort_restores_old_placement_exactly(before, keys):
    router = ShardRouter(_urls(before))
    placement = {key: router.read_owners(*key) for key in keys}
    router.urls[f"s{before}"] = f"http://127.0.0.1:{41000 + before}"
    router.begin_epoch([f"s{i}" for i in range(before + 1)])
    router.abort_epoch()
    assert not router.migrating
    assert {key: router.read_owners(*key) for key in keys} == placement
