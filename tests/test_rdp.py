"""Tests for the RDP timeline reduction (paper §5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.rdp import rdp, reduce_timeline


def test_short_series_unchanged():
    points = [(0.0, 0.0), (1.0, 1.0)]
    assert rdp(points, 0.1) == points
    assert reduce_timeline(points, 100) == points


def test_collinear_points_are_removed():
    points = [(float(i), 2.0 * i) for i in range(100)]
    reduced = rdp(points, 0.01)
    assert reduced == [points[0], points[-1]]


def test_spike_is_preserved():
    points = [(float(i), 0.0) for i in range(50)]
    points[25] = (25.0, 100.0)
    reduced = rdp(points, 1.0)
    assert (25.0, 100.0) in reduced


def test_negative_epsilon_rejected():
    with pytest.raises(ValueError):
        rdp([(0, 0), (1, 1), (2, 2)], -1.0)


def test_reduce_timeline_bounds_points_exactly():
    # A noisy sawtooth that RDP alone cannot compress: the fallback random
    # downsampling must guarantee the bound.
    points = [(float(i), float((-1) ** i) * (1 + i % 7)) for i in range(5000)]
    reduced = reduce_timeline(points, 100)
    assert len(reduced) <= 100
    assert reduced[0] == points[0]
    assert reduced[-1] == points[-1]


def test_reduce_timeline_deterministic():
    points = [(float(i), float((-1) ** i) * (1 + i % 7)) for i in range(3000)]
    assert reduce_timeline(points, 100, seed=7) == reduce_timeline(points, 100, seed=7)


def test_reduce_timeline_invalid_target():
    with pytest.raises(ValueError):
        reduce_timeline([(0, 0), (1, 1), (2, 0)], 1)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e4, allow_nan=False),
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        ),
        min_size=2,
        max_size=400,
    ),
    st.floats(min_value=0, max_value=100),
)
def test_rdp_properties(raw_points, epsilon):
    """Output is a subsequence, endpoints preserved, never larger."""
    points = sorted(set(raw_points))
    if len(points) < 2:
        return
    reduced = rdp(points, epsilon)
    assert reduced[0] == points[0]
    assert reduced[-1] == points[-1]
    assert len(reduced) <= len(points)
    it = iter(points)
    assert all(p in it for p in reduced)  # subsequence check


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e4, allow_nan=False),
            st.floats(min_value=0, max_value=1e4, allow_nan=False),
        ),
        min_size=2,
        max_size=1000,
    ),
    st.integers(min_value=2, max_value=150),
)
def test_reduce_timeline_always_bounded(raw_points, target):
    points = sorted(set(raw_points))
    if len(points) < 2:
        return
    reduced = reduce_timeline(points, target)
    assert len(reduced) <= target
    assert reduced[0] == points[0]
    assert reduced[-1] == points[-1]
