"""Test-suite configuration.

Turns the bytecode verifier on for every compile performed anywhere in
the tests (``REPRO_VERIFY=1``): each workload, example source, and ad-hoc
program a test compiles is verified before it runs, so a compiler
regression that emits malformed bytecode fails loudly at the source
instead of corrupting a VM run somewhere downstream.

Also hosts the seeded random-program generator used by the differential
fuzzer (``test_vm_fuzz_differential.py``). It lives here so a failure is
reproducible from the seed printed in the test id alone:

    python -c "from tests.conftest import generate_program; \\
               print(generate_program(1234))"
"""

from __future__ import annotations

import os
import random
from typing import List

os.environ.setdefault("REPRO_VERIFY", "1")


# ---------------------------------------------------------------------------
# Seeded random-program generator (differential fuzzing)
# ---------------------------------------------------------------------------
#
# Generates programs restricted to the subset where the simulated VM and
# CPython agree observably:
#
# * integer arithmetic (+ - * // %) with divisors guarded nonzero;
# * comparisons, and/or, if/else, bounded while (fuel counter), for+range;
# * functions with positional parameters (reads restricted to names
#   definitely assigned in the local scope, so CPython's UnboundLocalError
#   semantics can never diverge from the VM's global fallback);
# * lists (literal, append, guarded indexing) and dicts (literal,
#   subscript store, .get with default, ``in``);
# * try/except with deterministic failures (division by zero,
#   out-of-range list index, missing dict key);
# * printing of scalars only (container reprs differ between SimList
#   and host list, so programs print lengths/sums/elements instead).
#
# Definite-assignment is tracked conservatively: bindings created inside
# a branch, loop, or try body are forgotten at the join point, so every
# read is from a name assigned on all paths.


class _Scope:
    def __init__(self, ints, lists, dicts):
        self.ints = set(ints)
        self.lists = set(lists)
        self.dicts = set(dicts)

    def snapshot(self):
        return (set(self.ints), set(self.lists), set(self.dicts))

    def restore(self, snap):
        self.ints, self.lists, self.dicts = (set(s) for s in snap)


class ProgramGenerator:
    """Deterministic random program generator for differential fuzzing."""

    GLOBAL_INTS = ["a", "b", "c", "d", "e"]
    GLOBAL_LISTS = ["xs", "ys"]
    GLOBAL_DICTS = ["m"]
    LOCAL_INTS = ["t0", "t1", "t2"]

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.functions: List[str] = []  # names of generated functions
        self.fuel_counter = 0

    # -- expressions --------------------------------------------------------

    def int_expr(self, scope: _Scope, depth: int = 0) -> str:
        rng = self.rng
        roll = rng.random()
        if depth >= 3 or roll < 0.35:
            if scope.ints and rng.random() < 0.6:
                return rng.choice(sorted(scope.ints))
            return str(rng.randint(-50, 50))
        if roll < 0.75:
            left = self.int_expr(scope, depth + 1)
            right = self.int_expr(scope, depth + 1)
            op = rng.choice(["+", "-", "*", "//", "%"])
            if op in ("//", "%"):
                # x % 7 is in [0, 6] for any int x, so the divisor is >= 3.
                return f"(({left}) {op} ((({right}) % 7) + 3))"
            return f"(({left}) {op} ({right}))"
        if roll < 0.85 and scope.lists:
            xs = rng.choice(sorted(scope.lists))
            idx = self.int_expr(scope, depth + 1)
            return f"({xs}[(({idx}) % len({xs}))])"
        if roll < 0.92 and scope.dicts:
            mname = rng.choice(sorted(scope.dicts))
            key = self.int_expr(scope, depth + 1)
            default = rng.randint(-9, 9)
            return f"({mname}.get((({key}) % 5), {default}))"
        if scope.lists and rng.random() < 0.5:
            xs = rng.choice(sorted(scope.lists))
            return rng.choice([f"len({xs})", f"sum({xs})"])
        return str(rng.randint(-20, 20))

    def cond_expr(self, scope: _Scope) -> str:
        rng = self.rng
        left = self.int_expr(scope, 1)
        right = self.int_expr(scope, 1)
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        cond = f"({left}) {op} ({right})"
        if scope.dicts and rng.random() < 0.2:
            mname = rng.choice(sorted(scope.dicts))
            key = rng.randint(0, 6)
            member = f"({key} in {mname})"
            cond = f"{cond} {rng.choice(['and', 'or'])} {member}"
        elif rng.random() < 0.25:
            other = f"({self.int_expr(scope, 2)}) != 0"
            cond = f"{cond} {rng.choice(['and', 'or'])} {other}"
        return cond

    # -- statements ---------------------------------------------------------

    def statements(
        self,
        scope: _Scope,
        indent: str,
        count: int,
        depth: int = 0,
        in_function: bool = False,
    ) -> List[str]:
        lines: List[str] = []
        for _ in range(count):
            lines.extend(self.statement(scope, indent, depth, in_function))
        if not lines:
            lines.append(f"{indent}pass")
        return lines

    def statement(
        self, scope: _Scope, indent: str, depth: int, in_function: bool
    ) -> List[str]:
        rng = self.rng
        pool = self.LOCAL_INTS if in_function else self.GLOBAL_INTS
        choices = ["assign", "assign", "print"]
        # Fuel counters (_fN) bound every while loop; they must never be
        # re-assigned by generated code or termination is lost.
        augment_targets = [n for n in sorted(scope.ints) if not n.startswith("_f")]
        if augment_targets:
            choices.append("augment")
        if depth < 2:
            choices.extend(["if", "while", "for", "try"])
        if not in_function:
            if len(scope.lists) < len(self.GLOBAL_LISTS):
                choices.append("newlist")
            if scope.lists:
                choices.extend(["append", "setitem"])
            if len(scope.dicts) < len(self.GLOBAL_DICTS):
                choices.append("newdict")
            if scope.dicts:
                choices.append("dictstore")
            if self.functions:
                choices.append("call")
        kind = rng.choice(choices)

        if kind == "assign":
            target = rng.choice(pool)
            line = f"{indent}{target} = {self.int_expr(scope)}"
            scope.ints.add(target)
            return [line]
        if kind == "augment":
            target = rng.choice(augment_targets)
            op = rng.choice(["+", "-", "*"])
            return [f"{indent}{target} {op}= {self.int_expr(scope)}"]
        if kind == "print":
            nargs = rng.randint(1, 3)
            args = ", ".join(self.int_expr(scope, 1) for _ in range(nargs))
            return [f"{indent}print({args})"]
        if kind == "if":
            cond = self.cond_expr(scope)
            snap = scope.snapshot()
            body = self.statements(scope, indent + "    ", rng.randint(1, 3),
                                   depth + 1, in_function)
            scope.restore(snap)
            lines = [f"{indent}if {cond}:"] + body
            if rng.random() < 0.6:
                orelse = self.statements(scope, indent + "    ",
                                         rng.randint(1, 2), depth + 1, in_function)
                scope.restore(snap)
                lines += [f"{indent}else:"] + orelse
            return lines
        if kind == "while":
            fuel = f"_f{self.fuel_counter}"
            self.fuel_counter += 1
            scope.ints.add(fuel)
            cond = self.cond_expr(scope)
            snap = scope.snapshot()
            body = self.statements(scope, indent + "    ", rng.randint(1, 3),
                                   depth + 1, in_function)
            scope.restore(snap)
            return [
                f"{indent}{fuel} = {rng.randint(1, 6)}",
                f"{indent}while {fuel} > 0 and ({cond}):",
                f"{indent}    {fuel} = {fuel} - 1",
            ] + body
        if kind == "for":
            loop_var = "i" if in_function else rng.choice(["i", "j"])
            bound = rng.randint(0, 5)
            snap = scope.snapshot()
            scope.ints.add(loop_var)
            body = self.statements(scope, indent + "    ", rng.randint(1, 3),
                                   depth + 1, in_function)
            scope.restore(snap)
            return [f"{indent}for {loop_var} in range({bound}):"] + body
        if kind == "try":
            target = rng.choice(pool)
            snap = scope.snapshot()
            pre = []
            if rng.random() < 0.5:
                pre = self.statement(scope, indent + "    ", depth + 1, in_function)
            risky = self.risky_expr(scope)
            scope.restore(snap)
            lines = [f"{indent}try:"]
            lines += pre
            lines.append(f"{indent}    {target} = {risky}")
            lines.append(f"{indent}except:")
            lines.append(f"{indent}    {target} = {self.rng.randint(-5, 5)}")
            scope.ints.add(target)
            return lines
        if kind == "newlist":
            free = sorted(set(self.GLOBAL_LISTS) - scope.lists)
            name = rng.choice(free)
            elems = ", ".join(
                self.int_expr(scope, 2) for _ in range(rng.randint(1, 4))
            )
            scope.lists.add(name)
            return [f"{indent}{name} = [{elems}]"]
        if kind == "append":
            xs = rng.choice(sorted(scope.lists))
            return [f"{indent}{xs}.append({self.int_expr(scope)})"]
        if kind == "setitem":
            xs = rng.choice(sorted(scope.lists))
            idx = self.int_expr(scope, 1)
            return [f"{indent}{xs}[(({idx}) % len({xs}))] = {self.int_expr(scope)}"]
        if kind == "newdict":
            free = sorted(set(self.GLOBAL_DICTS) - scope.dicts)
            name = rng.choice(free)
            pairs = ", ".join(
                f"{rng.randint(0, 4)}: {self.int_expr(scope, 2)}"
                for _ in range(rng.randint(1, 3))
            )
            scope.dicts.add(name)
            return [f"{indent}{name} = {{{pairs}}}"]
        if kind == "dictstore":
            mname = rng.choice(sorted(scope.dicts))
            key = self.int_expr(scope, 1)
            return [f"{indent}{mname}[(({key}) % 5)] = {self.int_expr(scope)}"]
        if kind == "call":
            fname = rng.choice(self.functions)
            target = rng.choice(pool)
            args = ", ".join(self.int_expr(scope, 1) for _ in range(2))
            scope.ints.add(target)
            return [f"{indent}{target} = {fname}({args})"]
        raise AssertionError(f"unhandled statement kind {kind}")

    def risky_expr(self, scope: _Scope) -> str:
        """An expression that deterministically raises, or is plainly safe."""
        rng = self.rng
        options = ["zerodiv", "safe"]
        if scope.lists:
            options.append("index")
        if scope.dicts:
            options.append("key")
        choice = rng.choice(options)
        if choice == "zerodiv":
            e = self.int_expr(scope, 2)
            return f"({self.int_expr(scope, 2)}) // (({e}) - ({e}))"
        if choice == "index":
            xs = rng.choice(sorted(scope.lists))
            # Lists only grow by single appends from <=4 literal elements
            # inside short programs; index 1000+ is always out of range.
            return f"{xs}[{rng.randint(1000, 2000)}]"
        if choice == "key":
            mname = rng.choice(sorted(scope.dicts))
            # Keys are always taken mod 5; 100+ is always missing.
            return f"{mname}[{rng.randint(100, 200)}]"
        return self.int_expr(scope)

    # -- whole programs ------------------------------------------------------

    def function_def(self, index: int) -> List[str]:
        name = f"fn{index}"
        scope = _Scope(["p0", "p1"], [], [])
        lines = [f"def {name}(p0, p1):"]
        lines += self.statements(scope, "    ", self.rng.randint(2, 4),
                                 depth=1, in_function=True)
        lines.append(f"    return {self.int_expr(scope)}")
        self.functions.append(name)
        return lines

    def program(self) -> str:
        rng = self.rng
        lines: List[str] = []
        for index in range(rng.randint(0, 2)):
            lines += self.function_def(index)
        scope = _Scope([], [], [])
        # Seed a couple of bindings so early expressions have variables.
        for name in rng.sample(self.GLOBAL_INTS, 2):
            lines.append(f"{name} = {rng.randint(-10, 10)}")
            scope.ints.add(name)
        lines += self.statements(scope, "", rng.randint(6, 14))
        # Deterministic tail: observe every binding through scalars only.
        for name in sorted(scope.ints):
            lines.append(f"print({name!r}, {name})")
        for name in sorted(scope.lists):
            lines.append(f"print({name!r}, len({name}), sum({name}))")
        for name in sorted(scope.dicts):
            for key in range(5):
                lines.append(f"print({name!r}, {key}, {name}.get({key}, -1))")
        return "\n".join(lines) + "\n"


def generate_program(seed: int) -> str:
    """The program for ``seed`` — the fuzzer's reproduction entry point."""
    return ProgramGenerator(seed).program()


# ---------------------------------------------------------------------------
# Seeded threaded-program generator (determinism property)
# ---------------------------------------------------------------------------
#
# Threaded programs are VM-only — CPython has no virtual scheduler to
# differential-test against — so instead of output equivalence they feed
# the determinism property (``test_determinism.py``): the same seed plus
# the same FaultSpec must produce a bit-identical schedule, stdout, and
# profile. The grammar is deadlock-free by construction: every
# ``lock_acquire`` is paired with a ``lock_release`` on the same straight
# -line path, and a worker never holds two locks at once.


class ThreadedProgramGenerator:
    """Deterministic generator of lock-using multi-threaded programs."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)

    def worker_def(self, index: int, lock_names: List[str]) -> List[str]:
        rng = self.rng
        lines = [f"def worker{index}(wid):"]
        lines.append("    acc = wid")
        lines.append("    i = 0")
        lines.append(f"    while i < {rng.randint(2, 5)}:")
        for _ in range(rng.randint(1, 2)):
            lock = rng.choice(lock_names)
            lines.append(f"        lock_acquire({lock})")
            lines.append(f"        native_ops({rng.randint(40, 220)})")
            lines.append(f"        acc = acc + i + {rng.randint(0, 9)}")
            lines.append(f"        lock_release({lock})")
        if rng.random() < 0.6:
            lines.append(f"        native_ops({rng.randint(20, 120)})")
        if rng.random() < 0.35:
            lines.append(f"        sleep({rng.choice([0.001, 0.002, 0.005])})")
        lines.append("        i = i + 1")
        lines.append(f"    print('worker', wid, acc)")
        lines.append("    return acc")
        return lines

    def program(self) -> str:
        rng = self.rng
        lock_names = [f"lk{n}" for n in range(rng.randint(1, 2))]
        n_workers = rng.randint(2, 4)
        lines: List[str] = []
        for index in range(n_workers):
            lines += self.worker_def(index, lock_names)
        for lock in lock_names:
            lines.append(f"{lock} = make_lock({lock!r})")
        for index in range(n_workers):
            lines.append(f"th{index} = spawn(worker{index}, {index + 1})")
        for index in range(n_workers):
            lines.append(f"join(th{index})")
        lines.append(f"print('joined', {n_workers})")
        return "\n".join(lines) + "\n"


def generate_threaded_program(seed: int) -> str:
    """The threaded program for ``seed`` — determinism-test entry point."""
    return ThreadedProgramGenerator(seed).program()
