"""Test-suite configuration.

Turns the bytecode verifier on for every compile performed anywhere in
the tests (``REPRO_VERIFY=1``): each workload, example source, and ad-hoc
program a test compiles is verified before it runs, so a compiler
regression that emits malformed bytecode fails loudly at the source
instead of corrupting a VM run somewhere downstream.
"""

import os

os.environ.setdefault("REPRO_VERIFY", "1")
