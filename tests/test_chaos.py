"""Chaos acceptance tests: the self-healing daemon under injected faults.

The module-scoped chaos run is the subsystem's acceptance bar (the same
run ``python -m repro chaos`` performs): 8 concurrent jobs through a live
daemon while 2 workers hard-exit (breaking the pool), 2 raise, every job
drops/coalesces/delays timer signals and jumps clocks, and the store
tears its first 2 writes — after which every job must have completed
exactly once, every stored profile must be a *valid* degraded profile
with replay-accurate fault counters, and the store index must rebuild
cleanly from the blobs.

The remaining tests aim single fault families at the daemon's specific
healing mechanisms: retry-with-backoff, hung-worker timeout recycling,
the circuit breaker, and graceful drain.
"""

import time

import pytest

from repro.errors import ServeError
from repro.faults.chaos import (
    build_fault_schedules,
    run_chaos,
    run_gateway_chaos,
    run_reshard_chaos,
    run_shard_chaos,
)
from repro.serve.daemon import ProfileDaemon
from repro.serve.healing import OPEN, CircuitBreaker, RetryPolicy


@pytest.fixture(scope="module")
def chaos_report(tmp_path_factory):
    """One full chaos run (seed 1) shared by the acceptance assertions."""
    return run_chaos(
        seed=1,
        store_root=str(tmp_path_factory.mktemp("chaos-store")),
        jobs=8,
        workers=2,
        exit_crashers=2,
        exception_crashers=2,
        torn_writes=2,
        signal_drop_rate=0.1,
        scale=0.3,
    )


def test_chaos_run_is_clean(chaos_report):
    assert chaos_report.ok, chaos_report.summary()


def test_every_job_completes_exactly_once(chaos_report):
    assert len(chaos_report.jobs) == 8
    assert all(job["status"] == "done" for job in chaos_report.jobs)
    profile_ids = [job["profile_id"] for job in chaos_report.jobs]
    assert all(profile_ids)
    assert len(set(profile_ids)) == 8  # no duplicated work


def test_injected_faults_actually_fired(chaos_report):
    healing = chaos_report.healing
    assert healing["pool_breaks"] >= 1  # the hard exits broke the pool
    assert healing["requeues"] >= 2  # victims + survivors, exactly once each
    assert healing["retries"] >= 2  # the exception crashers came back
    assert chaos_report.store_faults["torn_writes"] == 2


def test_degraded_profiles_have_accurate_counters(chaos_report):
    # run_chaos re-executes each job's final attempt in-process and
    # compares fault counters bit for bit; any drift lands here.
    assert chaos_report.counter_mismatches == []
    assert chaos_report.violations == []  # bounded invariants all hold


def test_store_index_rebuilds_after_chaos(chaos_report):
    assert chaos_report.recovery["index_rebuilt"] == 1
    assert chaos_report.recovery["objects_quarantined"] == 0
    assert chaos_report.profiles_after_rebuild == chaos_report.profiles_stored


def test_schedules_are_deterministic():
    a = build_fault_schedules(7, 8)
    b = build_fault_schedules(7, 8)
    assert a == b
    assert [s.seed for s in a] == [7000 + i for i in range(8)]
    assert sum(1 for s in a if s.crash_attempts and s.crash_mode == "exit") == 2
    assert sum(1 for s in a if s.crash_attempts and s.crash_mode == "exception") == 2
    assert len({s.seed for s in a} & {s.seed for s in build_fault_schedules(8, 8)}) == 0


# -- chaos at scale: shard kill + router failover ---------------------------


@pytest.fixture(scope="module")
def shard_chaos_report(tmp_path_factory):
    """One shard-kill chaos run (seed 1) shared by the scale-out assertions:
    9 jobs through the gateway and a 3-shard plane, with the primary shard
    of one routed key killed mid-run and revived at the end."""
    return run_shard_chaos(
        seed=1,
        root=str(tmp_path_factory.mktemp("shard-chaos")),
        shards=3,
        jobs=9,
        kill_after=3,
        scale=0.05,
    )


def test_shard_chaos_run_is_clean(shard_chaos_report):
    assert shard_chaos_report.ok, shard_chaos_report.summary()


def test_shard_kill_loses_no_accepted_jobs(shard_chaos_report):
    # Jobs accepted before the kill — including ones dispatched to the
    # victim — all finish done with a profile id; the gateway ledger
    # re-dispatches, content addressing keeps storage exactly-once.
    assert shard_chaos_report.submitted == 9
    assert shard_chaos_report.done == 9
    assert shard_chaos_report.killed_shard  # a shard really was killed
    assert shard_chaos_report.done_before_kill < 9  # work was in flight


def test_replica_reads_degraded_but_correct(shard_chaos_report):
    # With the victim key's primary down, the routed /trend answers from
    # the replica: flagged degraded, but sketch ids == exact replay ids.
    degraded = shard_chaos_report.degraded_reads[0]
    assert degraded["degraded"] is True
    assert degraded["shard"] != shard_chaos_report.killed_shard
    assert degraded["sketch_ids"] == degraded["exact_ids"]
    assert degraded["sketch_ids"]  # the replica actually had the data


def test_revived_shard_resumes_primary_reads(shard_chaos_report):
    assert shard_chaos_report.revived
    healthy = shard_chaos_report.degraded_reads[1]
    assert healthy["degraded"] is False
    assert healthy["shard"] == shard_chaos_report.killed_shard
    assert healthy["sketch_ids"] == shard_chaos_report.degraded_reads[0]["sketch_ids"]


# -- chaos for the durable control plane: gateway kill -9 + reshard ---------


@pytest.fixture(scope="module")
def gateway_chaos_report(tmp_path_factory):
    """One gateway-kill chaos run (seed 1): 6 keyed jobs through a
    WAL-backed gateway over 2 shards, the gateway SIGKILLed (in-process
    crash-stop: no flush, no checkpoint) with work still in flight, then
    a fresh gateway recovered over the same WAL."""
    return run_gateway_chaos(
        seed=1,
        root=str(tmp_path_factory.mktemp("gateway-chaos")),
        shards=2,
        jobs=6,
        kill_after=2,
        scale=0.05,
    )


def test_gateway_chaos_run_is_clean(gateway_chaos_report):
    assert gateway_chaos_report.ok, gateway_chaos_report.summary()


def test_gateway_kill_loses_no_accepted_jobs(gateway_chaos_report):
    # Every 202 survived the kill -9: the recovered ledger lists all six
    # accepted jobs and re-dispatch drives each to done exactly once.
    assert gateway_chaos_report.submitted == 6
    assert gateway_chaos_report.recovered == 6
    assert gateway_chaos_report.done == 6
    assert gateway_chaos_report.unique_profiles == 6  # no duplicate stores


def test_gateway_recovery_replays_the_wal(gateway_chaos_report):
    # The crash left an unflushed WAL behind; replay read >= one record
    # per accepted job (accept + dispatch/terminal transitions) without
    # tripping on a torn tail.
    assert gateway_chaos_report.wal["replayed"] >= 6
    assert gateway_chaos_report.wal["torn_records"] == 0


def test_resubmitted_key_dedupes_across_restart(gateway_chaos_report):
    # submit_keys are recovered from the WAL, so a client retrying its
    # submission against the restarted gateway gets the original job
    # back rather than double-running it.
    assert gateway_chaos_report.deduped_resubmit


@pytest.fixture(scope="module")
def reshard_chaos_report(tmp_path_factory):
    """One reshard-under-load chaos run (seed 1): 6 jobs through a
    WAL-backed gateway while the ring grows 2 -> 3 shards and keys
    migrate in the background."""
    return run_reshard_chaos(
        seed=1,
        root=str(tmp_path_factory.mktemp("reshard-chaos")),
        shards=2,
        jobs=6,
        scale=0.05,
    )


def test_reshard_chaos_run_is_clean(reshard_chaos_report):
    assert reshard_chaos_report.ok, reshard_chaos_report.summary()


def test_reshard_migrates_every_key_under_load(reshard_chaos_report):
    # The epoch advanced exactly once, the ring grew, every job still
    # finished, and the placement audit found each stored key on its
    # new primary pair (asserted inside the harness).
    assert reshard_chaos_report.shards_after == 3
    assert reshard_chaos_report.epoch_after == reshard_chaos_report.epoch_before + 1
    assert reshard_chaos_report.done == reshard_chaos_report.submitted == 6


def test_reads_served_throughout_migration(reshard_chaos_report):
    assert reshard_chaos_report.reads_during_migration > 0


# -- targeted healing mechanisms ------------------------------------------


def _wait_terminal(daemon, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = daemon.job(job_id)
        if job.status in ("done", "error"):
            return job
        time.sleep(0.02)
    pytest.fail(f"{job_id} still {daemon.job(job_id).status} after {timeout_s}s")


def test_exception_crash_retries_until_success(tmp_path):
    """A worker that raises on its first two attempts succeeds on the third."""
    daemon = ProfileDaemon(
        str(tmp_path),
        workers=1,
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.01, max_delay_s=0.05),
    )
    daemon.start()
    try:
        job = daemon.submit(
            {
                "workload": "pprint",
                "scale": 0.1,
                "faults": {"crash_attempts": 2, "crash_mode": "exception"},
            }
        )
        done = _wait_terminal(daemon, job.id)
        assert done.status == "done", done.error
        assert done.attempts == 3
        assert daemon.stats["retries"] == 2
        assert daemon.stats["pool_breaks"] == 0  # clean failures, pool intact
    finally:
        daemon.stop()


def test_retry_budget_exhausts_to_error(tmp_path):
    daemon = ProfileDaemon(
        str(tmp_path),
        workers=1,
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.01, max_delay_s=0.05),
    )
    daemon.start()
    try:
        job = daemon.submit(
            {
                "workload": "pprint",
                "scale": 0.1,
                "faults": {"crash_attempts": 99, "crash_mode": "exception"},
            }
        )
        done = _wait_terminal(daemon, job.id)
        assert done.status == "error"
        assert done.attempts == 2
        assert "InjectedCrash" in done.error
    finally:
        daemon.stop()


def test_hung_worker_times_out_and_pool_recycles(tmp_path):
    """A hang past the job deadline recycles the pool; the retry succeeds."""
    daemon = ProfileDaemon(
        str(tmp_path),
        workers=1,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05),
    )
    daemon.start()
    try:
        job = daemon.submit(
            {
                "workload": "pprint",
                "scale": 0.1,
                "timeout_s": 1.0,
                "faults": {"hang_attempts": 1, "hang_s": 30.0},
            }
        )
        done = _wait_terminal(daemon, job.id)
        assert done.status == "done", done.error
        assert done.attempts == 2  # attempt 1 hung, attempt 2 ran clean
        assert daemon.stats["timeouts"] == 1
        assert daemon.stats["pool_respawns"] == 1
    finally:
        daemon.stop()


def test_circuit_breaker_quarantines_failing_workload(tmp_path):
    """Repeated clean failures open the workload's circuit: later jobs
    fail fast without ever reaching a worker."""
    daemon = ProfileDaemon(
        str(tmp_path),
        workers=1,
        retry=RetryPolicy(max_attempts=1),  # each failure is final
        breaker=CircuitBreaker(2, cooldown_s=600.0),
    )
    daemon.start()
    try:
        crashing = {"crash_attempts": 99, "crash_mode": "exception"}
        for _ in range(2):
            job = daemon.submit(
                {"workload": "pprint", "scale": 0.1, "faults": crashing}
            )
            assert _wait_terminal(daemon, job.id).status == "error"
        assert daemon.breaker.state("pprint") == OPEN
        rejected = daemon.submit({"workload": "pprint", "scale": 0.1})
        done = _wait_terminal(daemon, rejected.id)
        assert done.status == "error"
        assert "circuit open" in done.error
        assert done.attempts == 0  # never dispatched to a worker
        assert daemon.stats["breaker_rejections"] == 1
        assert daemon.health()["breaker"]["pprint"]["state"] == OPEN
        # Other workloads are unaffected.
        ok = daemon.submit({"workload": "balanced", "scale": 0.1})
        assert _wait_terminal(daemon, ok.id).status == "done"
    finally:
        daemon.stop()


def test_graceful_drain_finishes_accepted_work(tmp_path):
    daemon = ProfileDaemon(str(tmp_path), workers=2)
    daemon.start()
    jobs = [
        daemon.submit({"workload": workload, "scale": 0.1})
        for workload in ("pprint", "balanced", "leaky")
    ]
    daemon.drain(deadline_s=120.0)
    for job in jobs:
        final = daemon.job(job.id)
        assert final.status == "done", (final.status, final.error)
    with pytest.raises(ServeError, match="draining"):
        daemon.submit({"workload": "pprint", "scale": 0.1})
    assert not daemon._started  # drain ends in a full stop


def test_stop_is_idempotent_and_joins_threads(tmp_path):
    daemon = ProfileDaemon(str(tmp_path), workers=1)
    daemon.start()
    daemon.stop()
    daemon.stop()  # second stop is a no-op, not an error
    assert all(not t.is_alive() for t in daemon._threads)
