"""Tests for the workload builtin functions."""

import pytest

from repro.errors import VMError
from repro.runtime.process import SimProcess


def run_capture(source):
    process = SimProcess(source, filename="b.py")
    captured = {}
    original = process._finalize

    def capture():
        captured.update(process.globals)
        from repro.interp.objects import incref

        for value in captured.values():
            incref(value)
        original()

    process._finalize = capture
    process.run()
    return process, captured


def test_numeric_builtins():
    _, g = run_capture(
        "a = abs(-5)\n"
        "b = min(3, 1, 2)\n"
        "c = max(3, 1, 2)\n"
        "d = int(3.7)\n"
        "e = float(2)\n"
        "f = bool(0)\n"
        "g = str(12)\n"
    )
    assert (g["a"], g["b"], g["c"], g["d"], g["e"], g["f"], g["g"]) == (
        5, 1, 3, 3, 2.0, False, "12",
    )


def test_sum_min_max_over_simlist():
    _, g = run_capture("xs = [4, 1, 3]\ns = sum(xs)\nlo = min(xs)\nhi = max(xs)\n")
    assert (g["s"], g["lo"], g["hi"]) == (8, 1, 4)


def test_list_and_dict_constructors():
    _, g = run_capture("xs = list()\nxs.append(1)\nys = list(xs)\nd = dict()\nd['a'] = 1\n")
    assert g["ys"].items == [1]
    assert g["d"].data == {"a": 1}


def test_range_errors():
    with pytest.raises(VMError, match="range"):
        SimProcess("r = range(1, 2, 0)\nfor i in r:\n    pass\n", filename="b.py").run()


def test_len_on_unsized():
    with pytest.raises(VMError, match="len"):
        SimProcess("n = len(5)\n", filename="b.py").run()


def test_print_multiple_args():
    process, _ = run_capture("print('a', 1, 2.5)\n")
    assert process.stdout == ["a 1 2.5"]


def test_native_work_and_ops_consume_time():
    process, _ = run_capture("native_work(0.25)\nnative_ops(100)\n")
    op_cost = process.vm.config.op_cost
    assert process.clock.cpu >= 0.25 + 100 * op_cost


def test_case_study_helpers_cost_ratio():
    slow, _ = run_capture("for i in range(200):\n    x = isinstance_protocol(i)\n")
    fast, _ = run_capture("for i in range(200):\n    x = hasattr_check(i)\n")
    # isinstance against a runtime-checkable protocol is ~20x hasattr; end
    # to end the loop overhead dilutes it, but the gap stays large.
    assert slow.clock.wall > 1.5 * fast.clock.wall


def test_spawn_requires_function():
    with pytest.raises(VMError):
        SimProcess("t = spawn(5)\n", filename="b.py").run()
    with pytest.raises(VMError):
        SimProcess("t = spawn()\n", filename="b.py").run()


def test_py_buffer_len():
    _, g = run_capture("b = py_buffer(12345)\nn = len(b)\n")
    assert g["n"] == 12345
