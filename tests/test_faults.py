"""Unit tests for the fault-injection plane (repro.faults) and the
self-healing policy primitives (repro.serve.healing)."""

import pytest

from repro.errors import FaultError
from repro.faults import FaultInjector, FaultSpec, apply_fault_counters
from repro.serve.healing import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, RetryPolicy


# -- FaultSpec -------------------------------------------------------------


def test_spec_defaults_inject_nothing():
    spec = FaultSpec()
    assert not spec.injects_runtime_faults
    injector = FaultInjector(spec)
    assert injector.timer_expiry_fate() == "deliver"
    assert injector.signal_delay() == 0.0
    assert injector.clock_jump() == 0.0
    assert not injector.alloc_enomem()
    assert not injector.shim_reentrancy()
    assert injector.worker_crash(1) is None
    assert injector.worker_hang(1) == 0.0
    assert not injector.tear_write()
    assert injector.snapshot() == {}
    assert not injector.degrades_profile


@pytest.mark.parametrize(
    "bad",
    [
        {"signal_drop_rate": 1.5},
        {"signal_drop_rate": -0.1},
        {"enomem_rate": 2.0},
        {"crash_mode": "segfault"},
        {"signal_delay_s": -1.0},
        {"crash_attempts": -1},
        {"torn_writes": -2},
    ],
)
def test_spec_rejects_invalid_values(bad):
    with pytest.raises(FaultError):
        FaultSpec(**bad)


def test_spec_round_trips_and_rejects_unknown_fields():
    spec = FaultSpec(seed=7, signal_drop_rate=0.1, crash_attempts=2, crash_mode="exit")
    assert FaultSpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(FaultError):
        FaultSpec.from_dict({"signal_dorp_rate": 0.1})
    with pytest.raises(FaultError):
        FaultSpec.from_dict("not a dict")


# -- FaultInjector ---------------------------------------------------------


def test_injector_is_deterministic_per_seed():
    def decisions(seed):
        injector = FaultInjector(FaultSpec(seed=seed, signal_drop_rate=0.3))
        return [injector.timer_expiry_fate() for _ in range(50)]

    assert decisions(42) == decisions(42)
    assert decisions(42) != decisions(43)


def test_injector_counts_every_fired_fault():
    injector = FaultInjector(FaultSpec(signal_drop_rate=1.0, enomem_rate=1.0))
    for _ in range(3):
        injector.timer_expiry_fate()
    injector.alloc_enomem()
    assert injector.snapshot() == {"signals_dropped": 3, "alloc_enomem": 1}


def test_crash_and_hang_are_attempt_schedules():
    injector = FaultInjector(
        FaultSpec(crash_attempts=2, crash_mode="exit", hang_attempts=1, hang_s=0.5)
    )
    assert injector.worker_crash(1) == "exit"
    assert injector.worker_crash(2) == "exit"
    assert injector.worker_crash(3) is None
    assert injector.worker_hang(1) == 0.5
    assert injector.worker_hang(2) == 0.0


def test_tear_write_tears_exactly_first_n():
    injector = FaultInjector(FaultSpec(torn_writes=2))
    assert [injector.tear_write() for _ in range(4)] == [True, True, False, False]
    assert injector.counters["torn_writes"] == 2


# -- apply_fault_counters / degraded profiles ------------------------------


def _tiny_profile():
    from repro.core.profile_data import LineReport, ProfileData

    return ProfileData(
        mode="full",
        elapsed=1.0,
        cpu_python_time=0.5,
        cpu_native_time=0.3,
        cpu_system_time=0.1,
        cpu_samples=10,
        mem_samples=5,
        peak_footprint_mb=8.0,
        total_copy_mb=1.0,
        gpu_mean_utilization=0.0,
        gpu_mem_peak_mb=0.0,
        lines=[
            LineReport(
                filename="w.py",
                lineno=1,
                function="f",
                source="x = 1",
                cpu_python_percent=60.0,
                cpu_native_percent=30.0,
                cpu_system_percent=10.0,
                mem_avg_mb=1.0,
                mem_peak_mb=2.0,
                mem_python_percent=50.0,
                mem_activity_percent=100.0,
                timeline=[],
                copy_mb_s=0.5,
                gpu_percent=0.0,
                gpu_mem_peak_mb=0.0,
            )
        ],
    )


def test_apply_fault_counters_marks_degraded_and_merges():
    profile = _tiny_profile()
    injector = FaultInjector(FaultSpec(signal_drop_rate=1.0))
    injector.timer_expiry_fate()
    injector.timer_expiry_fate()
    apply_fault_counters(profile, injector)
    assert profile.degraded
    assert profile.fault_counters == {"signals_dropped": 2}
    assert profile.invariant_violations() == []


def test_apply_fault_counters_flags_enabled_but_unfired_faults():
    # A schedule that MAY drop signals degrades the profile even if no
    # drop fired — the statistics are untrustworthy by construction.
    profile = _tiny_profile()
    injector = FaultInjector(FaultSpec(signal_drop_rate=0.5))
    apply_fault_counters(profile, injector)
    assert profile.degraded
    assert profile.fault_counters == {}


def test_apply_fault_counters_noop_without_faults():
    profile = _tiny_profile()
    apply_fault_counters(profile, None)
    apply_fault_counters(profile, FaultInjector(FaultSpec()))
    assert not profile.degraded
    assert profile.fault_counters == {}


def test_clamp_bounded_repairs_perturbed_numbers():
    profile = _tiny_profile()
    line = profile.lines[0]
    line.cpu_python_percent = 80.0
    line.cpu_native_percent = 40.0  # sums to >100 with system 10
    profile.total_copy_mb = -1.0
    profile.gpu_mean_utilization = 1.5
    assert profile.invariant_violations()
    profile.clamp_bounded()
    assert profile.invariant_violations() == []
    assert line.cpu_total_percent == pytest.approx(100.0)
    # Proportional rescale, not truncation: ratios are preserved.
    assert line.cpu_python_percent / line.cpu_native_percent == pytest.approx(2.0)
    assert profile.total_copy_mb == 0.0
    assert profile.gpu_mean_utilization == 1.0


def test_invariant_violations_reports_leak_likelihood():
    from repro.core.leak_detector import LeakReport

    profile = _tiny_profile()
    profile.leaks.append(
        LeakReport(
            filename="w.py",
            lineno=1,
            function="f",
            likelihood=1.7,
            leak_rate_mb_s=0.1,
            mallocs=10,
            frees=1,
        )
    )
    assert any("likelihood" in v for v in profile.invariant_violations())
    profile.clamp_bounded()
    assert profile.leaks[0].likelihood == 1.0
    assert profile.invariant_violations() == []


def test_degraded_fields_survive_serialization_and_merge():
    from repro.core.profile_data import ProfileData, merge_profiles

    faulty = _tiny_profile()
    faulty.degraded = True
    faulty.fault_counters = {"signals_dropped": 3, "clock_jumps": 1}
    clean = _tiny_profile()

    round_tripped = ProfileData.from_json(faulty.to_json())
    assert round_tripped.degraded
    assert round_tripped.fault_counters == faulty.fault_counters

    merged = merge_profiles([clean, faulty])
    assert merged.degraded  # pessimistic: any degraded input degrades
    assert merged.fault_counters == {"signals_dropped": 3, "clock_jumps": 1}
    two_faulty = merge_profiles([faulty, round_tripped])
    assert two_faulty.fault_counters == {"signals_dropped": 6, "clock_jumps": 2}


def test_degraded_banner_in_text_report():
    profile = _tiny_profile()
    assert "DEGRADED" not in profile.render_text()
    profile.degraded = True
    profile.fault_counters = {"signals_dropped": 3}
    text = profile.render_text()
    assert "DEGRADED" in text
    assert "signals_dropped=3" in text


# -- runtime wiring --------------------------------------------------------


def test_clock_jump_widens_wall_only():
    from repro.runtime.clock import VirtualClock

    clock = VirtualClock()
    clock.faults = FaultInjector(FaultSpec(clock_jump_rate=1.0, clock_jump_s=0.5))
    clock.advance_cpu(0.1)
    assert clock.cpu == pytest.approx(0.1)
    assert clock.wall == pytest.approx(0.6)  # 0.1 + injected 0.5 jump


def test_enomem_and_reentrancy_counted_on_alloc():
    from repro.runtime.clock import VirtualClock
    from repro.runtime.memsys import MemSubsystem

    mem = MemSubsystem(VirtualClock())
    mem.faults = FaultInjector(FaultSpec(enomem_rate=1.0, shim_reentrancy_rate=1.0))
    handle = mem.py_alloc(1024)
    mem.py_free(handle)
    mem.native_alloc(2048)
    counters = mem.faults.snapshot()
    assert counters["alloc_enomem"] == 2
    assert counters["shim_reentrancy"] == 2


def test_reentrant_alloc_bypasses_profiler_hooks():
    """The §3.1 hazard: a reentrant allocation moves memory but the
    installed profiler wrapper never observes the event."""
    from repro.runtime.clock import VirtualClock
    from repro.runtime.memsys import MemSubsystem

    events = []

    class SpyAllocator:
        def __init__(self, inner):
            self._inner = inner

        def alloc(self, nbytes, thread=None):
            events.append(("alloc", nbytes))
            return self._inner.alloc(nbytes, thread=thread)

        def free(self, handle, thread=None):
            events.append(("free", handle.nbytes))
            return self._inner.free(handle, thread=thread)

    mem = MemSubsystem(VirtualClock())
    mem.hooks.set_allocator(SpyAllocator(mem.hooks.get_allocator()))
    mem.faults = FaultInjector(FaultSpec(shim_reentrancy_rate=1.0))
    mem.py_alloc(4096)
    assert events == []  # memory moved, no event published
    assert mem.logical_footprint() >= 4096
    mem.faults = None
    mem.py_alloc(512)
    assert events == [("alloc", 512)]


def test_process_install_faults_threads_everywhere():
    from repro.runtime.process import SimProcess

    process = SimProcess("x = 1\n")
    injector = FaultInjector(FaultSpec(signal_drop_rate=0.5))
    process.install_faults(injector)
    assert process.faults is injector
    assert process.clock.faults is injector
    assert process.signals.faults is injector
    assert process.mem.faults is injector


# -- RetryPolicy -----------------------------------------------------------


def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, max_delay_s=0.5, jitter=0.0)
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.delay(3) == pytest.approx(0.4)
    assert policy.delay(4) == pytest.approx(0.5)  # capped
    assert policy.delay(100) == pytest.approx(0.5)  # huge attempts don't overflow
    assert policy.should_retry(4)
    assert not policy.should_retry(5)


def test_retry_policy_jitter_is_seeded():
    a = RetryPolicy(jitter=0.5, seed=3)
    b = RetryPolicy(jitter=0.5, seed=3)
    assert [a.delay(1) for _ in range(5)] == [b.delay(1) for _ in range(5)]
    assert all(RetryPolicy().base_delay_s <= d for d in (a.delay(1),))


# -- CircuitBreaker --------------------------------------------------------


def test_breaker_opens_after_consecutive_failures():
    now = [0.0]
    breaker = CircuitBreaker(3, cooldown_s=1.0, clock=lambda: now[0])
    for _ in range(2):
        breaker.record_failure("w")
    assert breaker.allow("w")  # still closed
    breaker.record_failure("w")
    assert breaker.state("w") == OPEN
    assert not breaker.allow("w")


def test_breaker_success_resets_consecutive_count():
    breaker = CircuitBreaker(3)
    breaker.record_failure("w")
    breaker.record_failure("w")
    breaker.record_success("w")
    breaker.record_failure("w")
    breaker.record_failure("w")
    assert breaker.state("w") == CLOSED


def test_breaker_half_open_probe_closes_or_reopens():
    now = [0.0]
    breaker = CircuitBreaker(1, cooldown_s=1.0, clock=lambda: now[0])
    breaker.record_failure("w")
    assert not breaker.allow("w")
    now[0] = 1.5  # cooldown passed: exactly one probe allowed
    assert breaker.allow("w")
    assert breaker.state("w") == HALF_OPEN
    assert not breaker.allow("w")  # a second caller must wait for the probe
    breaker.record_failure("w")  # probe failed: straight back to open
    assert breaker.state("w") == OPEN
    now[0] = 3.0
    assert breaker.allow("w")
    breaker.record_success("w")  # probe succeeded: closed again
    assert breaker.state("w") == CLOSED
    assert breaker.allow("w")


def test_breaker_keys_are_independent():
    breaker = CircuitBreaker(1)
    breaker.record_failure("bad")
    assert not breaker.allow("bad")
    assert breaker.allow("good")
    states = breaker.states()
    assert states["bad"]["state"] == OPEN
    assert "good" not in states  # untripped circuits stay out of /health
