#!/usr/bin/env python3
"""Profiling a multiprocessing worker pool (the Figure 1 capability).

Most Python profilers cannot follow ``multiprocessing`` children; Scalene
(like py-spy and Austin) can. The parent forks four workers, each running
a CPU-bound kernel; Scalene attaches to every child and merges their
per-line attribution, so the workers' hot loop shows up in the report
even though the parent spends the whole window blocked.

    python examples/multiprocess_pool.py
"""

from repro import SimProcess
from repro.core import Scalene
from repro.interp.libs import install_standard_libraries

POOL = """
def worker(wid):
    acc = 0
    for i in range(3000):
        acc = acc + (i * wid) % 97
    return acc

if is_main():
    mp.run_workers(worker, 4)
summary = 1
"""


def main() -> None:
    process = SimProcess(POOL, filename="pool.py")
    install_standard_libraries(process)

    scalene = Scalene(process, mode="cpu")
    scalene.start()
    process.run()
    profile = scalene.stop()

    print(profile.render_text(sort_by="cpu"))
    print()
    child_walls = [round(c.clock.wall, 3) for c in process.children]
    print(f"parent wall time: {process.clock.wall:.3f}s "
          f"(children, in parallel: {child_walls})")
    print("The workers' loop (line 4) dominates the profile even though it")
    print("never ran in the parent process — pprofile/cProfile/line_profiler")
    print("would report an idle program here.")


if __name__ == "__main__":
    main()
