#!/usr/bin/env python3
"""Quickstart: profile a small program with Scalene's full mode.

The program mixes the four behaviours Scalene triangulates between:
interpreter-bound Python, native library execution, memory growth, and
blocking system time. Run it and read the per-line report:

    python examples/quickstart.py
"""

from repro import SimProcess
from repro.core import Scalene
from repro.interp.libs import install_standard_libraries

PROGRAM = """
def python_hotspot(n):
    total = 0
    for i in range(n):
        total = total + i * 3 - (i % 7)
    return total

def native_hotspot():
    a = np.zeros(2000000)
    b = a * 2.0
    return b.sum()

def memory_hotspot():
    retained = []
    for i in range(4):
        retained.append(py_buffer(12000000))
    transient = py_buffer(30000000)
    del transient
    retained.clear()

x = python_hotspot(4000)
y = native_hotspot()
memory_hotspot()
io.wait(0.4)
print(x)
"""


def main() -> None:
    process = SimProcess(PROGRAM, filename="app.py")
    install_standard_libraries(process)

    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()

    print(profile.render_text())
    print()
    print("What to look for:")
    print(" * line 5 (the Python loop): almost pure 'py%' time — a")
    print("   rewrite-with-NumPy candidate.")
    print(" * lines 9-11 (simnp calls): 'nat%' time — already efficient.")
    print(" * lines 16-20: the memory columns show growth and the 30 MB")
    print("   transient that a peak-only profiler would hide.")
    print(" * line 25 (io.wait): system time.")


if __name__ == "__main__":
    main()
