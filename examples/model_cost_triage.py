#!/usr/bin/env python3
"""Case study: triaging an ML model's serving cost (Semantic Scholar, §7).

The paper reports Semantic Scholar using Scalene to rescue a
cost-prohibitive model: the simultaneous CPU/GPU/memory view pinpointed
the issues, showed which fraction of runtime would benefit from hardware
acceleration, and validated each optimization — ultimately cutting costs
by 92%.

This example reproduces the workflow on a simulated inference service:
feature extraction in pure Python, a redundant per-request dataframe
copy, and a GPU model that sits mostly idle. The profile makes all three
problems visible at once — the "triangulation" of the paper's title.

    python examples/model_cost_triage.py
"""

from repro import SimProcess
from repro.core import Scalene
from repro.interp.libs import install_standard_libraries

SERVICE = """
features = pd.frame(200000, 8)

def extract_features(req):
    acc = 0
    for i in range(600):
        acc = acc + (req * 31 + i) % 97
    return acc

def fetch_row(req):
    row = features['c0']
    return req % 11

def run_model(batch):
    out = torch.forward(batch)
    torch.synchronize()
    return out

def serve_request(req):
    signal = extract_features(req)
    row = fetch_row(req)
    batch = torch.tensor(20000)
    out = run_model(batch)
    return signal + row

served = 0
for req in range(12):
    x = serve_request(req)
    served = served + 1
print(served)
"""


def main() -> None:
    process = SimProcess(SERVICE, filename="service.py")
    install_standard_libraries(process)
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()

    print(profile.render_text(sort_by="cpu"))
    print()
    total = (
        profile.cpu_python_time + profile.cpu_native_time + profile.cpu_system_time
    )
    python_share = profile.cpu_python_time / total if total else 0
    system_share = profile.cpu_system_time / total if total else 0
    print("Triage, straight from the profile:")
    print(f" 1. {python_share:.0%} of time is pure Python (extract_features):")
    print("    CPU-bound code to optimize — acceleration won't help it.")
    print(f" 2. fetch_row shows copy volume ({profile.total_copy_mb:.0f} MB "
          "total): a chained-indexing copy per request.")
    print(f" 3. {system_share:.0%} of time is GPU wait at "
          f"{profile.gpu_mean_utilization:.0%} mean utilization: the model "
          "is under-batched.")


if __name__ == "__main__":
    main()
