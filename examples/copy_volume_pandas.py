#!/usr/bin/env python3
"""Case study: pandas chained indexing, diagnosed by copy volume (§7).

The paper reports a developer whose list comprehension performed nested
indexing into a DataFrame; Scalene's copy-volume column revealed that the
outer index copied the column on every iteration (the pandas
returning-a-view-versus-a-copy pitfall). Hoisting the outer index gave an
18x speedup.

This example profiles both versions and prints the before/after.

    python examples/copy_volume_pandas.py
"""

from repro import SimProcess
from repro.core import Scalene
from repro.interp.libs import install_standard_libraries

CHAINED = """
df = pd.frame(500000, 4)
total = 0
for i in range(60):
    total = total + df['c0'][i]
print(total)
"""

HOISTED = """
df = pd.frame(500000, 4)
col = df.column_view('c0')
total = 0
for i in range(60):
    total = total + col[i]
print(total)
"""


def profile(source: str, label: str):
    process = SimProcess(source, filename=f"{label}.py")
    install_standard_libraries(process)
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    return scalene.stop(), process


def main() -> None:
    chained, p_chained = profile(CHAINED, "chained")
    hoisted, p_hoisted = profile(HOISTED, "hoisted")

    print("--- chained indexing: df['c0'][i] inside the loop ---")
    print(chained.render_text())
    print()
    print("--- hoisted: col = view(df, 'c0') outside the loop ---")
    print(hoisted.render_text())
    print()
    speedup = p_chained.clock.wall / p_hoisted.clock.wall
    print(f"copy volume: {chained.total_copy_mb:8.1f} MB  ->  "
          f"{hoisted.total_copy_mb:.1f} MB")
    print(f"runtime:     {p_chained.clock.wall:8.2f} s   ->  "
          f"{p_hoisted.clock.wall:.2f} s   ({speedup:.1f}x speedup; "
          "paper reports 18x)")


if __name__ == "__main__":
    main()
