#!/usr/bin/env python3
"""The full optimization loop: profile → fix → re-profile → diff.

Mirrors how the paper's §7 users worked: Scalene points at the problem
(a scalar loop that is 100% Python time plus a copy-heavy column access),
the developer applies the fix, and the diff verifies the win. Also shows
region profiling: only the code between profile_start()/profile_stop() is
measured, so setup noise stays out of the report.

    python examples/optimize_loop.py
"""

from repro import SimProcess
from repro.analysis.diffing import diff_profiles
from repro.core import Scalene
from repro.core.config import ScaleneConfig
from repro.interp.libs import install_standard_libraries

BEFORE = """
df = pd.frame(300000, 4)
profile_start()
total = 0
for i in range(40):
    total = total + df['c0'][i]
profile_stop()
print(total)
"""

AFTER = """
df = pd.frame(300000, 4)
profile_start()
col = df.column_view('c0')
total = 0
for i in range(40):
    total = total + col[i]
profile_stop()
print(total)
"""


def profile(source: str):
    process = SimProcess(source, filename="pipeline.py")
    install_standard_libraries(process)
    config = ScaleneConfig(mode="full", start_paused=True)
    scalene = Scalene(process, config=config)
    scalene.start()
    process.run()
    return scalene.stop()


def main() -> None:
    before = profile(BEFORE)
    print("--- before (chained indexing) ---")
    print(before.render_text(sort_by="cpu"))
    print()

    after = profile(AFTER)
    print("--- after (hoisted column view) ---")
    print(after.render_text(sort_by="cpu"))
    print()

    diff = diff_profiles(before, after)
    print("--- verification diff ---")
    print(diff.render_text())


if __name__ == "__main__":
    main()
