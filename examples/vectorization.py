#!/usr/bin/env python3
"""Case study: NumPy vectorization guided by Python-vs-native time (§7).

A graduate student's gradient-descent classifier ran at 80 iterations per
minute; Scalene showed 99% of the time in *Python* rather than native
code — the signature of unvectorized NumPy use. Rewriting with vector
operations reached 10,000 iterations per minute (125x).

This example profiles the scalar and vectorized versions and prints the
Python/native split for each — the exact signal the case study describes.

    python examples/vectorization.py
"""

from repro import SimProcess
from repro.core import Scalene
from repro.interp.libs import install_standard_libraries

SCALAR = """
def gradient_step(n):
    acc = 0
    for i in range(n):
        acc = acc + i * 3 - (i % 7)
    return acc

total = 0
for it in range(12):
    total = total + gradient_step(2000)
print(total)
"""

VECTORIZED = """
def gradient_step(x):
    y = x * 3.0
    z = y - x
    return z.sum()

x = np.zeros(2000)
total = 0
for it in range(12):
    total = total + gradient_step(x)
print(total)
"""


def profile(source: str, label: str):
    process = SimProcess(source, filename=f"{label}.py")
    install_standard_libraries(process)
    scalene = Scalene(process, mode="cpu")
    scalene.start()
    process.run()
    return scalene.stop(), process


def main() -> None:
    scalar, p_scalar = profile(SCALAR, "scalar")
    vector, p_vector = profile(VECTORIZED, "vectorized")

    def split(profile):
        total = (
            profile.cpu_python_time
            + profile.cpu_native_time
            + profile.cpu_system_time
        )
        if total == 0:
            return 0.0, 0.0
        return profile.cpu_python_time / total, profile.cpu_native_time / total

    py_s, nat_s = split(scalar)
    py_v, nat_v = split(vector)
    print("--- scalar (unvectorized) version ---")
    print(scalar.render_text())
    print()
    print("--- vectorized version ---")
    print(vector.render_text())
    print()
    print(f"scalar:     {py_s:5.0%} Python / {nat_s:4.0%} native "
          "<- the 99%-Python red flag")
    print(f"vectorized: {py_v:5.0%} Python / {nat_v:4.0%} native")
    speedup = p_scalar.clock.wall / p_vector.clock.wall
    print(f"speedup from vectorizing: {speedup:.0f}x (paper reports 125x)")


if __name__ == "__main__":
    main()
