#!/usr/bin/env python3
"""Case study: a PyTorch-style training loop under Scalene's GPU profiler.

Mirrors the paper's Figure 2 scenario (pytorch-mnist): data loading on
the CPU, host-to-device copies, kernel launches, and a synchronization
point. The profile shows GPU utilization and GPU memory per line, plus
the h2d/d2h legs of copy volume — revealing whether the accelerator is
actually being kept busy.

    python examples/gpu_training.py
"""

from repro import SimProcess
from repro.core import Scalene
from repro.interp.libs import install_standard_libraries

TRAINING = """
def load_batch(step):
    raw = py_buffer(2000000)
    del raw
    return step % 7

def train_step(step):
    noise = load_batch(step)
    batch = torch.tensor(400000)
    out = torch.forward(batch)
    torch.backward(out)
    torch.synchronize()
    return noise

total = 0
for step in range(6):
    total = total + train_step(step)
print(total)
"""


def main() -> None:
    process = SimProcess(TRAINING, filename="train.py")
    install_standard_libraries(process)

    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()

    print(profile.render_text())
    print()
    print(f"mean GPU utilization: {profile.gpu_mean_utilization:.0%}")
    print(f"peak GPU memory:      {profile.gpu_mem_peak_mb:.1f} MB")
    print(f"copy volume:          {profile.total_copy_mb:.1f} MB "
          "(includes the host->device tensor uploads)")
    print()
    print("Reading the report: torch.synchronize() carries the system/GPU")
    print("time — the CPU is idle while kernels drain, exactly the signal")
    print("that tells you whether batching more work would pay off.")


if __name__ == "__main__":
    main()
