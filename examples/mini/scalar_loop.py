n = 2000
a = np.arange(n)
b = np.zeros(n)
for i in range(n):
    b[i] = a[i] * 2.0
print(b.sum())
