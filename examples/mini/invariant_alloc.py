n = 256
total = 0.0
for i in range(50):
    scratch = np.zeros(n)
    total = total + scratch.sum()
print(total)
