df = pd.frame(400, 4)
total = 0.0
for i in range(400):
    total = total + df['c0'][i]
print(total)
