acc = pd.frame(1)
for i in range(40):
    chunk = pd.frame(20)
    acc = pd.concat(acc, chunk)
print(len(acc))
