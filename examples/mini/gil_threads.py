def worker():
    s = 0
    for i in range(4000):
        s = s + 1

t1 = spawn(worker)
t2 = spawn(worker)
join(t1)
join(t2)
print('done')
