#!/usr/bin/env python3
"""Case study: finding a memory leak with Scalene's leak detector (§3.4).

A simulated request-serving loop accidentally retains every request
payload in a module-level cache. Scalene's threshold sampler piggybacks
leak tracking on high-water-mark crossings and reports the leaking line
with a likelihood (Laplace's Rule of Succession) and a leak rate in MB/s.

    python examples/leak_hunt.py
"""

from repro import SimProcess
from repro.core import Scalene

SERVER = """
cache = []
served = 0

def parse_request(req):
    body = py_buffer(200000)
    del body
    return req % 17

def handle_request(req):
    global served
    payload = py_buffer(11000000)
    cache.append(payload)
    served = served + 1
    return parse_request(req)

for req in range(30):
    handle_request(req)
print(served)
"""


def main() -> None:
    process = SimProcess(SERVER, filename="server.py")
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()

    print(profile.render_text())
    print()
    if profile.leaks:
        print("Leak detector verdict:")
        for leak in profile.leaks:
            print(f"  LEAK at {leak.filename}:{leak.lineno} in {leak.function}()")
            print(f"       likelihood {leak.likelihood:.1%} "
                  f"(score: {leak.mallocs} mallocs / {leak.frees} frees)")
            print(f"       leak rate  {leak.leak_rate_mb_s:.2f} MB/s")
        print()
        print("Note that parse_request's 200 KB transients are NOT flagged:")
        print("they never survive a high-water crossing.")
    else:
        print("No leaks reported — unexpected for this program!")


if __name__ == "__main__":
    main()
