#!/usr/bin/env python3
"""Run the same program under several profilers and compare what they see.

Demonstrates the paper's core claims side by side on one program:

* pprofile(stat.) reports ~zero native time and nothing for subthreads;
* cProfile's function granularity hides the hot line;
* memory_profiler's RSS proxy misses an untouched allocation;
* Scalene separates Python/native/system time, attributes subthread work,
  and reports the allocation accurately.

    python examples/compare_profilers.py
"""

from repro import SimProcess
from repro.baselines import make_profiler
from repro.core import Scalene
from repro.interp.libs import install_standard_libraries

PROGRAM = """
def worker():
    s = 0
    for i in range(3000):
        s = s + 1
    return s

big = np.empty(13000000)
t = spawn(worker)
native_work(1.0)
join(t)
del big
done = 1
"""


def fresh_process():
    process = SimProcess(PROGRAM, filename="mix.py")
    install_standard_libraries(process)
    return process


def main() -> None:
    for name in ("pprofile_stat", "cProfile", "memory_profiler"):
        process = fresh_process()
        profiler = make_profiler(name, process)
        profiler.start()
        process.run()
        report = profiler.stop()
        print(f"--- {name} ---")
        if report.line_times:
            for (file, line), seconds in sorted(report.line_times.items()):
                print(f"  {file}:{line:<4} {seconds:8.3f}s")
        if report.function_times:
            for (file, fn), seconds in sorted(report.function_times.items()):
                print(f"  {fn:<16} {seconds:8.3f}s")
        if report.line_memory_mb:
            for (file, line), mb in sorted(report.line_memory_mb.items()):
                print(f"  {file}:{line:<4} {mb:8.1f} MB (RSS delta)")
        print()

    process = fresh_process()
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()
    print("--- scalene (full) ---")
    print(profile.render_text())
    print()
    print("Note: line 4 (the subthread's loop) and line 9 (native_work) are")
    print("correctly attributed only by Scalene; the 104 MB np.empty shows")
    print("its true allocated size despite never being touched.")


if __name__ == "__main__":
    main()
