#!/usr/bin/env python3
"""Static performance triangulation: lints × a Scalene profile (§7).

Each of the paper's §7 case studies is a statically recognizable shape
in our bytecode. The linter (`repro.staticcheck`) finds those shapes; on
their own they are style hints — a static linter cannot tell a hot loop
from one that runs twice. Joining the findings with a Scalene profile
(`repro.analysis.triangulate`) ranks them by *measured* cost and
suppresses the ones the profile proves are too cold to matter (the §5
1% threshold).

This demo lints the anti-pattern gallery in examples/mini/, then runs
the hot/cold discrimination end to end: the same scalar-loop
anti-pattern planted twice, once over 4 elements and once over 4000.

    python examples/lint_demo.py
"""

from pathlib import Path

from repro import SimProcess
from repro.analysis import lint_and_triangulate
from repro.core import Scalene
from repro.interp.libs import install_standard_libraries
from repro.staticcheck import lint_source

MINI = Path(__file__).parent / "mini"

HOT_COLD = """\
small = np.arange(4)
tiny = np.zeros(4)
for i in range(4):
    tiny[i] = small[i] * 2.0
big = np.arange(4000)
out = np.zeros(4000)
for i in range(4000):
    out[i] = big[i] * 2.0
print(out.sum())
"""


def main() -> None:
    print("=== Static lints over the anti-pattern gallery ===")
    for path in sorted(MINI.glob("*.py")):
        findings = lint_source(path.read_text(encoding="utf-8"), path.name)
        print(f"\n{path.name}:")
        for finding in findings:
            print(f"  {finding}")

    print("\n=== Triangulation: the same anti-pattern, hot vs cold ===")
    process = SimProcess(HOT_COLD, filename="hotcold.py")
    install_standard_libraries(process)
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()
    triangulated = lint_and_triangulate(HOT_COLD, profile, "hotcold.py")
    for t in triangulated:
        print(f"  {t}")
    hot = [t for t in triangulated if not t.suppressed]
    cold = [t for t in triangulated if t.suppressed]
    print()
    print(
        f"Triangulation verdict: {len(hot)} finding(s) confirmed hot "
        f"(top: line {hot[0].lineno} at {hot[0].score:.1f}% measured), "
        f"{len(cold)} suppressed as cold."
    )


if __name__ == "__main__":
    main()
