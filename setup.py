"""Legacy setup shim.

Keeps ``pip install -e .`` working on minimal environments that lack the
``wheel`` package (pip then falls back to ``setup.py develop``); all
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
