"""Repo-root pytest configuration: per-marker timeout budgets.

``marker_timeouts`` (pyproject's ``[tool.pytest.ini_options]``) maps a
marker name to a timeout in seconds, applied when the pytest-timeout
plugin is installed (CI installs it; locally it's optional and the hook
degrades to a no-op). Registered here — not in tests/conftest.py — so
the option is known both to the tier-1 suite and to benchmark runs
invoked from ``benchmarks/``. Tests that already carry an explicit
``timeout`` marker keep theirs.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addini(
        "marker_timeouts",
        "per-marker timeout budgets as 'marker: seconds' lines",
        type="linelist",
        default=[],
    )


def pytest_collection_modifyitems(config, items):
    if not config.pluginmanager.hasplugin("timeout"):
        return
    budgets = {}
    for entry in config.getini("marker_timeouts"):
        marker, _, seconds = entry.partition(":")
        if seconds.strip().isdigit():
            budgets[marker.strip()] = int(seconds.strip())
    if not budgets:
        return
    for item in items:
        if item.get_closest_marker("timeout") is not None:
            continue
        for marker, seconds in budgets.items():
            if item.get_closest_marker(marker) is not None:
                item.add_marker(pytest.mark.timeout(seconds))
                break
