"""Static analysis: detector hit-rate on planted anti-patterns, lint cost.

Two questions decide whether the linter earns its place in the pipeline:
does every §7 anti-pattern detector catch its planted shape (and stay
quiet on the repaired version), and is the whole analysis — verify, CFG,
dataflow, five detectors — cheap enough to run on every compile. The
table reports per-detector hits/misses, false positives on the clean
corpus, and lint wall-time per KLoC of mini-language source.
"""

from __future__ import annotations

import time

from conftest import run_once, save_result

from repro.interp.astcompile import compile_source
from repro.staticcheck import lint_source, verify_code
from repro.workloads import get_workload, workload_names

#: detector -> (planted source, expected line). One §7 case study each.
PLANTED = {
    "chained-df-indexing": (
        "df = pd.frame(100)\n"
        "total = 0.0\n"
        "for i in range(100):\n"
        "    total = total + df['c0'][i]\n"
        "print(total)\n",
        4,
    ),
    "concat-growth-in-loop": (
        "acc = pd.frame(1)\n"
        "for i in range(20):\n"
        "    acc = pd.concat(acc, pd.frame(10))\n"
        "print(len(acc))\n",
        3,
    ),
    "scalar-loop-vectorize": (
        "a = np.arange(200)\n"
        "b = np.zeros(200)\n"
        "for i in range(200):\n"
        "    b[i] = a[i] * 2.0\n"
        "print(b.sum())\n",
        4,
    ),
    "loop-invariant-hoist": (
        "total = 0.0\n"
        "for i in range(20):\n"
        "    scratch = np.zeros(64)\n"
        "    total = total + scratch.sum()\n"
        "print(total)\n",
        3,
    ),
    "gil-serialized-threads": (
        "def worker():\n"
        "    s = 0\n"
        "    for i in range(100):\n"
        "        s = s + 1\n"
        "t = spawn(worker)\n"
        "join(t)\n",
        5,
    ),
}

#: detector -> repaired source. The repair removes *that* anti-pattern;
#: the detector firing on its own repaired version is a false positive.
REPAIRED = {
    "chained-df-indexing": (
        "df = pd.frame(100)\n"
        "col = df.column_view('c0')\n"
        "total = 0.0\n"
        "for i in range(100):\n"
        "    total = total + col[i]\n"
        "print(total)\n"
    ),
    "concat-growth-in-loop": (
        "pieces = []\n"
        "for i in range(20):\n"
        "    pieces.append(pd.frame(10))\n"
        "merged = pd.concat(pieces)\n"
        "print(len(merged))\n"
    ),
    "scalar-loop-vectorize": (
        "a = np.arange(200)\n"
        "b = a * 2.0\n"
        "print(b.sum())\n"
    ),
    "loop-invariant-hoist": (
        "scratch = np.zeros(64)\n"
        "total = 0.0\n"
        "for i in range(20):\n"
        "    total = total + scratch.sum()\n"
        "print(total)\n"
    ),
    "gil-serialized-threads": (
        "def worker():\n"
        "    for i in range(5):\n"
        "        sleep(0.01)\n"
        "t = spawn(worker)\n"
        "join(t)\n"
    ),
}

#: A straight-line-plus-loops block repeated to build the KLoC corpus.
_FILLER_BLOCK = (
    "v{k} = 0\n"
    "for i in range(10):\n"
    "    v{k} = v{k} + i * 2 - 1\n"
    "if v{k} > 10:\n"
    "    v{k} = v{k} - 10\n"
    "print(v{k})\n"
)


def _kloc_source(lines_target: int) -> str:
    blocks = []
    k = 0
    while sum(b.count("\n") for b in blocks) < lines_target:
        blocks.append(_FILLER_BLOCK.format(k=k))
        k += 1
    return "".join(blocks)


def run_experiment():
    # 1. Hit-rate on the planted corpus.
    hits = {}
    for detector, (source, lineno) in PLANTED.items():
        findings = lint_source(source, f"{detector}.py")
        hits[detector] = any(
            f.detector == detector and f.lineno == lineno for f in findings
        )

    # 2. False positives: a detector firing on its own repaired scenario.
    false_positives = 0
    for detector, source in REPAIRED.items():
        findings = lint_source(source, "repaired.py")
        false_positives += sum(1 for f in findings if f.detector == detector)

    # 3. Lint + verify wall-time per KLoC (host time, not virtual time).
    source = _kloc_source(1000)
    loc = source.count("\n")
    t0 = time.perf_counter()
    code = compile_source(source, "kloc.py")
    compile_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    verify_code(code)
    verify_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    lint_source(source, "kloc.py")
    lint_s = time.perf_counter() - t0

    # 4. The verifier accepts the whole workload suite (hard gate).
    verified = 0
    for name in workload_names():
        verify_code(compile_source(get_workload(name).source(0.05), f"{name}.py"))
        verified += 1

    return {
        "hits": hits,
        "false_positives": false_positives,
        "loc": loc,
        "compile_ms_per_kloc": 1000 * compile_s * (1000 / loc),
        "verify_ms_per_kloc": 1000 * verify_s * (1000 / loc),
        "lint_ms_per_kloc": 1000 * lint_s * (1000 / loc),
        "workloads_verified": verified,
    }


def test_static_analysis(benchmark):
    results = run_once(benchmark, run_experiment)

    lines = ["detector                  planted pattern"]
    for detector, hit in results["hits"].items():
        lines.append(f"{detector:<25} {'HIT' if hit else 'MISS'}")
    lines.append(
        f"false positives on repaired corpus: {results['false_positives']}"
    )
    lines.append(
        f"analysis cost on {results['loc']} LoC: "
        f"compile {results['compile_ms_per_kloc']:.1f} ms/KLoC, "
        f"verify {results['verify_ms_per_kloc']:.1f} ms/KLoC, "
        f"lint {results['lint_ms_per_kloc']:.1f} ms/KLoC"
    )
    lines.append(
        f"workload suite: {results['workloads_verified']} programs verified clean"
    )
    save_result("static_analysis", "\n".join(lines))

    assert all(results["hits"].values()), "every detector must catch its plant"
    assert results["false_positives"] == 0
    assert results["workloads_verified"] == len(workload_names())
    # The linter must stay compile-time cheap (well under a second per KLoC).
    assert results["lint_ms_per_kloc"] < 1000
