#!/usr/bin/env python
"""Scale-out serve-plane benchmarks: accept latency and bounded /trend.

Measures what DESIGN.md §12's sharded plane is supposed to deliver:

* **submission burst** — ``repro.serve.loadgen`` drives the async
  batching gateway in front of a 3-shard plane with thousands of job
  submissions and records submissions/sec plus accept-latency
  p50/p90/p99 while the whole burst sits queued behind the batch
  dispatcher, then waits for the backlog to reach the shard queues;
* **bounded trend** — ``GET /trend`` latency against a daemon holding
  ``--small`` vs ``--large`` stored profiles. The streaming-sketch path
  must stay flat (the acceptance bar: within 25%) while the exact
  replay path grows with history; the sketch answers must also agree
  with the exact merge (headline means within 5%, per-line CPU shares
  to float precision).

Appends a trend record to ``BENCH_serve_scale.json`` at the repo root
via :func:`runner.append_trend`. ``--check`` turns the acceptance bars
and a regression comparison against the previous record into exit
status (the CI ``serve-scale-smoke`` gate).

Usage::

    python benchmarks/bench_serve_scale.py [--jobs N] [--small N] [--large N]
    python benchmarks/bench_serve_scale.py --quick --check
"""

from __future__ import annotations

import argparse
import copy
import gc
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
for entry in (str(SRC), str(REPO_ROOT / "benchmarks")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from runner import append_trend  # noqa: E402

TREND_PATH = REPO_ROOT / "BENCH_serve_scale.json"

#: Acceptance bars (mirrors ISSUE/DESIGN §12): the sketch path's
#: latency growth bound from --small to --large stored profiles, and
#: its allowed relative error against the exact merge.
TREND_FLAT_FACTOR = 1.25
SKETCH_ACCURACY = 0.05

#: DESIGN §13 durability bar: group-committed fsync must keep WAL-on
#: accept throughput within 15% of the WAL-off burst.
WAL_THROUGHPUT_FACTOR = 0.85


def build_base_profile():
    """One real Scalene profile the seeding rescales into a history."""
    from repro.core.scalene import Scalene
    from repro.workloads import get_workload

    process = get_workload("pprint").make_process(0.05)
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    return scalene.stop()


def make_variant(base, index: int):
    """A distinct-content rescaling of the base profile (one 'run')."""
    profile = copy.deepcopy(base)
    profile.elapsed *= 1.0 + index * 1e-4  # distinct content id per run
    return profile


# -- submission burst -------------------------------------------------------


def bench_submission(
    jobs: int, shards: int, concurrency: int, *, wal: bool = False
) -> dict:
    """One submission burst; ``wal=True`` runs it against a WAL-backed
    gateway (every 202 durably logged) and skips the dispatch drain —
    the accept path is what the durability tax lands on."""
    from repro.serve import ServeClient, ServeFrontend, ShardPlane, run_load

    with tempfile.TemporaryDirectory() as tmp:
        plane = ShardPlane(Path(tmp) / "plane", shards=shards, workers=1)
        router = plane.start()
        gateway = ServeFrontend(
            router,
            batch_window_s=0.05,
            batch_max=128,
            wal=(Path(tmp) / "wal") if wal else None,
        )
        gateway.start()
        try:
            report = run_load(
                gateway.url, jobs=jobs, concurrency=concurrency, scale=0.02
            )
            backlog, dispatch_s, queued_on_shards = 0, 0.0, 0
            wal_stats = gateway.wal.stats_dict() if wal else None
            if not wal:
                # Drain the accepted backlog onto the shard queues — the
                # "N jobs queued across the plane" state it must sustain.
                client = ServeClient(gateway.url)
                dispatch_started = time.perf_counter()
                deadline = time.monotonic() + 120.0
                backlog = jobs
                while time.monotonic() < deadline:
                    counts = client.health()["jobs"]
                    backlog = counts.get("accepted", 0)
                    if backlog == 0:
                        break
                    time.sleep(0.1)
                dispatch_s = time.perf_counter() - dispatch_started
                queued_on_shards = sum(
                    shard_health["jobs"].get("queued", 0)
                    + shard_health["jobs"].get("running", 0)
                    for shard_health in plane.health().values()
                )
        finally:
            gateway.stop()
            plane.stop()
    result = {
        "jobs": jobs,
        "shards": shards,
        "concurrency": report.concurrency,
        "errors": report.errors,
        "submissions_per_s": round(report.submissions_per_s, 1),
        "accept_p50_ms": round(report.latency_p50_ms, 3),
        "accept_p90_ms": round(report.latency_p90_ms, 3),
        "accept_p99_ms": round(report.latency_p99_ms, 3),
        "accept_max_ms": round(report.latency_max_ms, 3),
        "undispatched_after_drain": backlog,
        "dispatch_s": round(dispatch_s, 2),
        "queued_on_shards": queued_on_shards,
    }
    if wal:
        result["wal"] = wal_stats
    return result


# -- bounded trend ----------------------------------------------------------


def _seed_store(root: Path, base, count: int):
    """Seed ``count`` distinct stored runs; returns their elapsed values."""
    from repro.serve import ProfileStore

    store = ProfileStore(root)
    store.defer_index_flush = True
    elapsed = []
    for index in range(count):
        profile = make_variant(base, index)
        store.put(
            profile,
            workload="pprint",
            profiler="scalene",
            config={"mode": "full", "scale": 0.05, "overrides": {}},
            created_at=float(index),
        )
        elapsed.append(profile.elapsed)
    store.flush_index()
    return elapsed


def _measure_trend(root: Path, requests: int) -> dict:
    """Boot a daemon over a seeded store; median /trend latencies."""
    from repro.serve import ProfileDaemon, ServeClient

    rebuild_started = time.perf_counter()
    daemon = ProfileDaemon(str(root), workers=1)
    rebuild_s = time.perf_counter() - rebuild_started  # sketch replay cost
    daemon.start()
    try:
        client = ServeClient(daemon.url)
        sketch_ms, exact_ms = [], []
        # A fixed page size keeps the response equal at both store sizes,
        # so the ratio isolates history-dependence (the claim under test)
        # from response-size growth as the recent window fills to 128.
        for _ in range(3):  # warm up lazy imports, allocator, caches
            client.trend(workload="pprint", limit=50)
            client.trend(workload="pprint", exact=1, limit=50)
        # The daemon shares this process: pause the cyclic GC so pause
        # times (which scale with heap size, i.e. store size) don't
        # pollute the latency floors the flatness gate compares.
        gc.collect()
        gc.disable()
        for _ in range(requests):
            start = time.perf_counter()
            sketch = client.trend(workload="pprint", limit=50)
            sketch_ms.append(1000 * (time.perf_counter() - start))
            start = time.perf_counter()
            client.trend(workload="pprint", exact=1, limit=50)
            exact_ms.append(1000 * (time.perf_counter() - start))
        summary = sketch["summary"]
        lines = client.sketch(workload="pprint")["lines"]
    finally:
        gc.enable()
        daemon.stop()
    return {
        "rebuild_s": round(rebuild_s, 3),
        # Best-of, not median: the flatness gate compares two latency
        # floors, and the floor is what the store size determines — GC
        # pauses and scheduler noise land on either side at random.
        "sketch_ms": round(min(sketch_ms), 3),
        "exact_ms": round(min(exact_ms), 3),
        "elapsed_mean": summary["elapsed_s"]["mean"],
        "runs": summary["runs"],
        "lines": lines,
    }


def bench_trend(base, small: int, large: int, requests: int) -> dict:
    from repro.core.profile_data import merge_profiles

    with tempfile.TemporaryDirectory() as tmp:
        small_root = Path(tmp) / "small"
        large_root = Path(tmp) / "large"
        small_elapsed = _seed_store(small_root, base, small)
        large_elapsed = _seed_store(large_root, base, large)
        small_run = _measure_trend(small_root, requests)
        large_run = _measure_trend(large_root, requests)

    # Accuracy: the sketch's headline mean vs ground truth, and its
    # per-line CPU shares vs an exact merge_profiles replay (at --small;
    # the sketch algebra is size-independent, property-tested besides).
    mean_err = abs(
        small_run["elapsed_mean"] - statistics.fmean(small_elapsed)
    ) / statistics.fmean(small_elapsed)
    large_mean_err = abs(
        large_run["elapsed_mean"] - statistics.fmean(large_elapsed)
    ) / statistics.fmean(large_elapsed)
    merged = merge_profiles([make_variant(base, i) for i in range(small)])
    shares = {
        (row["filename"], row["lineno"]): row["cpu_percent"]
        for row in small_run["lines"]
    }
    line_err = max(
        (
            abs(shares[(line.filename, line.lineno)] - line.cpu_total_percent)
            / line.cpu_total_percent
            for line in merged.lines
            if line.cpu_total_percent > 0.1
        ),
        default=0.0,
    )
    ratio = (
        large_run["sketch_ms"] / small_run["sketch_ms"]
        if small_run["sketch_ms"] > 0
        else 1.0
    )
    return {
        "small": small,
        "large": large,
        "requests": requests,
        "small_sketch_ms": small_run["sketch_ms"],
        "large_sketch_ms": large_run["sketch_ms"],
        "sketch_ratio": round(ratio, 3),
        "small_exact_ms": small_run["exact_ms"],
        "large_exact_ms": large_run["exact_ms"],
        "small_rebuild_s": small_run["rebuild_s"],
        "large_rebuild_s": large_run["rebuild_s"],
        "elapsed_mean_rel_err": round(max(mean_err, large_mean_err), 6),
        "line_share_max_rel_err": round(line_err, 9),
    }


# -- gates ------------------------------------------------------------------


def check(record: dict, trend_path: Path) -> list:
    """The acceptance bars + regression vs the previous comparable run."""
    problems = []
    submission, trend = record["submission"], record["trend"]
    if submission["errors"]:
        problems.append(f"loadgen saw {submission['errors']} submission errors")
    if submission["undispatched_after_drain"]:
        problems.append(
            f"{submission['undispatched_after_drain']} jobs never left the "
            "gateway batch buffer"
        )
    durable = record.get("submission_wal")
    if durable:
        if durable["errors"]:
            problems.append(
                f"WAL-on loadgen saw {durable['errors']} submission errors"
            )
        ratio = durable.get(
            "ratio_vs_off",
            durable["submissions_per_s"]
            / max(submission["submissions_per_s"], 1e-9),
        )
        if ratio < WAL_THROUGHPUT_FACTOR:
            problems.append(
                f"WAL-on throughput {durable['submissions_per_s']}/s is "
                f"{ratio:.0%} of the paired WAL-off burst "
                f"(bar: {WAL_THROUGHPUT_FACTOR:.0%})"
            )
    if trend["sketch_ratio"] > TREND_FLAT_FACTOR:
        problems.append(
            f"/trend sketch latency grew {trend['sketch_ratio']}x from "
            f"{trend['small']} to {trend['large']} profiles "
            f"(bar: {TREND_FLAT_FACTOR}x)"
        )
    for key in ("elapsed_mean_rel_err", "line_share_max_rel_err"):
        if trend[key] > SKETCH_ACCURACY:
            problems.append(
                f"sketch {key} {trend[key]:.4f} exceeds {SKETCH_ACCURACY:.0%}"
            )
    # Regression vs the previous record at the same burst size: a 3x
    # slowdown on either axis fails (generous — CI runners are noisy).
    try:
        history = json.loads(trend_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        history = []
    previous = [
        r
        for r in history[:-1]  # the current run is already appended
        if isinstance(r, dict)
        and r.get("submission", {}).get("jobs") == submission["jobs"]
    ]
    if previous:
        prev = previous[-1]["submission"]
        if prev.get("accept_p99_ms", 0) > 0 and submission[
            "accept_p99_ms"
        ] > 3 * prev["accept_p99_ms"]:
            problems.append(
                f"accept p99 regressed {submission['accept_p99_ms']}ms vs "
                f"previous {prev['accept_p99_ms']}ms (>3x)"
            )
        if prev.get("submissions_per_s", 0) > 0 and submission[
            "submissions_per_s"
        ] < prev["submissions_per_s"] / 3:
            problems.append(
                f"throughput regressed {submission['submissions_per_s']}/s vs "
                f"previous {prev['submissions_per_s']}/s (<1/3)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=10000,
                        help="submission-burst size (default 10000)")
    parser.add_argument("--shards", type=int, default=3,
                        help="shard daemons behind the gateway (default 3)")
    parser.add_argument("--concurrency", type=int, default=16,
                        help="loadgen submitter connections (default 16)")
    parser.add_argument("--small", type=int, default=100,
                        help="baseline stored-profile count (default 100)")
    parser.add_argument("--large", type=int, default=10000,
                        help="scaled stored-profile count (default 10000)")
    parser.add_argument("--requests", type=int, default=20,
                        help="/trend requests per measurement (default 20)")
    parser.add_argument("--quick", action="store_true",
                        help="2000-job burst, 100 vs 1000 profiles — CI smoke")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero when an acceptance bar or the "
                        "regression comparison fails")
    parser.add_argument("--output", type=Path, default=TREND_PATH,
                        help="trend file to append to")
    args = parser.parse_args(argv)

    jobs = 2000 if args.quick else args.jobs
    large = 1000 if args.quick else args.large
    requests = 10 if args.quick else args.requests

    # Two (off, on) pairs in ABBA order. Single bursts on a shared core
    # jitter by +-15%, and the jitter is positional (later runs in one
    # process drift slower), so the durability gate scores each WAL-on
    # burst against its *adjacent* WAL-off burst and takes the better
    # pair — position cancels out of the ratio.
    def best(runs):
        return max(runs, key=lambda r: r["submissions_per_s"])

    off_1 = bench_submission(jobs, args.shards, args.concurrency)
    on_1 = bench_submission(jobs, args.shards, args.concurrency, wal=True)
    on_2 = bench_submission(jobs, args.shards, args.concurrency, wal=True)
    off_2 = bench_submission(jobs, args.shards, args.concurrency)
    submission = best([off_1, off_2])
    submission_wal = best([on_1, on_2])
    submission_wal["ratio_vs_off"] = round(
        max(
            on_1["submissions_per_s"] / max(off_1["submissions_per_s"], 1e-9),
            on_2["submissions_per_s"] / max(off_2["submissions_per_s"], 1e-9),
        ),
        3,
    )
    base = build_base_profile()
    trend = bench_trend(base, args.small, large, requests)

    record = append_trend(args.output, {
        "quick": args.quick,
        "submission": submission,
        "submission_wal": submission_wal,
        "trend": trend,
    })

    print(
        f"submit: {submission['submissions_per_s']:>10,.1f} jobs/s accepted "
        f"({jobs} jobs, {args.shards} shards, {submission['errors']} errors)"
    )
    print(
        f"        WAL-on {submission_wal['submissions_per_s']:>10,.1f} jobs/s "
        f"({submission_wal['ratio_vs_off']:.0%} of the paired WAL-off burst, "
        f"{submission_wal['wal']['syncs']} fsyncs for "
        f"{submission_wal['wal']['appends']} appends)"
    )
    print(
        f"        p50 {submission['accept_p50_ms']:.2f} ms   "
        f"p90 {submission['accept_p90_ms']:.2f} ms   "
        f"p99 {submission['accept_p99_ms']:.2f} ms   "
        f"dispatch drain {submission['dispatch_s']:.1f}s "
        f"({submission['queued_on_shards']} on shard queues)"
    )
    print(
        f"trend:  sketch {trend['small_sketch_ms']:.2f} -> "
        f"{trend['large_sketch_ms']:.2f} ms "
        f"({trend['small']} -> {trend['large']} profiles, "
        f"{trend['sketch_ratio']}x)   exact {trend['small_exact_ms']:.2f} -> "
        f"{trend['large_exact_ms']:.2f} ms"
    )
    print(
        f"        sketch vs exact: elapsed-mean err "
        f"{trend['elapsed_mean_rel_err']:.2e}, line-share err "
        f"{trend['line_share_max_rel_err']:.2e}"
    )
    print(f"-> {args.output} ({record['timestamp']})")

    if args.check:
        problems = check(record, args.output)
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
