#!/usr/bin/env python
"""Parallel benchmark suite driver for the simulated VM.

Fans the pyperf workload registry out across worker processes, reports
host-side interpreter throughput (VM instructions per host second) and
simulated wall time per workload, and appends a trend record to
``BENCH_vm.json`` at the repo root.

Results are cached per ``(bench, git tree hash, scale, reps)`` so re-runs
on an unchanged tree are free; the cache is bypassed when the working
tree is dirty (the tree hash no longer identifies the code being
measured) or with ``--no-cache``.

Exit codes: 0 ok, 1 usage/error, 2 perf-smoke regression
(``--check-regression`` and suite wall time more than 2x the recorded
baseline in ``benchmarks/bench_baseline.json``).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

CACHE_PATH = REPO_ROOT / "benchmarks" / "out" / "bench_cache.json"
BASELINE_PATH = REPO_ROOT / "benchmarks" / "bench_baseline.json"
TREND_PATH = REPO_ROOT / "BENCH_vm.json"

QUICK_SCALE = 0.05
QUICK_REPS = 1
DEFAULT_REPS = 3

#: Perf-smoke threshold: fail when the suite takes more than this multiple
#: of the recorded baseline wall time.
REGRESSION_FACTOR = 2.0


def _git(*args: str) -> str:
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        )
    except OSError:
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def git_state() -> tuple:
    """(commit, tree_hash, dirty) of the working copy; empty when not git."""
    commit = _git("rev-parse", "HEAD")
    tree = _git("rev-parse", "HEAD^{tree}")
    dirty = bool(_git("status", "--porcelain"))
    return commit, tree, dirty


def run_bench(name: str, scale: float, reps: int) -> dict:
    """Run one workload ``reps`` times; report the best host throughput.

    Executed inside a worker process. Imports live here so the parent can
    fan out before paying the package import cost per worker.
    """
    from repro.workloads.pyperf.registry import PYPERF_WORKLOADS

    workload = PYPERF_WORKLOADS[name]
    best_ops = 0.0
    instructions = 0
    sim_wall = 0.0
    for _ in range(max(1, reps)):
        process = workload.make_process(scale)
        start = time.perf_counter()
        process.run()
        elapsed = time.perf_counter() - start
        instructions = process.vm.instruction_count
        sim_wall = process.clock.wall
        ops = instructions / elapsed if elapsed > 0 else 0.0
        if ops > best_ops:
            best_ops = ops
    return {
        "bench": name,
        "ops_per_sec": round(best_ops, 1),
        "instructions": instructions,
        "sim_wall_s": round(sim_wall, 6),
    }


def _load_json(path: Path, default):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return default


def _dump_json(path: Path, payload) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def geomean(values) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def append_trend(path: Path, record: dict) -> dict:
    """Append one run record to a BENCH trend file (a JSON list).

    Stamps the record with timestamp, git state, and the Python version so
    every trend file (BENCH_vm.json, BENCH_store.json, ...) is comparable
    run-to-run. Returns the stamped record.
    """
    commit, tree, dirty = git_state()
    stamped = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": commit,
        "tree": tree,
        "dirty": dirty,
        "python": f"py{sys.version_info[0]}.{sys.version_info[1]}",
        **record,
    }
    trend = _load_json(path, [])
    if not isinstance(trend, list):
        trend = []
    trend.append(stamped)
    _dump_json(path, trend)
    return stamped


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"small scale ({QUICK_SCALE}), {QUICK_REPS} rep — CI smoke mode")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale (default: REPRO_SCALE or 0.2)")
    parser.add_argument("--reps", type=int, default=None,
                        help=f"repetitions per bench, best-of (default {DEFAULT_REPS})")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: os.cpu_count())")
    parser.add_argument("--only", default="",
                        help="comma-separated workload names to run")
    parser.add_argument("--output", type=Path, default=TREND_PATH,
                        help="trend file to append to (default BENCH_vm.json)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the per-tree result cache")
    parser.add_argument("--check-regression", action="store_true",
                        help="exit 2 when suite wall time exceeds "
                             f"{REGRESSION_FACTOR}x the recorded baseline")
    parser.add_argument("--record-baseline", action="store_true",
                        help="write benchmarks/bench_baseline.json from this run")
    args = parser.parse_args(argv)

    from repro.workloads.pyperf.registry import PYPERF_WORKLOADS

    if args.quick:
        scale = args.scale if args.scale is not None else QUICK_SCALE
        reps = args.reps if args.reps is not None else QUICK_REPS
    else:
        if args.scale is not None:
            scale = args.scale
        else:
            scale = float(os.environ.get("REPRO_SCALE", "0.2"))
        reps = args.reps if args.reps is not None else DEFAULT_REPS

    names = sorted(PYPERF_WORKLOADS)
    if args.only:
        wanted = [n.strip() for n in args.only.split(",") if n.strip()]
        unknown = [n for n in wanted if n not in PYPERF_WORKLOADS]
        if unknown:
            print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
            return 1
        names = wanted

    commit, tree, dirty = git_state()
    use_cache = not args.no_cache and tree and not dirty
    cache = _load_json(CACHE_PATH, {}) if use_cache else {}
    py_tag = f"py{sys.version_info[0]}.{sys.version_info[1]}"

    def cache_key(name: str) -> str:
        return f"{name}:{tree}:{scale}:{reps}:{py_tag}"

    results = {}
    to_run = []
    for name in names:
        cached = cache.get(cache_key(name)) if use_cache else None
        if cached is not None:
            results[name] = dict(cached, cached=True)
        else:
            to_run.append(name)

    suite_start = time.perf_counter()
    if to_run:
        jobs = args.jobs or os.cpu_count() or 1
        jobs = max(1, min(jobs, len(to_run)))
        if jobs == 1:
            fresh = [run_bench(name, scale, reps) for name in to_run]
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                fresh = list(
                    pool.map(run_bench, to_run, [scale] * len(to_run), [reps] * len(to_run))
                )
        for record in fresh:
            results[record["bench"]] = record
            if use_cache:
                cache[cache_key(record["bench"])] = {
                    k: v for k, v in record.items() if k != "cached"
                }
    suite_wall = time.perf_counter() - suite_start

    if use_cache and to_run:
        _dump_json(CACHE_PATH, cache)

    geo = geomean([results[n]["ops_per_sec"] for n in names])
    record = append_trend(args.output, {
        "scale": scale,
        "reps": reps,
        "suite_wall_s": round(suite_wall, 3),
        "geomean_ops_per_sec": round(geo, 1),
        "results": {
            n: {k: v for k, v in results[n].items() if k != "bench"} for n in names
        },
    })

    width = max(len(n) for n in names)
    for name in names:
        r = results[name]
        tag = " (cached)" if r.get("cached") else ""
        print(f"{name:<{width}}  {r['ops_per_sec']:>12,.0f} ops/s  "
              f"sim {r['sim_wall_s']:.3f}s{tag}")
    print(f"geomean: {geo:,.0f} ops/s   suite wall: {suite_wall:.2f}s"
          f"   -> {args.output}")

    if args.record_baseline:
        _dump_json(BASELINE_PATH, {
            "suite_wall_s": record["suite_wall_s"],
            "geomean_ops_per_sec": record["geomean_ops_per_sec"],
            "scale": scale,
            "reps": reps,
            "commit": commit,
        })
        print(f"baseline recorded -> {BASELINE_PATH}")

    if args.check_regression:
        baseline = _load_json(BASELINE_PATH, None)
        if not baseline or "suite_wall_s" not in baseline:
            print("no recorded baseline; skipping regression check", file=sys.stderr)
        else:
            # Only comparable when every bench actually ran here.
            measured = suite_wall if to_run == names else None
            if measured is None:
                print("cached results present; regression check needs --no-cache",
                      file=sys.stderr)
            elif measured > REGRESSION_FACTOR * baseline["suite_wall_s"]:
                print(
                    f"PERF REGRESSION: suite wall {measured:.2f}s > "
                    f"{REGRESSION_FACTOR}x baseline {baseline['suite_wall_s']:.2f}s",
                    file=sys.stderr,
                )
                return 2
            else:
                print(
                    f"perf-smoke ok: {measured:.2f}s <= "
                    f"{REGRESSION_FACTOR}x baseline {baseline['suite_wall_s']:.2f}s"
                )
    return 0


if __name__ == "__main__":
    sys.exit(main())
