"""§7 case studies: the optimizations Scalene's reports enabled.

Each case study is run in both its "before" and "after" form; the
speedups/savings should match the paper's reports in direction and rough
magnitude: Rich 45% runtime improvement, pandas chained indexing 18x,
groupby restructuring saves memory, NumPy vectorization ~125x.
"""

from __future__ import annotations

from conftest import run_once, save_result

from repro.interp.libs import install_standard_libraries
from repro.runtime.process import SimProcess


def _run(source: str):
    process = SimProcess(source, filename="case.py")
    install_standard_libraries(process)
    process.run()
    return process


RICH_BEFORE = """
total = 0
for cell in range(4000):
    ok = isinstance_protocol(cell)
    total = total + 1
print(total)
"""

RICH_AFTER = """
total = 0
for cell in range(4000):
    ok = hasattr_check(cell)
    total = total + 1
print(total)
"""

CHAINED_BEFORE = """
df = pd.frame(500000, 4)
total = 0
for i in range(60):
    total = total + df['c0'][i]
print(total)
"""

CHAINED_AFTER = """
df = pd.frame(500000, 4)
col = df.column_view('c0')
total = 0
for i in range(60):
    total = total + col[i]
print(total)
"""

GROUPBY_BEFORE = """
df = pd.frame(3000000, 8)
g = pd.groupby_sum(df, 16)
print(len(g))
"""

GROUPBY_AFTER = """
df = pd.frame(3000000, 8)
g = pd.groupby_sum_restructured(df, 16)
print(len(g))
"""

VECTORIZE_BEFORE = """
def gradient_step(n):
    acc = 0
    for i in range(n):
        acc = acc + i * 3 - (i % 7)
    return acc

total = 0
for it in range(12):
    total = total + gradient_step(2000)
print(total)
"""

VECTORIZE_AFTER = """
def gradient_step(x):
    y = x * 3.0
    z = y - x
    return z.sum()

x = np.zeros(2000)
total = 0
for it in range(12):
    total = total + gradient_step(x)
print(total)
"""


def run_experiment():
    out = {}
    for case, before, after in (
        ("rich_isinstance", RICH_BEFORE, RICH_AFTER),
        ("pandas_chained", CHAINED_BEFORE, CHAINED_AFTER),
        ("numpy_vectorize", VECTORIZE_BEFORE, VECTORIZE_AFTER),
    ):
        p_before = _run(before)
        p_after = _run(after)
        out[case] = (p_before.clock.wall, p_after.clock.wall)
    g_before = _run(GROUPBY_BEFORE)
    g_after = _run(GROUPBY_AFTER)
    out["pandas_groupby_mem"] = (
        g_before.mem.peak_footprint / 1e6,
        g_after.mem.peak_footprint / 1e6,
    )
    return out


def test_case_studies(benchmark):
    results = run_once(benchmark, run_experiment)

    lines = [f"{'case':<22}{'before':>12}{'after':>12}{'improvement':>13}"]
    for case, (before, after) in results.items():
        unit = "MB" if case.endswith("_mem") else "s"
        lines.append(
            f"{case:<22}{before:>11.3f}{unit}{after:>11.3f}{unit}"
            f"{before / after:>12.1f}x"
        )
    lines.append("paper: Rich +45%, chained indexing 18x, groupby -1.6GB, "
                 "vectorization 125x")
    save_result("case_studies", "\n".join(lines))

    rich_before, rich_after = results["rich_isinstance"]
    assert rich_before / rich_after > 1.4  # ≥45% improvement

    chained_before, chained_after = results["pandas_chained"]
    assert 5 < chained_before / chained_after < 100  # paper: 18x

    vec_before, vec_after = results["numpy_vectorize"]
    assert vec_before / vec_after > 40  # paper: 125x

    mem_before, mem_after = results["pandas_groupby_mem"]
    assert mem_before - mem_after > 50  # substantial MB saved
