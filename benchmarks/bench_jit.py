#!/usr/bin/env python
"""Trace-JIT tier benchmark: interpreter vs JIT on loop-heavy kernels.

Runs each kernel twice per repetition — JIT disabled (``REPRO_JIT=0``)
and JIT enabled at the default threshold — interleaved so host noise
hits both tiers alike, asserts identical program output, and reports
per-kernel speedup plus the geometric mean. Appends a ``suite: "jit"``
record to ``BENCH_vm.json`` alongside the interpreter-tier trend
records from ``runner.py``.

The kernels run single-threaded with a 50 ms scheduler quantum (passed
identically to both tiers): trace windows are bounded by the remaining
slice, so the default 5 ms quantum measures scheduler slicing more than
tier throughput. The quantum is a workload parameter, not a tier knob —
the comparison stays apples-to-apples.

Exit codes: 0 ok, 1 usage/error, 2 speedup gate failed
(``--check-speedup`` and geomean speedup below the threshold).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from runner import TREND_PATH, append_trend, geomean  # noqa: E402

#: Scheduler quantum for both tiers (see module docstring).
SWITCH_INTERVAL = 0.05

#: Geomean speedup the JIT tier must deliver over the interpreter tier.
MIN_SPEEDUP = 1.5

DEFAULT_REPS = 3
QUICK_SCALE = 0.1


def _kernels(scale: float) -> dict:
    arith_n = max(2000, int(120000 * scale))
    nested_n = max(60, int(330 * scale ** 0.5))
    scan_rounds = max(100, int(2500 * scale))
    dict_n = max(2000, int(40000 * scale))
    return {
        "jit_arith_while": f"""
i = 0
acc = 0
while i < {arith_n}:
    acc = acc + i * 3 - (i // 7) + (i % 5)
    i = i + 1
print(acc)
""",
        "jit_nested_for": f"""
total = 0
for a in range({nested_n}):
    for b in range({nested_n}):
        total = total + a * b
print(total)
""",
        "jit_list_scan": f"""
xs = []
i = 0
while i < 50:
    xs.append(i * i)
    i = i + 1
hits = 0
r = 0
while r < {scan_rounds}:
    j = 0
    while j < 50:
        if xs[j] > 100:
            hits = hits + 1
        j = j + 1
    r = r + 1
print(hits)
""",
        "jit_dict_count": f"""
d = {{}}
i = 0
while i < {dict_n}:
    k = i % 64
    if k in d:
        d[k] = d[k] + 1
    else:
        d[k] = 1
    i = i + 1
print(len(d), d[0])
""",
    }


def _run_once(name: str, source: str, jit: str):
    """One timed run; returns (host ops/sec, stdout lines, jit stats)."""
    os.environ["REPRO_JIT"] = jit
    # Each tier must compile its own code object: hit cells and the trace
    # memo live on the CodeObject, and the AST-compile cache keys on the
    # JIT config anyway — disable it so reps measure steady state only.
    os.environ["REPRO_CODE_CACHE"] = "0"
    from repro.interp.jit import jit_stats
    from repro.runtime.process import SimProcess

    process = SimProcess(
        source, filename=f"{name}.py", switch_interval=SWITCH_INTERVAL
    )
    start = time.perf_counter()
    process.run()
    elapsed = time.perf_counter() - start
    ops = process.vm.instruction_count / elapsed if elapsed > 0 else 0.0
    return ops, list(process.stdout), jit_stats(process.code)


def run_suite(scale: float, reps: int) -> dict:
    """Best-of-``reps`` interleaved off/on runs for every kernel."""
    results = {}
    for name, source in _kernels(scale).items():
        best_off = best_on = 0.0
        stats = {}
        for _ in range(max(1, reps)):
            off_ops, off_out, _ = _run_once(name, source, "0")
            on_ops, on_out, stats = _run_once(name, source, "1")
            if off_out != on_out:
                raise AssertionError(
                    f"{name}: tier output diverged: {off_out!r} != {on_out!r}"
                )
            best_off = max(best_off, off_ops)
            best_on = max(best_on, on_ops)
        results[name] = {
            "ops_per_sec_interp": round(best_off, 1),
            "ops_per_sec_jit": round(best_on, 1),
            "speedup": round(best_on / best_off, 3) if best_off else 0.0,
            "traces": stats.get("compiled", 0),
            "deopts": stats.get("deopts", 0),
        }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"small scale ({QUICK_SCALE}) — CI smoke mode")
    parser.add_argument("--scale", type=float, default=None,
                        help="kernel scale (default 1.0)")
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS,
                        help=f"repetitions per kernel, best-of (default {DEFAULT_REPS})")
    parser.add_argument("--output", type=Path, default=TREND_PATH,
                        help="trend file to append to (default BENCH_vm.json)")
    parser.add_argument("--check-speedup", action="store_true",
                        help=f"exit 2 when geomean speedup < {MIN_SPEEDUP}x")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help="override the --check-speedup threshold")
    args = parser.parse_args(argv)

    if args.scale is not None:
        scale = args.scale
    elif args.quick:
        scale = QUICK_SCALE
    else:
        scale = 1.0

    from repro.interp.jit import DEFAULT_THRESHOLD

    prior_jit = os.environ.get("REPRO_JIT")
    prior_cache = os.environ.get("REPRO_CODE_CACHE")
    try:
        results = run_suite(scale, args.reps)
    finally:
        for key, prior in (("REPRO_JIT", prior_jit), ("REPRO_CODE_CACHE", prior_cache)):
            if prior is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = prior

    speedups = [r["speedup"] for r in results.values()]
    geo_speedup = geomean(speedups)
    geo_jit = geomean([r["ops_per_sec_jit"] for r in results.values()])
    append_trend(args.output, {
        "suite": "jit",
        "scale": scale,
        "reps": args.reps,
        "jit_threshold": DEFAULT_THRESHOLD,
        "switch_interval": SWITCH_INTERVAL,
        "geomean_ops_per_sec": round(geo_jit, 1),
        "geomean_speedup": round(geo_speedup, 3),
        "results": results,
    })

    width = max(len(n) for n in results)
    for name, r in results.items():
        print(f"{name:<{width}}  interp {r['ops_per_sec_interp']:>12,.0f}  "
              f"jit {r['ops_per_sec_jit']:>12,.0f}  x{r['speedup']:.2f}  "
              f"(traces={r['traces']} deopts={r['deopts']})")
    print(f"geomean speedup: x{geo_speedup:.2f}   "
          f"jit geomean: {geo_jit:,.0f} ops/s   -> {args.output}")

    if args.check_speedup and geo_speedup < args.min_speedup:
        print(
            f"JIT SPEEDUP GATE FAILED: geomean x{geo_speedup:.2f} < "
            f"x{args.min_speedup:.2f}",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
