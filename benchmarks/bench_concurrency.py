"""Concurrency-plane accuracy and overhead, tracked run-to-run.

One record per run appended to ``BENCH_concurrency.json`` (via
:func:`runner.append_trend`): for each concurrency workload the
conformance error actually measured (worst per-line CPU error, and the
lock blocked-time error where the workload contends), the profiled
run's wall overhead against an unprofiled oracle of the same scale, and
the headline counters (task switches, contentions, process count) so a
regression in any plane shows up as a trend break, not just a red test.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
for entry in (str(SRC), str(REPO_ROOT / "benchmarks")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from conftest import bench_scale, run_once, save_result  # noqa: E402
from runner import append_trend  # noqa: E402

from repro.analysis.accuracy import run_conformance  # noqa: E402

TREND_PATH = REPO_ROOT / "BENCH_concurrency.json"

WORKLOADS = ("async_server", "fork_etl", "producer_consumer")


def _measure(name: str, scale: float) -> dict:
    report = run_conformance(name, scale=scale)
    profile = report.profile
    oracle_wall = sum(wall for _pid, _parent, wall, _cpu in report.gt_processes)
    entry = {
        "worst_line_cpu_error_pct": round(100 * report.worst_line_cpu_error, 3),
        "profiled_wall_s": round(profile.elapsed, 4),
        "oracle_wall_s": round(oracle_wall, 4),
        "wall_overhead_pct": round(
            100 * (profile.elapsed / oracle_wall - 1) if oracle_wall else 0.0, 2
        ),
        "cpu_samples": profile.cpu_samples,
    }
    if report.gt_lock_blocked_s > 0:
        entry["lock_blocked_error_pct"] = round(
            100 * report.lock_blocked_relative_error, 3
        )
        entry["contentions"] = profile.total_lock_contentions
    if profile.tasks:
        entry["tasks"] = len(profile.tasks)
        entry["task_switches"] = sum(t.switches for t in profile.tasks)
    if profile.processes:
        entry["processes"] = len(profile.processes)
    return entry


def run_experiment():
    # The conformance suite's calibrated band starts at scale 1.5; honor
    # REPRO_SCALE as a multiplier on top of it.
    scale = max(1.5, 7.5 * bench_scale())
    return {
        "scale": scale,
        "workloads": {name: _measure(name, scale) for name in WORKLOADS},
    }


def test_concurrency(benchmark):
    results = run_once(benchmark, run_experiment)

    lines = [
        f"{'workload':<18} {'cpu err':>8} {'lock err':>9} "
        f"{'overhead':>9} {'samples':>8}"
    ]
    for name, entry in results["workloads"].items():
        lock_err = entry.get("lock_blocked_error_pct")
        lines.append(
            f"{name:<18} {entry['worst_line_cpu_error_pct']:>7.2f}% "
            f"{(f'{lock_err:.2f}%' if lock_err is not None else '—'):>9} "
            f"{entry['wall_overhead_pct']:>8.2f}% {entry['cpu_samples']:>8}"
        )
    save_result("concurrency", "\n".join(lines))

    record = append_trend(TREND_PATH, results)
    assert record["workloads"] is results["workloads"]

    for name, entry in results["workloads"].items():
        assert entry["worst_line_cpu_error_pct"] <= 5.0, name
        lock_err = entry.get("lock_blocked_error_pct")
        if lock_err is not None:
            assert lock_err <= 10.0, name
    assert results["workloads"]["async_server"]["task_switches"] > 0
    assert results["workloads"]["fork_etl"]["processes"] == 4
