"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation (§6). Results are printed and saved under ``benchmarks/out/``;
EXPERIMENTS.md records the paper-vs-measured comparison.

Scale: ``REPRO_SCALE`` (default 0.2) shrinks the workloads; 1.0 runs the
paper-faithful ≥10-virtual-second versions.
"""

from __future__ import annotations

import os
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def bench_scale() -> float:
    try:
        return float(os.environ.get("REPRO_SCALE", "0.2"))
    except ValueError:
        return 0.2


def save_result(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/out/ and echo it."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} (saved to {path}) ===")
    print(text)


def run_once(benchmark, fn, *args):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, iterations=1, rounds=1)
