"""Ablations of the threshold-sampling design choices (§3.2).

1. **Prime vs. power-of-two threshold.** The paper sets T to "a prime
   number slightly above 10MB ... to reduce the risk of stride behavior
   interfering with sampling". A workload allocating fixed-size blocks in
   a rotating set of lines aliases perfectly with a power-of-two T (every
   sample lands on the same line); the prime breaks the stride.
2. **Threshold magnitude sweep.** Larger T → monotonically fewer samples
   (the overhead/precision dial).
"""

from __future__ import annotations

from collections import Counter

from conftest import run_once, save_result

from repro.core import Scalene
from repro.core.config import ScaleneConfig
from repro.interp.libs import install_standard_libraries
from repro.runtime.process import SimProcess
from repro.workloads import get_workload

# Four allocation sites, each allocating exactly 2 MiB in rotation, with a
# periodic release so the footprint keeps re-crossing the threshold.
STRIDE_SOURCE = """
keep = []
def site_a():
    keep.append(py_buffer(2097152))
def site_b():
    keep.append(py_buffer(2097152))
def site_c():
    keep.append(py_buffer(2097152))
def site_d():
    keep.append(py_buffer(2097152))

for rep in range(160):
    site_a()
    site_b()
    site_c()
    site_d()
    if rep % 8 == 7:
        keep.clear()
"""

POWER_OF_TWO_T = 8 * 1024 * 1024  # 2^23: exactly four 2 MiB blocks
PRIME_T = 8_388_617  # the prime just above 2^23


def _sample_distribution(threshold: int) -> Counter:
    process = SimProcess(STRIDE_SOURCE, filename="stride.py")
    config = ScaleneConfig(memory_threshold=threshold)
    scalene = Scalene(process, config=config)
    scalene.start()
    process.run()
    profile = scalene.stop()
    counts = Counter()
    for (_filename, lineno), stats in scalene.stats.lines.items():
        # Growth samples only: the stride aliasing concerns which
        # *allocation* sites get sampled.
        if stats.malloc_mb > 0 and stats.mem_samples:
            counts[lineno] += stats.mem_samples
    return counts


def _threshold_sweep(scale: float):
    workload = get_workload("pprint")
    counts = {}
    for threshold in (1 << 20, 5 << 20, 10_485_767, 50 << 20):
        process = workload.make_process(scale)
        config = ScaleneConfig(memory_threshold=threshold)
        scalene = Scalene(process, config=config)
        scalene.start()
        process.run()
        scalene.stop()
        counts[threshold] = scalene.memory_profiler.sample_count
    return counts


def run_experiment():
    return {
        "power2": _sample_distribution(POWER_OF_TWO_T),
        "prime": _sample_distribution(PRIME_T),
        "sweep": _threshold_sweep(0.3),
    }


def _max_share(counts: Counter) -> float:
    total = sum(counts.values())
    return max(counts.values()) / total if total else 0.0


def test_ablation_sampling(benchmark):
    results = run_once(benchmark, run_experiment)
    power2, prime = results["power2"], results["prime"]

    lines = ["Stride-aliasing ablation (share of samples on the most-hit line):"]
    lines.append(f"  power-of-two T={POWER_OF_TWO_T}: {dict(power2)} "
                 f"max share {_max_share(power2):.0%}")
    lines.append(f"  prime        T={PRIME_T}: {dict(prime)} "
                 f"max share {_max_share(prime):.0%}")
    lines.append("")
    lines.append("Threshold magnitude sweep (pprint): samples per threshold:")
    for threshold, count in results["sweep"].items():
        lines.append(f"  T={threshold:>10}: {count} samples")
    save_result("ablation_sampling", "\n".join(lines))

    # With the power-of-two threshold, the 2 MiB stride aliases: (almost)
    # all growth samples land on one line. The prime spreads them.
    assert _max_share(power2) > 0.75
    assert _max_share(prime) < _max_share(power2)
    assert len(prime) > len(power2) or _max_share(prime) < 0.6

    # Sweep: larger threshold → monotonically fewer samples.
    sweep = list(results["sweep"].items())
    for (t1, c1), (t2, c2) in zip(sweep, sweep[1:]):
        assert c2 <= c1, (t1, c1, t2, c2)
