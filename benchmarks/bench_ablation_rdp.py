"""Ablation of the RDP timeline reduction (§5).

Compares RDP+downsample against naive uniform downsampling at the same
100-point budget on a footprint curve with a sharp transient spike (the
signature a peak-only or uniformly-sampled view would miss): RDP keeps
the spike and achieves lower reconstruction error.
"""

from __future__ import annotations

from conftest import run_once, save_result

from repro.core.rdp import reduce_timeline


def _spiky_curve(n: int = 4000):
    points = []
    for i in range(n):
        base = 100.0 + 20.0 * ((i // 200) % 3)
        points.append((float(i), base))
    # One sharp 4 GB-style transient spike.
    points[2500] = (2500.0, 4000.0)
    return points


def _uniform_downsample(points, target):
    step = max(len(points) // target, 1)
    sampled = points[::step][:target]
    if sampled[-1] != points[-1]:
        sampled[-1] = points[-1]
    return sampled


def _interp(points, x):
    # Linear interpolation over the reduced curve.
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x0 <= x <= x1:
            if x1 == x0:
                return y0
            t = (x - x0) / (x1 - x0)
            return y0 + t * (y1 - y0)
    return points[-1][1]


def _mean_abs_error(original, reduced):
    total = 0.0
    for x, y in original[:: max(len(original) // 500, 1)]:
        total += abs(_interp(reduced, x) - y)
    return total / 500


def run_experiment():
    curve = _spiky_curve()
    rdp_reduced = reduce_timeline(curve, 100)
    uniform = _uniform_downsample(curve, 100)
    return {
        "curve": curve,
        "rdp": rdp_reduced,
        "uniform": uniform,
        "rdp_error": _mean_abs_error(curve, rdp_reduced),
        "uniform_error": _mean_abs_error(curve, uniform),
    }


def test_ablation_rdp(benchmark):
    results = run_once(benchmark, run_experiment)
    rdp_reduced = results["rdp"]
    uniform = results["uniform"]

    peak_rdp = max(y for _x, y in rdp_reduced)
    peak_uniform = max(y for _x, y in uniform)
    lines = [
        f"points: original {len(results['curve'])}, rdp {len(rdp_reduced)}, "
        f"uniform {len(uniform)}",
        f"spike preserved: rdp peak {peak_rdp:.0f} MB, uniform peak "
        f"{peak_uniform:.0f} MB (true 4000 MB)",
        f"mean abs error: rdp {results['rdp_error']:.2f} MB, uniform "
        f"{results['uniform_error']:.2f} MB",
    ]
    save_result("ablation_rdp", "\n".join(lines))

    assert len(rdp_reduced) <= 100
    # RDP preserves the transient spike; uniform sampling misses it.
    assert peak_rdp == 4000.0
    assert peak_uniform < 1000.0
    # And reconstructs the curve at least as well.
    assert results["rdp_error"] <= results["uniform_error"] * 1.05
