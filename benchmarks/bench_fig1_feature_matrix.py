"""Figure 1: the profiler feature matrix with measured median slowdowns.

Regenerates the comparison table from each implementation's declared
capabilities plus slowdowns measured on the suite, and checks the claims
the paper's Figure 1 encodes.
"""

from __future__ import annotations

from conftest import bench_scale, run_once, save_result

from repro.analysis.comparison import feature_matrix
from repro.analysis.overhead import overhead_table
from repro.baselines import all_profilers
from repro.workloads import pyperf_suite


def run_experiment(scale: float):
    names = [n for n in all_profilers() if n != "rate_sampler"]
    results = overhead_table(pyperf_suite().values(), names, scale=scale)
    return {r.profiler: r.median for r in results}


def test_fig1_feature_matrix(benchmark):
    medians = run_once(benchmark, run_experiment, min(bench_scale(), 0.15))
    text = feature_matrix(medians)
    save_result("fig1_feature_matrix", text)

    caps = {name: cls.capabilities for name, cls in all_profilers().items()}
    # Scalene (all) is the only profiler with the full feature set.
    full = caps["scalene_full"]
    assert full.python_vs_c_time and full.system_time and full.profiles_memory
    assert full.python_vs_c_memory and full.gpu and full.memory_trends
    assert full.copy_volume and full.detects_leaks
    # No other profiler separates Python from C time.
    others = [c for n, c in caps.items() if not n.startswith("scalene")]
    assert not any(c.python_vs_c_time for c in others)
    # Figure 1's slowdown column: Scalene(all) ≈ 1.3x, CPU-only ≈ 1.0x.
    assert medians["scalene_full"] < 2.0
    assert medians["scalene_cpu_gpu"] < 1.1
