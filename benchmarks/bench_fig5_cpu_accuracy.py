"""Figure 5: CPU profiling accuracy under function bias (§6.2).

The microbenchmark splits its work between a function-calling variant and
an inlined variant; each profiler's reported time for the call variant is
compared to ground truth. Trace-based profilers dilate the call variant
(function bias); sampling profilers — including Scalene — track the
diagonal.
"""

from __future__ import annotations

from conftest import bench_scale, run_once, save_result

from repro.analysis.accuracy import cpu_accuracy_experiment

PROFILERS = [
    "cProfile",
    "profile",
    "yappi_cpu",
    "line_profiler",
    "pyinstrument",
    "py_spy",
    "pprofile_stat",
    "scalene_cpu",
]

CALL_FRACTIONS = (0.1, 0.25, 0.5, 0.75, 0.9)

#: Profilers the paper shows hugging the diagonal vs. biased ones.
UNBIASED = ("py_spy", "pprofile_stat", "scalene_cpu")
BIASED = ("cProfile", "profile", "yappi_cpu")


def run_experiment(scale: float):
    return cpu_accuracy_experiment(PROFILERS, CALL_FRACTIONS, scale=scale)


def test_fig5_cpu_accuracy(benchmark):
    results = run_once(benchmark, run_experiment, max(bench_scale(), 0.15))

    lines = [f"{'profiler':<16}{'actual s':>10}{'reported s':>12}{'rel err':>9}"]
    for name, points in results.items():
        for point in points:
            lines.append(
                f"{name:<16}{point.actual_seconds:>10.3f}"
                f"{point.reported_seconds:>12.3f}{point.relative_error:>8.1%}"
            )
    save_result("fig5_cpu_accuracy", "\n".join(lines))

    # Sampling profilers stay near the diagonal at every split.
    for name in UNBIASED:
        for point in results[name]:
            assert abs(point.relative_error) < 0.25, (name, point)
    # Trace-based profilers inflate the call variant substantially.
    for name in BIASED:
        worst = max(point.relative_error for point in results[name])
        assert worst > 1.0, (name, worst)
    # profile (pure Python callback) is the worst offender — the paper's
    # "reports 80% when it consumes 25%" case.
    profile_worst = max(p.relative_error for p in results["profile"])
    cprofile_worst = max(p.relative_error for p in results["cProfile"])
    assert profile_worst > 3 * cprofile_worst
