"""Table 3 / Figure 7: CPU-profiling overhead across the suite.

Regenerates the full profiler x benchmark slowdown grid. Shape checks:
external and signal-sampling profilers ≈ 1x; cProfile mild; pure-Python
tracers catastrophic; Scalene's CPU and CPU+GPU modes ≈ 1x.
"""

from __future__ import annotations

from conftest import bench_scale, run_once, save_result

from repro.analysis.overhead import format_overhead_table, overhead_table
from repro.baselines.registry import cpu_profilers
from repro.workloads import pyperf_suite

PAPER_MEDIANS = {
    "py_spy": 1.02,
    "cProfile": 1.73,
    "yappi_wall": 3.17,
    "yappi_cpu": 3.62,
    "pprofile_stat": 1.02,
    "pprofile_det": 36.83,
    "line_profiler": 2.21,
    "profile": 15.1,
    "pyinstrument": 1.69,
    "austin_cpu": 1.00,
    "scalene_cpu": 1.02,
    "scalene_cpu_gpu": 1.02,
}


def run_experiment(scale: float):
    return overhead_table(pyperf_suite().values(), cpu_profilers(), scale=scale)


def test_table3_cpu_overhead(benchmark):
    results = run_once(benchmark, run_experiment, bench_scale())
    medians = {r.profiler: r.median for r in results}

    text = format_overhead_table(results)
    text += "\n\npaper medians: " + ", ".join(
        f"{k}={v:.2f}x" for k, v in PAPER_MEDIANS.items()
    )
    save_result("table3_cpu_overhead", text)

    # Shape assertions (who wins, by roughly what factor).
    assert medians["py_spy"] < 1.05
    assert medians["austin_cpu"] < 1.05
    assert medians["scalene_cpu"] < 1.10
    assert medians["scalene_cpu_gpu"] < 1.12
    assert 1.2 < medians["cProfile"] < 3.0
    assert 1.5 < medians["line_profiler"] < 4.0
    assert medians["profile"] > 6.0
    assert medians["pprofile_det"] > 15.0
    assert medians["pprofile_det"] > 5 * medians["cProfile"]
    assert medians["yappi_cpu"] >= medians["yappi_wall"] * 0.9
    # Scalene is among the cheapest despite collecting far more detail.
    cheaper_than_scalene = [
        name
        for name, median in medians.items()
        if median < medians["scalene_cpu"] - 0.02
    ]
    assert set(cheaper_than_scalene) <= {"py_spy", "austin_cpu", "pprofile_stat"}
