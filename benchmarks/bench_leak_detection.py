"""§3.4: memory-leak detection.

A leaking request handler is flagged at ≥95% likelihood with a leak rate;
the balanced control produces no report. Also measures the detection
mechanism's cost: the per-free check is a pointer comparison.
"""

from __future__ import annotations

from conftest import run_once, save_result

from repro.core import Scalene
from repro.workloads import get_workload


def run_experiment():
    out = {}
    for name in ("leaky", "balanced"):
        workload = get_workload(name)
        process = workload.make_process(scale=1.0)
        scalene = Scalene(process, mode="full")
        scalene.start()
        process.run()
        profile = scalene.stop()
        out[name] = {
            "leaks": profile.leaks,
            "free_checks": scalene.leak_detector.free_checks,
            "elapsed": profile.elapsed,
        }
    # Cost comparison against the status-quo approach (§3.4): tracemalloc.
    from repro.baselines import make_profiler

    workload = get_workload("leaky")
    bare = workload.make_process(scale=1.0)
    bare.run()
    scalene_process = workload.make_process(scale=1.0)
    Scalene.run(scalene_process, mode="full")
    tm_process = workload.make_process(scale=1.0)
    profiler = make_profiler("tracemalloc", tm_process)
    profiler.start()
    tm_process.run()
    profiler.stop()
    out["overhead"] = {
        "scalene_full": scalene_process.clock.wall / bare.clock.wall,
        "tracemalloc": tm_process.clock.wall / bare.clock.wall,
    }
    return out


def test_leak_detection(benchmark):
    results = run_once(benchmark, run_experiment)

    lines = []
    for name in ("leaky", "balanced"):
        data = results[name]
        lines.append(f"workload {name}: {len(data['leaks'])} leak report(s), "
                     f"{data['free_checks']} pointer checks")
        for leak in data["leaks"]:
            lines.append(f"  {leak}")
    overhead = results["overhead"]
    lines.append(
        f"leak-hunting cost: scalene_full {overhead['scalene_full']:.2f}x vs "
        f"tracemalloc {overhead['tracemalloc']:.2f}x (paper: ~4x just to activate)"
    )
    save_result("leak_detection", "\n".join(lines))

    leaky = results["leaky"]["leaks"]
    assert len(leaky) == 1
    assert leaky[0].likelihood >= 0.95
    assert leaky[0].leak_rate_mb_s > 0
    # The leak is attributed to the retaining line inside handle_request.
    assert leaky[0].function == "handle_request"
    assert results["balanced"]["leaks"] == []
    # §3.4's motivation: Scalene's piggybacked detection is far cheaper
    # than activating tracemalloc.
    overhead = results["overhead"]
    assert overhead["scalene_full"] < 2.0
    assert overhead["tracemalloc"] > 1.5 * overhead["scalene_full"]
