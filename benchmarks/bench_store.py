#!/usr/bin/env python
"""Profile-store benchmarks: merge throughput and round-trip latency.

Measures the two hot paths of the :mod:`repro.serve` subsystem:

* **merge throughput** — profiles merged per second by
  ``merge_profiles`` over a pool of real (distinct) Scalene profiles,
  both pairwise-incremental and N-way;
* **store round-trip latency** — ``ProfileStore.put`` + ``get``
  (serialise, hash, fsync-free atomic write, read back, verify hash).

Appends a trend record to ``BENCH_store.json`` at the repo root via
:func:`runner.append_trend`, so store performance is tracked run-to-run
alongside the VM trend in ``BENCH_vm.json``.

Usage::

    python benchmarks/bench_store.py [--profiles N] [--reps N] [--quick]
"""

from __future__ import annotations

import argparse
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
for entry in (str(SRC), str(REPO_ROOT / "benchmarks")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from runner import append_trend  # noqa: E402

TREND_PATH = REPO_ROOT / "BENCH_store.json"


def build_profiles(count: int):
    """``count`` distinct real profiles (varying the sampling interval)."""
    from repro.core.config import ScaleneConfig
    from repro.core.scalene import Scalene
    from repro.workloads import get_workload

    profiles = []
    for index in range(count):
        process = get_workload("leaky" if index % 2 else "balanced").make_process(1.0)
        config = ScaleneConfig(
            mode="full", cpu_sampling_interval=0.01 * (1 + index * 0.2)
        )
        scalene = Scalene(process, config=config)
        scalene.start()
        process.run()
        profiles.append(scalene.stop())
    return profiles


def bench_merge(profiles, reps: int) -> dict:
    from repro.core.profile_data import merge_profiles

    # Pairwise-incremental: the daemon's steady-state pattern (fold each
    # new run into the rolling aggregate).
    best_pairwise = 0.0
    for _ in range(reps):
        start = time.perf_counter()
        merged = profiles[0]
        for profile in profiles[1:]:
            merged = merge_profiles([merged, profile])
        elapsed = time.perf_counter() - start
        best_pairwise = max(best_pairwise, (len(profiles) - 1) / elapsed)

    # N-way: one-shot aggregation of a whole workload family.
    best_nway = 0.0
    for _ in range(reps):
        start = time.perf_counter()
        merge_profiles(profiles)
        elapsed = time.perf_counter() - start
        best_nway = max(best_nway, len(profiles) / elapsed)

    return {
        "pairwise_profiles_per_sec": round(best_pairwise, 1),
        "nway_profiles_per_sec": round(best_nway, 1),
    }


def bench_round_trip(profiles, reps: int) -> dict:
    from repro.serve import ProfileStore

    put_ms, get_ms = [], []
    with tempfile.TemporaryDirectory() as tmp:
        store = ProfileStore(Path(tmp) / "store")
        for _ in range(reps):
            for index, profile in enumerate(profiles):
                start = time.perf_counter()
                profile_id = store.put(
                    profile, workload=f"bench-{index}", profiler="scalene"
                )
                put_ms.append(1000 * (time.perf_counter() - start))
                start = time.perf_counter()
                store.get(profile_id)
                get_ms.append(1000 * (time.perf_counter() - start))
    return {
        "put_ms_median": round(statistics.median(put_ms), 3),
        "get_ms_median": round(statistics.median(get_ms), 3),
        "round_trip_ms_median": round(
            statistics.median(p + g for p, g in zip(put_ms, get_ms)), 3
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profiles", type=int, default=8,
                        help="distinct profiles in the pool (default 8)")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions, best-of/median (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="4 profiles, 1 rep — CI smoke mode")
    parser.add_argument("--output", type=Path, default=TREND_PATH,
                        help="trend file to append to (default BENCH_store.json)")
    args = parser.parse_args(argv)

    count = 4 if args.quick else args.profiles
    reps = 1 if args.quick else args.reps

    profiles = build_profiles(count)
    merge = bench_merge(profiles, reps)
    round_trip = bench_round_trip(profiles, reps)

    record = append_trend(args.output, {
        "profiles": count,
        "reps": reps,
        "merge": merge,
        "store": round_trip,
    })

    print(f"merge:  {merge['pairwise_profiles_per_sec']:>10,.1f} profiles/s pairwise   "
          f"{merge['nway_profiles_per_sec']:>10,.1f} profiles/s N-way")
    print(f"store:  put {round_trip['put_ms_median']:.3f} ms   "
          f"get {round_trip['get_ms_median']:.3f} ms   "
          f"round-trip {round_trip['round_trip_ms_median']:.3f} ms (median)")
    print(f"-> {args.output} ({record['timestamp']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
