"""§6.5 log-file growth: Scalene KBs vs. Austin/Memray MBs.

The paper measures, on ``mdp``: Austin 27 MB, Memray ~100 MB, Scalene
32 KB. The mechanisms: Austin streams one record per 100 µs sample;
Memray logs every allocation event; Scalene writes one line per
threshold crossing.
"""

from __future__ import annotations

from conftest import bench_scale, run_once, save_result

from repro.baselines import make_profiler
from repro.core import Scalene
from repro.workloads import get_workload


def run_experiment(scale: float):
    workload = get_workload("mdp")
    sizes = {}
    for name in ("austin_full", "memray"):
        process = workload.make_process(scale)
        profiler = make_profiler(name, process)
        profiler.start()
        process.run()
        sizes[name] = profiler.stop().log_bytes

    process = workload.make_process(scale)
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()
    sizes["scalene_full"] = profile.sample_log_bytes
    return sizes


def test_log_growth(benchmark):
    # Log sizes are only meaningful at the paper's full run length.
    sizes = run_once(benchmark, run_experiment, max(bench_scale(), 1.0))

    lines = [f"{'profiler':<16}{'log size':>12}   paper (mdp, full length)"]
    paper = {"austin_full": "27 MB", "memray": "~100 MB", "scalene_full": "32 KB"}
    for name, size in sizes.items():
        human = f"{size / 1024:.1f} KB" if size < 1 << 20 else f"{size / (1 << 20):.1f} MB"
        lines.append(f"{name:<16}{human:>12}   {paper[name]}")
    save_result("log_growth", "\n".join(lines))

    # Shape: Scalene's log is orders of magnitude smaller.
    assert sizes["scalene_full"] < 64 * 1024
    assert sizes["austin_full"] > 50 * sizes["scalene_full"]
    assert sizes["memray"] > 50 * sizes["scalene_full"]
