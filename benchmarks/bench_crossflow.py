"""Cross-flow analysis: boundary-detector hit-rate and analysis cost.

Three questions decide whether the cross-flow plane earns its keep: do
the three boundary detectors catch their planted shapes (and stay quiet
on the repaired versions), does the runtime join confirm the chatty
workload's loop with >1 crossing per iteration while reporting zero
findings on the batched control, and is the whole boundary analysis —
call graph plus three detectors — cheap enough to run on every compile.
"""

from __future__ import annotations

import time

from conftest import bench_scale, run_once, save_result

from repro.analysis.crossflow import analyze_crossflow
from repro.core import Scalene
from repro.workloads import get_workload

#: detector -> (planted source, expected line).
PLANTED = {
    "chatty-native-loop": (
        "n = 100\n"
        "src = np.arange(n)\n"
        "dst = np.zeros(n)\n"
        "for i in range(n):\n"
        "    v = np.get(src, i)\n"
        "    np.put(dst, i, v * 2.0)\n"
        "print(dst.sum())\n",
        5,
    ),
    "native-roundtrip-conversion": (
        "a = np.arange(100)\n"
        "l = a.tolist()\n"
        "b = np.asarray(l)\n"
        "print(b.sum())\n",
        3,
    ),
    "tiny-crossing-overhead": (
        "total = 0.0\n"
        "for i in range(100):\n"
        "    a = np.frombuffer(i)\n"
        "    total = total + a.sum()\n"
        "print(total)\n",
        3,
    ),
}

#: detector -> repaired source: the fix each suggestion describes.
REPAIRED = {
    "chatty-native-loop": (
        "n = 100\n"
        "src = np.arange(n)\n"
        "dst = src * 2.0\n"
        "print(dst.sum())\n"
    ),
    "native-roundtrip-conversion": (
        "a = np.arange(100)\n"
        "b = a * 1.0\n"
        "print(b.sum())\n"
    ),
    "tiny-crossing-overhead": (
        "a = np.arange(100)\n"
        "total = a.sum()\n"
        "print(total)\n"
    ),
}

#: Boundary-free filler repeated to build the ms/KLoC corpus.
_FILLER_BLOCK = (
    "v{k} = 0\n"
    "for i in range(10):\n"
    "    v{k} = v{k} + i * 2 - 1\n"
    "if v{k} > 10:\n"
    "    v{k} = v{k} - 10\n"
    "print(v{k})\n"
)


def _kloc_source(lines_target: int) -> str:
    blocks = []
    k = 0
    while sum(b.count("\n") for b in blocks) < lines_target:
        blocks.append(_FILLER_BLOCK.format(k=k))
        k += 1
    return "".join(blocks)


def _crossflow_of(name: str, scale: float):
    workload = get_workload(name)
    process = workload.make_process(scale)
    scalene = Scalene(process, mode="full")
    scalene.start()
    process.run()
    profile = scalene.stop()
    findings = analyze_crossflow(
        workload.source(scale),
        profile,
        f"{name}.py",
        recorder=process.crossings,
    )
    return profile, findings


def run_experiment():
    from repro.staticcheck import boundary_findings_source

    # 1. Static hit-rate on the planted corpus.
    hits = {}
    for detector, (source, lineno) in PLANTED.items():
        found = boundary_findings_source(source, f"{detector}.py")
        hits[detector] = any(
            b.finding.detector == detector and b.finding.lineno == lineno
            for b in found
        )

    # 2. False positives: any boundary finding on the repaired corpus.
    false_positives = 0
    for source in REPAIRED.values():
        false_positives += len(boundary_findings_source(source, "repaired.py"))

    # 3. The runtime join on the shipped chatty/batched pair.
    scale = bench_scale()
    chatty_profile, chatty = _crossflow_of("chatty", scale)
    _, batched = _crossflow_of("batched", scale)
    chatty_loop = [
        f
        for f in chatty
        if f.detector == "chatty-native-loop" and f.crossings_per_iteration > 1
    ]

    # 4. Boundary-analysis cost per KLoC (host time, not virtual time).
    source = _kloc_source(1000)
    loc = source.count("\n")
    t0 = time.perf_counter()
    boundary_findings_source(source, "kloc.py")
    boundary_s = time.perf_counter() - t0

    return {
        "hits": hits,
        "false_positives": false_positives,
        "chatty_findings": len(chatty),
        "chatty_loop_confirmed": len(chatty_loop),
        "chatty_crossings": chatty_profile.total_crossings,
        "chatty_overhead_ms": 1000 * chatty_profile.total_crossing_overhead_s,
        "batched_findings": len(batched),
        "loc": loc,
        "boundary_ms_per_kloc": 1000 * boundary_s * (1000 / loc),
    }


def test_crossflow(benchmark):
    results = run_once(benchmark, run_experiment)

    lines = ["detector                     planted pattern"]
    for detector, hit in results["hits"].items():
        lines.append(f"{detector:<28} {'HIT' if hit else 'MISS'}")
    lines.append(
        f"false positives on repaired corpus: {results['false_positives']}"
    )
    lines.append(
        f"chatty workload: {results['chatty_findings']} findings "
        f"({results['chatty_loop_confirmed']} loop sites >1 crossing/iter), "
        f"{results['chatty_crossings']} crossings, "
        f"overhead {results['chatty_overhead_ms']:.1f} ms"
    )
    lines.append(f"batched control: {results['batched_findings']} findings")
    lines.append(
        f"boundary analysis on {results['loc']} LoC: "
        f"{results['boundary_ms_per_kloc']:.1f} ms/KLoC"
    )
    save_result("crossflow", "\n".join(lines))

    assert all(results["hits"].values()), "every boundary detector must catch its plant"
    assert results["false_positives"] == 0
    assert results["chatty_loop_confirmed"] >= 2  # np.get and np.put sites
    assert results["batched_findings"] == 0
    # The boundary pass must stay compile-time cheap.
    assert results["boundary_ms_per_kloc"] < 1000
