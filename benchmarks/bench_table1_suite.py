"""Table 1: the benchmark suite itself.

Verifies every suite member runs and reports its repetitions and virtual
running time (the paper extends each to exceed 10 seconds; at scale 1.0
our versions land in the same 9–15 s band).
"""

from __future__ import annotations

from conftest import bench_scale, run_once, save_result

from repro.workloads import pyperf_suite

PAPER_TIMES = {
    "async_tree_io_none": 11.9,
    "async_tree_io_io": 12.0,
    "async_tree_io_cpu_io_mixed": 12.3,
    "async_tree_io_memoization": 10.6,
    "docutils": 12.5,
    "fannkuch": 12.1,
    "mdp": 13.4,
    "pprint": 12.8,
    "raytrace": 11.1,
    "sympy": 11.3,
}


def run_experiment(scale: float):
    rows = []
    for name, workload in pyperf_suite().items():
        process = workload.make_process(scale)
        process.run()
        rows.append(
            (
                name,
                workload.scaled_repetitions(scale),
                process.clock.wall,
                process.vm.instruction_count,
            )
        )
    return rows


def test_table1_suite(benchmark):
    # Table 1 documents the full-length suite; always run at scale 1.0
    # (one bare run per benchmark, ~10 s host in total).
    scale = max(bench_scale(), 1.0)
    rows = run_once(benchmark, run_experiment, scale)

    lines = [
        f"{'benchmark':<28}{'reps':>6}{'time (virt s)':>14}{'instrs':>10}"
        f"{'paper time':>12}"
    ]
    for name, reps, wall, instrs in rows:
        lines.append(
            f"{name:<28}{reps:>6}{wall:>14.2f}{instrs:>10}"
            f"{PAPER_TIMES[name]:>11.1f}s"
        )
    save_result("table1_suite", "\n".join(lines))

    assert len(rows) == 10
    for name, _reps, wall, _instrs in rows:
        # Virtual running time scales ~linearly with the workload scale;
        # at scale 1.0 the suite sits in the paper's ≥10 s band (8–18 s).
        assert wall > 5.0 * scale, (name, wall)
        if scale >= 1.0:
            assert 8.0 < wall < 18.0, (name, wall)
