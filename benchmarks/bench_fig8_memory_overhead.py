"""Figure 8: memory-profiling overhead.

Among the *accurate* memory profilers, Scalene is the cheapest
(paper medians: Scalene 1.32x < Fil 2.71x < Memray 3.98x), with
memory_profiler off the chart (≥37x) and Austin fast but inaccurate.
"""

from __future__ import annotations

from conftest import bench_scale, run_once, save_result

from repro.analysis.overhead import format_overhead_table, overhead_table
from repro.baselines.registry import memory_profilers
from repro.workloads import pyperf_suite

PAPER_MEDIANS = {
    "austin_full": 1.00,
    "memray": 3.98,
    "fil": 2.71,
    "memory_profiler": 37.11,
    "scalene_full": 1.32,
}


def run_experiment(scale: float):
    return overhead_table(pyperf_suite().values(), memory_profilers(), scale=scale)


def test_fig8_memory_overhead(benchmark):
    results = run_once(benchmark, run_experiment, bench_scale())
    medians = {r.profiler: r.median for r in results}

    text = format_overhead_table(results)
    text += "\n\npaper medians: " + ", ".join(
        f"{k}={v:.2f}x" for k, v in PAPER_MEDIANS.items()
    )
    save_result("fig8_memory_overhead", text)

    # The paper's ordering among accurate memory profilers.
    assert medians["scalene_full"] < medians["fil"] < medians["memray"]
    assert medians["scalene_full"] < 1.8
    assert medians["memory_profiler"] > 10.0
    # Austin is fastest but RSS-inaccurate (Fig. 6 covers the accuracy).
    assert medians["austin_full"] < 1.05
