"""Extension experiment: suite-wide per-line CPU-attribution accuracy.

Beyond the paper's Fig. 5 microbenchmark, this bench quantifies accuracy
on the *whole* Table 1 suite: for each sampling profiler, the mean
absolute error between its reported per-line CPU share and the ground
truth (which the simulated runtime records exactly). Scalene and the
external samplers track the truth; pprofile(stat.) — blind to native
time, IO and deferred signals — shows much larger error on the IO-heavy
and native-heavy workloads.
"""

from __future__ import annotations

from conftest import bench_scale, run_once, save_result

from repro.baselines import make_profiler
from repro.core import Scalene
from repro.workloads import pyperf_suite

PROFILERS = ("scalene_cpu", "py_spy", "pprofile_stat")


def _ground_truth_shares(workload, scale):
    process = workload.make_process(scale, collect_ground_truth=True)
    process.run()
    gt = process.ground_truth
    total = gt.total_time
    return {
        key: truth.total_time / total
        for key, truth in gt.lines.items()
        if truth.total_time / total >= 0.005
    }


def _reported_shares(workload, scale, profiler_name):
    process = workload.make_process(scale)
    if profiler_name == "scalene_cpu":
        profile = Scalene.run(process, mode="cpu")
        total = (
            profile.cpu_python_time
            + profile.cpu_native_time
            + profile.cpu_system_time
        )
        if total <= 0:
            return {}
        return {
            (l.filename, l.lineno): l.cpu_total_percent / 100.0
            for l in profile.lines
        }
    profiler = make_profiler(profiler_name, process)
    profiler.start()
    process.run()
    report = profiler.stop()
    # Normalize by *wall time* (what the share denominates) rather than
    # the profiler's own total, so missing time shows up as error.
    wall = process.clock.wall
    return {key: t / wall for key, t in report.line_times.items()}


def _mae(truth, reported):
    keys = set(truth) | {k for k, v in reported.items() if v >= 0.005}
    if not keys:
        return 0.0
    return sum(
        abs(reported.get(k, 0.0) - truth.get(k, 0.0)) for k in keys
    ) / len(keys)


def run_experiment(scale: float):
    results = {name: {} for name in PROFILERS}
    for workload_name, workload in pyperf_suite().items():
        truth = _ground_truth_shares(workload, scale)
        for profiler_name in PROFILERS:
            reported = _reported_shares(workload, scale, profiler_name)
            results[profiler_name][workload_name] = _mae(truth, reported)
    return results


def test_accuracy_suite(benchmark):
    results = run_once(benchmark, run_experiment, min(bench_scale(), 0.15))

    workloads = list(pyperf_suite())
    lines = [f"{'workload':<28}" + "".join(f"{p:>15}" for p in PROFILERS)]
    for workload_name in workloads:
        row = f"{workload_name:<28}"
        for profiler_name in PROFILERS:
            row += f"{results[profiler_name][workload_name]:>14.3%}"
        lines.append(row)
    means = {
        p: sum(results[p].values()) / len(results[p]) for p in PROFILERS
    }
    lines.append(
        f"{'mean abs error:':<28}" + "".join(f"{means[p]:>14.3%}" for p in PROFILERS)
    )
    save_result("accuracy_suite", "\n".join(lines))

    # Scalene's attribution error is small and no worse than ~2x the best.
    best = min(means.values())
    assert means["scalene_cpu"] < 0.05
    assert means["scalene_cpu"] <= best * 2 + 0.01
    # The naive signal sampler is worse overall, and much worse on the
    # IO/task workloads where signal starvation bites hardest.
    assert means["pprofile_stat"] > means["scalene_cpu"]
    assert (
        results["pprofile_stat"]["async_tree_io_none"]
        > 2 * results["scalene_cpu"]["async_tree_io_none"]
    )
