"""Ablation of the signal-delay inference (§2.1, the paper's contribution #1).

Runs Scalene's CPU profiler on a half-Python / half-native workload twice:
with the delay inference on (default) and ablated off (every sample's
elapsed time booked as Python — what a naive sampler does). Only the
inference recovers the true Python/native split.
"""

from __future__ import annotations

from conftest import run_once, save_result

from repro.core import Scalene
from repro.core.config import ScaleneConfig
from repro.runtime.process import SimProcess

SOURCE = (
    "s = 0\n"
    "for i in range(8000):\n"
    "    s = s + i\n"  # ~half the CPU time: pure Python
    "native_work(2.2)\n"  # the other half: one long native call
)


def _profile(use_inference: bool):
    process = SimProcess(SOURCE, filename="mix.py", collect_ground_truth=True)
    config = ScaleneConfig(mode="cpu", use_delay_inference=use_inference)
    scalene = Scalene(process, config=config)
    scalene.start()
    process.run()
    profile = scalene.stop()
    gt = process.ground_truth
    total = profile.cpu_python_time + profile.cpu_native_time
    return {
        "reported_native_fraction": profile.cpu_native_time / total if total else 0.0,
        "true_native_fraction": gt.total_native_time / gt.total_time,
    }


def run_experiment():
    return {
        "with_inference": _profile(True),
        "ablated": _profile(False),
    }


def test_ablation_inference(benchmark):
    results = run_once(benchmark, run_experiment)
    with_inf = results["with_inference"]
    ablated = results["ablated"]

    lines = [
        f"true native fraction:              {with_inf['true_native_fraction']:.1%}",
        f"reported (delay inference on):     {with_inf['reported_native_fraction']:.1%}",
        f"reported (inference ablated):      {ablated['reported_native_fraction']:.1%}",
    ]
    save_result("ablation_inference", "\n".join(lines))

    true_fraction = with_inf["true_native_fraction"]
    assert true_fraction > 0.3  # the workload really is mixed
    # With the inference, the reported split tracks the truth.
    assert abs(with_inf["reported_native_fraction"] - true_fraction) < 0.10
    # Ablated, native time vanishes — the pre-Scalene failure mode.
    assert ablated["reported_native_fraction"] < 0.05
