"""Figure 6: memory profiling accuracy, interposition vs. RSS (§6.3).

A 512 MiB array is allocated and a varying fraction of it accessed.
Interposition-based profilers (Scalene, Fil, Memray) report ~512 MB
regardless; RSS-based profilers (memory_profiler, Austin) track only the
touched pages and under-report proportionally.
"""

from __future__ import annotations

from conftest import run_once, save_result

from repro.analysis.accuracy import memory_accuracy_experiment
from repro.workloads.membench import ARRAY_MB

PROFILERS = ["scalene_full", "fil", "memray", "memory_profiler", "austin_full"]
FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)

INTERPOSITION = ("scalene_full", "fil", "memray")
RSS_BASED = ("memory_profiler", "austin_full")


def run_experiment():
    return memory_accuracy_experiment(PROFILERS, FRACTIONS)


def test_fig6_memory_accuracy(benchmark):
    results = run_once(benchmark, run_experiment)

    lines = [f"{'profiler':<16}{'touched':>9}{'reported MB':>13}{'rel err':>9}"]
    for name, points in results.items():
        for point in points:
            lines.append(
                f"{name:<16}{point.touch_fraction:>8.0%}"
                f"{point.reported_mb:>13.1f}{point.relative_error:>8.1%}"
            )
    save_result("fig6_memory_accuracy", "\n".join(lines))

    # Interposition-based: within a few % of 512 MB at every fraction
    # (paper: Scalene and Fil within 1%, Memray within 6%).
    for name in INTERPOSITION:
        tolerance = 0.02 if name in ("scalene_full", "fil") else 0.08
        for point in results[name]:
            assert abs(point.relative_error) <= tolerance + 0.02, (name, point)
    # RSS-based: reported memory tracks the *touched* fraction, wildly
    # under-reporting untouched allocations.
    for name in RSS_BASED:
        by_fraction = {p.touch_fraction: p.reported_mb for p in results[name]}
        assert by_fraction[0.0] < 0.2 * ARRAY_MB
        assert by_fraction[0.5] < 0.7 * ARRAY_MB
        assert by_fraction[0.5] == round(ARRAY_MB * 0.5, 0) or abs(
            by_fraction[0.5] - ARRAY_MB * 0.5
        ) < 0.15 * ARRAY_MB
        assert by_fraction[1.0] > 0.8 * ARRAY_MB
