"""Ablation: the CPU sampling interval q (§2.1's overhead/precision dial).

Sweeps q over 1–50 ms on a suite workload: smaller q means more samples
(finer-grained attribution) at a higher signal-handling cost; larger q is
cheaper but coarser. Scalene's default (10 ms) sits where the overhead
flattens out near 1.0x.
"""

from __future__ import annotations

from conftest import bench_scale, run_once, save_result

from repro.core import Scalene
from repro.core.config import ScaleneConfig
from repro.workloads import get_workload

INTERVALS = (0.001, 0.005, 0.01, 0.05)


def run_experiment(scale: float):
    workload = get_workload("raytrace")
    bare = workload.make_process(scale)
    bare.run()
    baseline_wall = bare.clock.wall

    rows = []
    for q in INTERVALS:
        process = workload.make_process(scale)
        config = ScaleneConfig(mode="cpu", cpu_sampling_interval=q)
        scalene = Scalene(process, config=config)
        scalene.start()
        process.run()
        profile = scalene.stop()
        rows.append((q, profile.cpu_samples, process.clock.wall / baseline_wall))
    return rows


def test_ablation_interval(benchmark):
    rows = run_once(benchmark, run_experiment, max(bench_scale(), 0.25))

    lines = [f"{'q (ms)':>8}{'samples':>9}{'slowdown':>10}"]
    for q, samples, slowdown in rows:
        lines.append(f"{q * 1000:>8.0f}{samples:>9}{slowdown:>9.3f}x")
    save_result("ablation_interval", "\n".join(lines))

    # Sample counts scale ~inversely with q.
    samples = {q: s for q, s, _ in rows}
    assert samples[0.001] > 5 * samples[0.01]
    assert samples[0.01] > 2 * samples[0.05]
    # Overhead decreases (weakly) as q grows, and the default is cheap.
    slowdowns = [sd for _q, _s, sd in rows]
    assert slowdowns[0] >= slowdowns[-1] - 0.01
    default = dict((q, sd) for q, _s, sd in rows)[0.01]
    assert default < 1.05
