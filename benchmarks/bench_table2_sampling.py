"""Table 2: threshold-based vs. rate-based sampling (§3.2).

For each suite member, count the samples taken by classical rate-based
sampling and by Scalene's threshold-based sampling. Shape: IO/tree
benchmarks with oscillating footprints show small ratios (2–4x); flat-
footprint, churn-heavy CPU benchmarks show huge ones (tens to hundreds);
the suite median lands near the paper's 18x.
"""

from __future__ import annotations

from conftest import bench_scale, run_once, save_result

from repro.baselines.rate_sampler import RateBasedSampler
from repro.core import Scalene
from repro.workloads import pyperf_suite

PAPER = {
    "async_tree_io_none": (556, 215, 3),
    "async_tree_io_io": (524, 187, 3),
    "async_tree_io_cpu_io_mixed": (719, 167, 4),
    "async_tree_io_memoization": (375, 167, 2),
    "docutils": (20, 5, 4),
    "fannkuch": (426, 5, 85),
    "mdp": (316, 6, 53),
    "pprint": (7976, 23, 347),
    "raytrace": (215, 7, 31),
    "sympy": (6757, 10, 676),
}


def run_experiment(scale: float):
    rows = []
    for name, workload in pyperf_suite().items():
        process = workload.make_process(scale)
        sampler = RateBasedSampler(process)
        sampler.start()
        process.run()
        rate_samples = sampler.stop().total_samples

        process = workload.make_process(scale)
        scalene = Scalene(process, mode="full")
        scalene.start()
        process.run()
        scalene.stop()
        threshold_samples = scalene.memory_profiler.sample_count

        rows.append((name, rate_samples, threshold_samples))
    return rows


def _median(values):
    values = sorted(values)
    mid = len(values) // 2
    return values[mid] if len(values) % 2 else (values[mid - 1] + values[mid]) / 2


def test_table2_sampling(benchmark):
    # Sample counts scale sub-linearly (footprint spikes are discrete), so
    # this experiment always runs at full scale; it is cheap (~30 s host).
    scale = max(bench_scale(), 1.0)
    rows = run_once(benchmark, run_experiment, scale)

    ratios = {}
    lines = [
        f"{'benchmark':<28}{'rate':>7}{'threshold':>11}{'ratio':>8}{'paper':>14}"
    ]
    for name, rate, threshold in rows:
        ratio = rate / max(threshold, 1)
        ratios[name] = ratio
        paper_rate, paper_threshold, paper_ratio = PAPER[name]
        lines.append(
            f"{name:<28}{rate:>7}{threshold:>11}{ratio:>7.1f}x"
            f"{paper_rate:>7}/{paper_threshold}={paper_ratio}x"
        )
    median = _median(list(ratios.values()))
    lines.append(f"{'Median:':<28}{'':>7}{'':>11}{median:>7.1f}x (paper: 18x)")
    save_result("table2_sampling", "\n".join(lines))

    # Shape: threshold never takes more samples than rate…
    for name, rate, threshold in rows:
        assert threshold <= rate, (name, rate, threshold)
    # …oscillating-footprint benchmarks have small ratios…
    for name in ("async_tree_io_none", "async_tree_io_io"):
        assert ratios[name] < 10
    # …flat-footprint churny ones have huge ratios…
    assert ratios["sympy"] > 100
    assert ratios["pprint"] > 100
    assert ratios["fannkuch"] > 20
    # …and sympy/pprint are the extremes, as in the paper.
    assert max(ratios, key=ratios.get) in ("sympy", "pprint")
    # Median lands in the paper's ballpark (18x).
    assert 8 < median < 60, median
